#!/usr/bin/env python
"""Reputation-assisted P2P file sharing (the paper's §6.4 scenario).

Simulates a Gnutella-like community where 20% of peers serve corrupted
files and lie in their feedback.  Two download policies run on the
*same* population and catalog:

* GossipTrust — pick the responder with the highest global reputation,
  refreshed by gossip aggregation every 500 queries;
* NoTrust — pick a responder at random.

The per-window success rates show GossipTrust learning who to avoid.

Run:  python examples/file_sharing.py
"""

from repro.baselines.notrust import NoTrustSelector, ReputationSelector
from repro.core.config import GossipTrustConfig
from repro.peers.behavior import PeerPopulation
from repro.utils.rng import RngStreams
from repro.workload.files import FileCatalog
from repro.workload.filesharing import FileSharingSimulation

N_PEERS = 300
N_FILES = 10_000
MALICIOUS = 0.20
QUERIES = 4000
REFRESH = 500


def run_policy(name: str, policy, streams: RngStreams, *, use_gossip: bool):
    population = PeerPopulation.build(
        N_PEERS, malicious_fraction=MALICIOUS, rng=streams.get("population")
    )
    catalog = FileCatalog(N_FILES, N_PEERS, rng=streams.get("catalog"))
    sim = FileSharingSimulation(
        population,
        catalog,
        policy,
        refresh_interval=REFRESH,
        config=GossipTrustConfig(n=N_PEERS, engine_mode="probe", seed=1),
        use_gossip=use_gossip,
        rng=streams.get(f"sim-{name}"),
    )
    result = sim.run(QUERIES)
    print(f"\n{name}")
    print(f"  overall success rate : {result.success_rate:.1%}")
    print(f"  steady-state success : {result.steady_state_success:.1%}")
    print(f"  unresolved queries   : {result.unresolved}")
    windows = "  ".join(f"{w:.1%}" for w in result.window_success)
    print(f"  per-window success   : {windows}")
    if result.gossip_steps:
        print(f"  gossip steps spent   : {result.gossip_steps}")
    return result


def main() -> None:
    print(
        f"{N_PEERS} peers ({MALICIOUS:.0%} malicious), {N_FILES} files, "
        f"{QUERIES} queries, reputation refresh every {REFRESH}"
    )
    gt = run_policy(
        "GossipTrust (highest-reputation source)",
        ReputationSelector(N_PEERS, rng=2),
        RngStreams(0),
        use_gossip=True,
    )
    nt = run_policy(
        "NoTrust (random source)",
        NoTrustSelector(rng=2),
        RngStreams(0),  # same seeds -> same population/catalog
        use_gossip=False,
    )
    gain = gt.steady_state_success - nt.steady_state_success
    print(f"\nGossipTrust steady-state advantage: +{gain:.1%}")


if __name__ == "__main__":
    main()
