#!/usr/bin/env python
"""Quickstart: compute global reputations with GossipTrust.

Builds a tiny P2P community from raw transaction feedback, runs the
gossip-based aggregation, and compares the result with the exact
eigenvector — the whole public-API surface in ~60 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FeedbackLedger,
    GossipTrust,
    GossipTrustConfig,
    TransactionOutcome,
    TrustMatrix,
)
from repro.baselines.centralized import CentralizedEigenvector
from repro.utils.rng import as_generator


def main() -> None:
    n = 12
    rng = as_generator(7)

    # 1. Peers transact and rate each other (+1 authentic / -1 not).
    #    Peer 0 is a great server; peer 11 serves junk.
    ledger = FeedbackLedger(n)
    quality = np.linspace(0.95, 0.15, n)  # peer i serves well w.p. quality[i]
    for _ in range(600):
        rater = int(rng.integers(n))
        ratee = int(rng.integers(n - 1))
        ratee += ratee >= rater
        ok = rng.random() < quality[ratee]
        ledger.record_transaction(
            rater,
            ratee,
            TransactionOutcome.AUTHENTIC if ok else TransactionOutcome.INAUTHENTIC,
        )

    # 2. Normalize into the trust matrix S (Eq. 1 of the paper).
    S = TrustMatrix.from_ledger(ledger)
    print(f"trust matrix: {S.n} peers, {S.nnz} nonzero local scores")

    # 3. Run GossipTrust: push-sum gossip inside power-iteration cycles.
    config = GossipTrustConfig(n=n, alpha=0.15, seed=42)
    system = GossipTrust(S, config)
    result = system.run()
    print(
        f"converged in {result.cycles} aggregation cycles "
        f"({result.total_gossip_steps} gossip steps total)"
    )
    print(f"power nodes for the next round: {sorted(result.power_nodes)}")

    # 4. Inspect the reputation ranking.
    reputation = result.reputation()
    print("\nrank  peer  score     serve-quality")
    for rank, peer in enumerate(reputation.top(n), start=1):
        print(
            f"{rank:>4}  {peer:>4}  {reputation.score(peer):.5f}   {quality[peer]:.2f}"
        )

    # 5. Sanity: the gossiped vector tracks the exact (noise-free)
    #    computation with the same power-node mixing, and — with the
    #    mixing removed — the plain principal eigenvector.
    err = np.abs(result.vector - result.exact_reference.vector).sum()
    print(f"\nL1 distance from exact alpha-matched reference: {err:.2e}")
    plain = GossipTrust(S, config.with_updates(alpha=0.0)).run()
    oracle = CentralizedEigenvector(S).compute()
    print(
        "L1 distance, alpha=0 gossip vs exact eigenvector: "
        f"{np.abs(plain.vector - oracle).sum():.2e}"
    )


if __name__ == "__main__":
    main()
