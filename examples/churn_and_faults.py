#!/usr/bin/env python
"""Gossip under fire: message loss, link failures, and churn.

Runs one gossiped aggregation cycle on the *message-level* engine — real
messages on a discrete-event simulator over a Gnutella-like overlay —
while injecting faults, and reports how far the gossiped scores land
from the exact computation.  This is the machinery behind the paper's
fault-tolerance claims (§7): push-sum needs no error recovery because
lost messages remove x- and w-mass together, leaving the surviving
ratios approximately right.

Run:  python examples/churn_and_faults.py
"""

import numpy as np

from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.message_engine import MessageGossipEngine
from repro.network.churn import ChurnModel
from repro.network.overlay import Overlay
from repro.network.topology import gnutella_like
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.utils.rng import RngStreams

N = 96


def run_cycle(label: str, *, loss=0.0, failed_links=0, churn=False, seed=0):
    streams = RngStreams(seed)
    S = synthetic_trust_matrix(N, rng=streams.get("matrix"))
    sim = Simulator()
    topo = gnutella_like(N, rng=streams.get("topo"))
    overlay = Overlay(topo, rng=streams.get("overlay"))
    transport = Transport(sim, latency=1.0, loss_rate=loss, rng=streams.get("net"))

    if failed_links:
        edges = list(topo.edges())
        gen = streams.get("failures")
        for idx in gen.choice(len(edges), size=failed_links, replace=False):
            u, v = edges[int(idx)]
            transport.fail_link(u, v)

    if churn:
        model = ChurnModel(
            sim, overlay, mean_session=60.0, mean_offline=25.0, min_alive=N // 2,
            rng=streams.get("churn"),
        )
        model.start()

    engine = MessageGossipEngine(
        sim, transport, overlay, epsilon=1e-4, round_interval=2.0,
        max_rounds=300, rng=streams.get("gossip"),
    )
    csr = S.sparse()
    rows = [
        dict(zip(csr.indices[csr.indptr[i]:csr.indptr[i+1]].tolist(),
                 csr.data[csr.indptr[i]:csr.indptr[i+1]].tolist()))
        for i in range(N)
    ]
    res = engine.run_cycle(rows, np.full(N, 1.0 / N))
    print(
        f"{label:<28} rounds={res.steps:<4} sent={res.messages_sent:<6} "
        f"dropped={res.messages_dropped:<5} mass_lost={res.mass_lost_fraction:6.1%} "
        f"gossip_error={res.gossip_error:.2e}"
    )
    return res


def main() -> None:
    print(f"one gossiped aggregation cycle, {N} nodes, message-level engine\n")
    run_cycle("fault-free")
    run_cycle("5% message loss", loss=0.05)
    run_cycle("15% message loss", loss=0.15)
    run_cycle("30 failed overlay links", failed_links=30)
    run_cycle("active churn", churn=True)
    run_cycle("loss + links + churn", loss=0.05, failed_links=20, churn=True)
    print(
        "\nReading: without faults gossip is exact to ~1e-6; faults cost "
        "accuracy in proportion to the mass they remove, but the protocol "
        "never diverges and needs no retransmission machinery."
    )


if __name__ == "__main__":
    main()
