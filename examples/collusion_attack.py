#!/usr/bin/env python
"""Collusion attacks and the power-node defense (the paper's Fig. 4(b)).

Builds matched honest/attacked trust matrices where 10% of peers form
collusion rings that fabricate mutual praise, then measures how far the
attacked aggregation drifts from the truthful one (Eq. 8 RMS error) —
with and without power-node leverage (greedy factor alpha = 0.15).

Run:  python examples/collusion_attack.py
"""

import numpy as np

from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.metrics.errors import rank_overlap, rms_relative_error
from repro.peers.threat_models import build_collusive_scenario

N = 400
FRACTION = 0.10
SEEDS = (0, 1, 2)


def measure(group_size: int, alpha: float) -> tuple:
    rms_vals, overlap_vals = [], []
    for seed in SEEDS:
        scenario = build_collusive_scenario(N, FRACTION, group_size, rng=seed)
        cfg = GossipTrustConfig(n=N, alpha=alpha, max_cycles=60)
        v = exact_global_reputation(
            scenario.S_true, cfg, raise_on_budget=False
        ).vector
        u = exact_global_reputation(
            scenario.S_attacked, cfg, raise_on_budget=False
        ).vector
        rms_vals.append(rms_relative_error(v, u))
        overlap_vals.append(rank_overlap(v, u, 20))
    return float(np.mean(rms_vals)), float(np.mean(overlap_vals))


def main() -> None:
    print(
        f"{N} peers, {FRACTION:.0%} collusive, RMS error of attacked vs "
        f"truthful aggregation (avg of {len(SEEDS)} seeds)\n"
    )
    header = f"{'group size':>10}  {'alpha=0 RMS':>12}  {'alpha=0.15 RMS':>15}  {'error cut':>9}  {'top20 kept':>10}"
    print(header)
    print("-" * len(header))
    for group_size in (2, 4, 6, 8, 10):
        rms_plain, _ = measure(group_size, alpha=0.0)
        rms_power, overlap = measure(group_size, alpha=0.15)
        cut = 1.0 - rms_power / rms_plain
        print(
            f"{group_size:>10}  {rms_plain:>12.3f}  {rms_power:>15.3f}  "
            f"{cut:>8.0%}  {overlap:>10.0%}"
        )
    print(
        "\nReading: larger collusion rings distort reputations more; "
        "power-node leverage (alpha=0.15) absorbs much of the damage, "
        "and the top-20 ranking the selector actually uses stays intact."
    )


if __name__ == "__main__":
    main()
