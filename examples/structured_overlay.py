#!/usr/bin/env python
"""GossipTrust next to the DHT-based alternatives (§2 and §7).

The paper motivates gossip by the *cost* of reputation management on a
structured overlay: EigenTrust and PowerTrust assume a DHT for score
placement and lookup.  This example runs all three on the same trust
matrix and prints an overhead/accuracy scorecard, plus the Chord-ring
mechanics (lookup hop counts) the baselines depend on.

Run:  python examples/structured_overlay.py
"""

import numpy as np

from repro.baselines.centralized import CentralizedEigenvector
from repro.baselines.eigentrust import DistributedEigenTrust
from repro.baselines.powertrust import PowerTrust
from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.metrics.errors import kendall_tau
from repro.network.dht import ChordRing
from repro.utils.rng import RngStreams

N = 500


def main() -> None:
    streams = RngStreams(4)
    S = synthetic_trust_matrix(N, rng=streams.get("matrix"))
    oracle = CentralizedEigenvector(S).compute(cross_check=True)
    print(f"{N} peers, {S.nnz} local scores; oracle = exact eigenvector\n")

    # --- the Chord substrate itself ---------------------------------
    ring = ChordRing(range(N), bits=32)
    hops = [ring.lookup(i % N, ("score", i)).hops for i in range(300)]
    print(
        f"Chord ring: {N} nodes, mean lookup hops {np.mean(hops):.1f} "
        f"(log2 n = {np.log2(N):.1f})\n"
    )

    # --- GossipTrust: no structure needed ----------------------------
    # All three systems run with the same greedy/pre-trust factor 0.15
    # so their fixed points are comparable; the mixing also guarantees
    # convergence on near-periodic trust matrices.
    cfg = GossipTrustConfig(n=N, alpha=0.15, engine_mode="probe", seed=4)
    gt = GossipTrust(S, cfg, rng=streams.get("gossip")).run()
    gt_messages = gt.total_gossip_steps * N
    print("GossipTrust (unstructured)")
    print(f"  cycles x steps : {gt.cycles} x ~{gt.total_gossip_steps // gt.cycles}")
    print(f"  messages       : {gt_messages}")
    print(f"  tau vs oracle  : {kendall_tau(oracle, gt.vector):.4f}")

    # --- EigenTrust on the DHT ---------------------------------------
    et = DistributedEigenTrust(S, a=0.15, replicas=3).compute()
    print("\nEigenTrust (DHT, 3 score managers per peer, a=0.15)")
    print(f"  iterations     : {et.iterations}")
    print(f"  DHT lookups    : {et.dht_lookups} ({et.dht_hops} ring hops)")
    print(f"  messages       : {et.messages}")
    print(f"  tau vs oracle  : {kendall_tau(oracle, et.vector):.4f}")

    # --- PowerTrust on the DHT ----------------------------------------
    pt = PowerTrust(S, alpha=0.15).compute()
    print("\nPowerTrust (DHT, look-ahead random walk, alpha=0.15)")
    print(f"  iterations     : {pt.iterations}")
    print(f"  DHT lookups    : {pt.dht_lookups} ({pt.dht_hops} ring hops)")
    print(f"  power nodes    : {sorted(pt.power_nodes)[:5]}...")
    print(f"  tau vs oracle  : {kendall_tau(oracle, pt.vector):.4f}")

    print(
        f"\nReading: gossip pays ~{gt_messages} plain point-to-point messages "
        "and needs no overlay structure; the DHT systems pay a lookup storm "
        "plus per-iteration manager traffic — affordable only where a DHT "
        "already exists, which is exactly the paper's argument."
    )


if __name__ == "__main__":
    main()
