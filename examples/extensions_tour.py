#!/usr/bin/env python
"""Tour of the §7 future-work features, implemented.

The paper's conclusion sketches three directions; this repo builds all
of them, and this example drives each one:

1. **QoS + QoF dual scores** — score the *witnesses*, not only the
   servers, and weight votes by witness quality.
2. **Object reputation** — validate a file version before downloading
   (poisoning defense).
3. **Structured acceleration** — on a DHT, replace random gossip with a
   deterministic all-reduce: exact results in ceil(log2 n) rounds.

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.structured import StructuredAggregationEngine
from repro.metrics.errors import rms_relative_error
from repro.peers.threat_models import build_independent_scenario
from repro.trust.qof import QofWeightedAggregation, feedback_quality
from repro.types import TransactionOutcome
from repro.utils.rng import RngStreams, as_generator
from repro.workload.object_reputation import ObjectReputation


def demo_qof() -> None:
    print("=== 1. quality-of-feedback (QoF) dual scores ===")
    n = 300
    sc = build_independent_scenario(n, 0.3, rng=11)
    cfg = GossipTrustConfig(n=n, alpha=0.0, max_cycles=80)
    v_true = exact_global_reputation(sc.S_true, cfg, raise_on_budget=False).vector
    qof = feedback_quality(sc.S_attacked, v_true)
    good, bad = sc.population.honest_nodes(), sc.population.malicious_nodes()
    print(f"mean QoF of honest witnesses   : {qof[good].mean():.3f}")
    print(f"mean QoF of dishonest witnesses: {qof[bad].mean():.3f}")
    u_plain = exact_global_reputation(sc.S_attacked, cfg, raise_on_budget=False).vector
    res = QofWeightedAggregation(cfg, rounds=3).run(sc.S_attacked)
    print(f"RMS error, plain aggregation   : {rms_relative_error(v_true, u_plain, cap=10):.3f}")
    print(f"RMS error, QoF-weighted votes  : {rms_relative_error(v_true, res.reputation, cap=10):.3f}")


def demo_object_reputation() -> None:
    print("\n=== 2. object (version) reputation vs poisoning ===")
    rng = as_generator(5)
    obj = ObjectReputation(n_files=50, versions_per_file=3)
    # 40% of voters lie; honest voters have 10x their vote weight.
    poisoned_downloads = 0
    for step in range(2000):
        file_rank = int(rng.integers(1, 51))
        version = obj.best_version(file_rank) if step > 200 else int(rng.integers(3))
        authentic = version == 0
        if step > 1000 and not authentic:
            poisoned_downloads += 1
        liar = rng.random() < 0.4
        experienced = authentic != liar  # liars invert
        obj.vote(
            file_rank,
            version,
            TransactionOutcome.AUTHENTIC if experienced else TransactionOutcome.INAUTHENTIC,
            weight=0.2 if liar else 2.0,
        )
    print(f"poisoned downloads in steady state: {poisoned_downloads}/1000")
    print(f"score of genuine version of file 1: {obj.score(1, 0):.2f}")
    print(f"score of poisoned version of file 1: {obj.score(1, 1):.2f}")
    print(f"pre-download validate(file=1, v=1): {obj.validate(1, 1)}")


def demo_structured() -> None:
    print("\n=== 3. structured (DHT) acceleration ===")
    n = 512
    S = synthetic_trust_matrix(n, rng=RngStreams(3).get("m"))
    v = np.full(n, 1.0 / n)
    gossip = SynchronousGossipEngine(n, epsilon=1e-4, mode="probe", rng=4)
    g = gossip.run_cycle(S, v)
    structured = StructuredAggregationEngine(n)
    s = structured.run_cycle(S, v)
    print(f"unstructured push-sum : {g.steps} steps, gossip error {g.gossip_error:.1e}")
    print(f"DHT all-reduce        : {s.steps} rounds, error {s.node_disagreement:.1e} (exact)")
    print(f"per-cycle speedup     : {g.steps / s.steps:.1f}x")


def main() -> None:
    demo_qof()
    demo_object_reputation()
    demo_structured()


if __name__ == "__main__":
    main()
