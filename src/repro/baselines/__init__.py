"""Baseline reputation systems GossipTrust is compared against.

* :mod:`repro.baselines.centralized` — exact eigenvector computation
  (power iteration + scipy ARPACK cross-check); the accuracy oracle.
* :mod:`repro.baselines.eigentrust` — EigenTrust, both the basic
  synchronous iteration and the distributed variant with DHT-assigned
  score managers (with lookup/message overhead accounting).
* :mod:`repro.baselines.powertrust` — PowerTrust: power-node leverage
  plus look-ahead random walk, on the DHT substrate.
* :mod:`repro.baselines.notrust` — the NoTrust policy of §6.4: random
  peer selection, no reputation at all.
"""

from repro.baselines.centralized import CentralizedEigenvector
from repro.baselines.eigentrust import DistributedEigenTrust, EigenTrust
from repro.baselines.notrust import NoTrustSelector, ProportionalSelector, ReputationSelector
from repro.baselines.powertrust import PowerTrust

__all__ = [
    "CentralizedEigenvector",
    "EigenTrust",
    "DistributedEigenTrust",
    "PowerTrust",
    "NoTrustSelector",
    "ReputationSelector",
    "ProportionalSelector",
]
