"""Centralized eigenvector computation — the accuracy oracle.

The converged global reputation vector is the principal left eigenvector
of the normalized trust matrix ``S`` (stationary distribution of the
Markov chain, §4.1).  This module computes it two independent ways —
power iteration and ARPACK — and cross-checks them, so every other
component in the repository has a trustworthy reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from repro.errors import ConvergenceError, ValidationError
from repro.trust.matrix import TrustMatrix

__all__ = ["CentralizedEigenvector"]


@dataclass
class _EigResult:
    vector: np.ndarray
    iterations: int
    residual: float


class CentralizedEigenvector:
    """Computes the stationary reputation vector of a trust matrix.

    Parameters
    ----------
    S:
        The row-stochastic trust matrix.
    tol:
        L1 convergence tolerance of power iteration.
    max_iter:
        Iteration budget.
    """

    def __init__(
        self,
        S: Union[TrustMatrix, sparse.spmatrix, np.ndarray],
        *,
        tol: float = 1e-12,
        max_iter: int = 100_000,
    ):
        if isinstance(S, TrustMatrix):
            self._S = S.sparse()
        elif sparse.issparse(S):
            self._S = S.tocsr()
        else:
            self._S = sparse.csr_matrix(np.asarray(S, dtype=np.float64))
        if self._S.shape[0] != self._S.shape[1]:
            raise ValidationError(f"matrix must be square, got {self._S.shape}")
        if not tol > 0:
            raise ValidationError(f"tol must be > 0, got {tol}")
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self._ST = self._S.T.tocsr()

    @property
    def n(self) -> int:
        """Number of peers."""
        return self._S.shape[0]

    def power_iteration(self) -> _EigResult:
        """Left principal eigenvector by *lazy* power iteration.

        Iterates on the lazy chain ``(I + S)/2``, which has exactly the
        same stationary vector as ``S`` but is guaranteed aperiodic —
        plain power iteration oscillates forever on (near-)periodic
        trust matrices, which sparse feedback graphs do produce (their
        subdominant eigenvalues can sit on the unit circle).
        """
        n = self.n
        v = np.full(n, 1.0 / n)
        for it in range(1, self.max_iter + 1):
            v_new = 0.5 * (v + self._ST @ v)
            total = v_new.sum()
            if total <= 0:
                raise ConvergenceError(
                    "iteration collapsed to zero mass; matrix is not stochastic"
                )
            v_new /= total
            resid = float(np.abs(v_new - v).sum())
            v = v_new
            if resid < self.tol:
                return _EigResult(vector=v, iterations=it, residual=resid)
        raise ConvergenceError(
            f"power iteration did not reach tol={self.tol} in {self.max_iter} iters",
            steps=self.max_iter,
            residual=resid,
        )

    def arpack(self) -> np.ndarray:
        """Left principal eigenvector via ARPACK (dense fallback below n=16).

        Works on the lazy chain ``(I + S)/2`` like :meth:`power_iteration`:
        a periodic chain has other eigenvalues on the unit circle, and
        "largest modulus" would otherwise return one of those rotations
        instead of the stationary eigenvector.
        """
        n = self.n
        lazy = 0.5 * (sparse.identity(n, format="csr") + self._ST)
        if n < 16:
            eigvals, eigvecs = np.linalg.eig(lazy.toarray())
            idx = int(np.argmax(np.real(eigvals)))
            vec = np.real(eigvecs[:, idx])
        else:
            _vals, vecs = splinalg.eigs(lazy.astype(np.float64), k=1, which="LM")
            vec = np.real(vecs[:, 0])
        # Fix sign and normalize to a probability vector.
        if vec.sum() < 0:
            vec = -vec
        vec = np.clip(vec, 0.0, None)
        total = vec.sum()
        if total <= 0:
            raise ConvergenceError("ARPACK eigenvector is not sign-definite")
        return vec / total

    def compute(self, *, cross_check: bool = False, check_tol: float = 1e-6) -> np.ndarray:
        """The reference vector (power iteration), optionally ARPACK-checked.

        Raises
        ------
        ConvergenceError
            If the two methods disagree by more than ``check_tol`` in L1
            (indicates a defective or periodic chain).
        """
        result = self.power_iteration()
        if cross_check:
            other = self.arpack()
            dist = float(np.abs(result.vector - other).sum())
            if dist > check_tol:
                raise ConvergenceError(
                    f"power iteration and ARPACK disagree by L1={dist:.3g}"
                )
        return result.vector

    def __repr__(self) -> str:  # pragma: no cover
        return f"CentralizedEigenvector(n={self.n}, tol={self.tol})"
