"""Peer-selection policies for the file-sharing workload (§6.4).

The paper compares two download-source selectors:

* **GossipTrust selection** — "the one with the highest global score is
  selected" (:class:`ReputationSelector`);
* **NoTrust** — "randomly selects a node to download the desired file
  without considering node reputation" (:class:`NoTrustSelector`).

Both implement the same tiny protocol so the workload simulation is
policy-agnostic.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["SelectionPolicy", "NoTrustSelector", "ReputationSelector", "ProportionalSelector"]


class SelectionPolicy(Protocol):
    """Chooses a download source among query responders."""

    def choose(self, responders: Sequence[int]) -> int:
        """Pick one node id from a non-empty responder list."""
        ...  # pragma: no cover

    def update_scores(self, scores: np.ndarray) -> None:
        """Receive refreshed global reputation scores."""
        ...  # pragma: no cover


class NoTrustSelector:
    """Uniform random selection — the reputation-free baseline."""

    def __init__(self, rng: SeedLike = None):
        self._rng = as_generator(rng)

    def choose(self, responders: Sequence[int]) -> int:
        """Uniform pick."""
        if not responders:
            raise ValidationError("responder list is empty")
        return int(responders[int(self._rng.integers(len(responders)))])

    def update_scores(self, scores: np.ndarray) -> None:
        """No-op: NoTrust ignores reputation."""

    def __repr__(self) -> str:  # pragma: no cover
        return "NoTrustSelector()"


class ReputationSelector:
    """Highest-global-score selection (GossipTrust's policy).

    Ties break toward the lower node id for determinism.  Until the
    first score refresh every peer is equally trusted, so the first
    window behaves like NoTrust with deterministic tie-breaks — matching
    the paper's uniform ``V(0)``.
    """

    def __init__(self, n: int, rng: SeedLike = None):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self._scores = np.full(n, 1.0 / n)
        self._rng = as_generator(rng)

    def choose(self, responders: Sequence[int]) -> int:
        """Pick the responder with the highest current global score.

        While scores are still uniform (before the first refresh) the
        pick is uniform random rather than lowest-id, to avoid biasing
        early transactions toward small ids.
        """
        if not responders:
            raise ValidationError("responder list is empty")
        cand = np.asarray(responders, dtype=np.int64)
        scores = self._scores[cand]
        best = float(scores.max())
        top = cand[scores >= best - 1e-18]
        if top.size == 1:
            return int(top[0])
        return int(top[int(self._rng.integers(top.size))])

    def update_scores(self, scores: np.ndarray) -> None:
        """Install refreshed global reputation scores."""
        arr = np.asarray(scores, dtype=np.float64)
        if arr.shape != self._scores.shape:
            raise ValidationError(
                f"scores must have shape {self._scores.shape}, got {arr.shape}"
            )
        self._scores = arr.copy()

    @property
    def scores(self) -> np.ndarray:
        """Current score table (copy)."""
        return self._scores.copy()

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReputationSelector(n={self._scores.shape[0]})"


class ProportionalSelector:
    """Reputation-proportional randomized selection.

    Deterministic highest-score selection concentrates every download on
    one peer per file — great for success rate, terrible for load
    balance (the EigenTrust paper already flags this).  This policy
    picks responders with probability proportional to
    ``score ** sharpness``: ``sharpness=1`` is plain proportional,
    larger values approach the deterministic argmax, ``0`` degrades to
    NoTrust.  The ``load`` ablation quantifies the tradeoff.
    """

    def __init__(self, n: int, *, sharpness: float = 1.0, rng: SeedLike = None):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        if sharpness < 0:
            raise ValidationError(f"sharpness must be >= 0, got {sharpness}")
        self._scores = np.full(n, 1.0 / n)
        self.sharpness = float(sharpness)
        self._rng = as_generator(rng)

    def choose(self, responders: Sequence[int]) -> int:
        """Sample a responder with probability ~ score ** sharpness."""
        if not responders:
            raise ValidationError("responder list is empty")
        cand = np.asarray(responders, dtype=np.int64)
        weights = np.maximum(self._scores[cand], 0.0) ** self.sharpness
        total = weights.sum()
        if total <= 0:
            return int(cand[int(self._rng.integers(cand.size))])
        return int(self._rng.choice(cand, p=weights / total))

    def update_scores(self, scores: np.ndarray) -> None:
        """Install refreshed global reputation scores."""
        arr = np.asarray(scores, dtype=np.float64)
        if arr.shape != self._scores.shape:
            raise ValidationError(
                f"scores must have shape {self._scores.shape}, got {arr.shape}"
            )
        self._scores = arr.copy()

    @property
    def scores(self) -> np.ndarray:
        """Current score table (copy)."""
        return self._scores.copy()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ProportionalSelector(n={self._scores.shape[0]}, "
            f"sharpness={self.sharpness})"
        )
