"""PowerTrust (Zhou & Hwang, TPDS'07) — the authors' prior DHT system.

PowerTrust's two distinctive mechanisms, both reproduced here:

* **Power nodes with greedy factor alpha** — the top-``m`` reputation
  peers get a teleport share of the random walk, exactly the mechanism
  GossipTrust inherits (our :mod:`repro.core.power_nodes`).
* **Look-ahead random walk (LRW)** — each peer aggregates not only its
  neighbors' first-hand rows but their one-hop look-ahead, which
  squares the effective chain per iteration and roughly halves the
  cycle count: the iteration runs on ``S @ S`` instead of ``S``.

PowerTrust runs on a DHT; like the distributed EigenTrust baseline, the
class accounts for the DHT traffic (here, fetching each neighbor's row
to build the look-ahead costs one lookup per out-edge per refresh).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
from scipy import sparse

from repro.core.power_nodes import PowerNodeSelector
from repro.errors import ConvergenceError
from repro.network.dht import ChordRing
from repro.trust.matrix import TrustMatrix
from repro.utils.validation import check_in_range

__all__ = ["PowerTrustResult", "PowerTrust"]


@dataclass
class PowerTrustResult:
    """Outcome of a PowerTrust computation."""

    vector: np.ndarray
    iterations: int
    converged: bool
    power_nodes: frozenset
    dht_lookups: int
    dht_hops: int


class PowerTrust:
    """PowerTrust: LRW-accelerated power iteration with power nodes.

    Parameters
    ----------
    S:
        Row-stochastic trust matrix.
    alpha:
        Greedy factor (paper default 0.15).
    power_fraction:
        Fraction of peers selected as power nodes (default 1%).
    lookahead:
        Enable the look-ahead random walk (iterate on ``S @ S``).
    tol, max_iter:
        L1 convergence control.
    ring_bits:
        Chord identifier width for the overhead model (None disables
        DHT accounting entirely — pure-math mode).
    """

    def __init__(
        self,
        S: Union[TrustMatrix, sparse.spmatrix, np.ndarray],
        *,
        alpha: float = 0.15,
        power_fraction: float = 0.01,
        lookahead: bool = True,
        tol: float = 1e-10,
        max_iter: int = 10_000,
        ring_bits: Optional[int] = 32,
    ):
        if isinstance(S, TrustMatrix):
            self._S = S.sparse()
        elif sparse.issparse(S):
            self._S = S.tocsr()
        else:
            self._S = sparse.csr_matrix(np.asarray(S, dtype=np.float64))
        self.n = self._S.shape[0]
        check_in_range("alpha", alpha, low=0.0, high=1.0, high_inclusive=False)
        check_in_range("power_fraction", power_fraction, low=0.0, high=1.0)
        self.alpha = float(alpha)
        self.lookahead = bool(lookahead)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        q = max(1, int(self.n * power_fraction)) if alpha > 0 else 0
        self._selector = PowerNodeSelector(self.n, q)
        self._ring = ChordRing(range(self.n), bits=ring_bits) if ring_bits else None
        mat = (self._S @ self._S).tocsr() if self.lookahead else self._S
        self._MT = mat.T.tocsr()

    def compute(self) -> PowerTrustResult:
        """Run PowerTrust to convergence.

        The power-node set is fixed per aggregation (selected from the
        converged vector for the next round), matching the GossipTrust
        core semantics — both papers share this design.
        """
        n = self.n
        v = np.full(n, 1.0 / n)
        mixing = self._selector.pretrust()  # uniform before the first selection
        resid = float("inf")
        converged = False
        iters = 0
        for iters in range(1, self.max_iter + 1):
            v_new = self._MT @ v
            if self.alpha > 0:
                v_new = mixing.mix(v_new, self.alpha)
            total = v_new.sum()
            if total <= 0:
                raise ConvergenceError("PowerTrust iteration lost all mass")
            v_new /= total
            resid = float(np.abs(v_new - v).sum())
            v = v_new
            if resid < self.tol:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"PowerTrust did not converge in {self.max_iter} iterations",
                steps=self.max_iter,
                residual=resid,
            )
        power = self._selector.select(v)

        lookups = 0
        hops = 0
        if self._ring is not None:
            # LRW construction cost: each peer fetches the stored row of
            # every peer it rates (one DHT lookup per out-edge).
            raters, ratees = self._S.nonzero()
            for i, j in zip(raters.tolist(), ratees.tolist()):
                res = self._ring.lookup(int(i), ("row", int(j)))
                lookups += 1
                hops += res.hops
        return PowerTrustResult(
            vector=v,
            iterations=iters,
            converged=converged,
            power_nodes=power,
            dht_lookups=lookups,
            dht_hops=hops,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PowerTrust(n={self.n}, alpha={self.alpha}, "
            f"lookahead={self.lookahead})"
        )
