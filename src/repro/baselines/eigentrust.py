"""EigenTrust (Kamvar et al., WWW'03) — the DHT-based baseline.

Two variants:

* :class:`EigenTrust` — the basic algorithm: iterate
  ``V <- (1-a) S^T V + a P`` with ``P`` uniform over a *static*
  pre-trusted peer set, until L1 convergence.  (GossipTrust differs in
  two ways: the gossiped evaluation of the product, and the *dynamic*
  power-node set replacing static pre-trust.)
* :class:`DistributedEigenTrust` — the secure distributed version: each
  peer's score is computed by ``replicas`` score managers located via a
  Chord DHT; the class accounts for the lookup hops and per-iteration
  messages the DHT mechanism costs, which is precisely the overhead an
  unstructured network cannot pay (§1's motivation for GossipTrust).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Union

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, ValidationError
from repro.network.dht import ChordRing
from repro.trust.matrix import TrustMatrix
from repro.trust.pretrust import PretrustVector
from repro.utils.validation import check_in_range

__all__ = ["EigenTrustResult", "EigenTrust", "DistributedEigenTrust"]


@dataclass
class EigenTrustResult:
    """Outcome of an EigenTrust computation."""

    vector: np.ndarray
    iterations: int
    converged: bool
    #: DHT accounting (zeros for the basic variant)
    dht_lookups: int = 0
    dht_hops: int = 0
    messages: int = 0


def _coerce(S: Union[TrustMatrix, sparse.spmatrix, np.ndarray]) -> sparse.csr_matrix:
    if isinstance(S, TrustMatrix):
        return S.sparse()
    if sparse.issparse(S):
        return S.tocsr()
    return sparse.csr_matrix(np.asarray(S, dtype=np.float64))


class EigenTrust:
    """Basic EigenTrust iteration with static pre-trusted peers.

    Parameters
    ----------
    S:
        Row-stochastic trust matrix.
    pretrusted:
        The static pre-trusted peer ids (EigenTrust's P).  Empty set
        degrades P to uniform.
    a:
        Pre-trust mixing weight (EigenTrust's ``a``; analogous to the
        paper's greedy factor).
    tol:
        L1 convergence tolerance between iterates.
    """

    def __init__(
        self,
        S: Union[TrustMatrix, sparse.spmatrix, np.ndarray],
        *,
        pretrusted: Iterable[int] = (),
        a: float = 0.15,
        tol: float = 1e-10,
        max_iter: int = 10_000,
    ):
        self._S = _coerce(S)
        self.n = self._S.shape[0]
        check_in_range("a", a, low=0.0, high=1.0, high_inclusive=False)
        self.a = float(a)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self._P = PretrustVector(self.n, pretrusted)
        self._ST = self._S.T.tocsr()

    def compute(self) -> EigenTrustResult:
        """Iterate to the EigenTrust fixed point."""
        v = np.full(self.n, 1.0 / self.n)
        for it in range(1, self.max_iter + 1):
            v_new = self._ST @ v
            if self.a > 0:
                v_new = self._P.mix(v_new, self.a)
            resid = float(np.abs(v_new - v).sum())
            v = v_new
            if resid < self.tol:
                return EigenTrustResult(vector=v, iterations=it, converged=True)
        raise ConvergenceError(
            f"EigenTrust did not converge in {self.max_iter} iterations",
            steps=self.max_iter,
            residual=resid,
        )


class DistributedEigenTrust(EigenTrust):
    """EigenTrust with DHT-located score managers and overhead accounting.

    Each peer ``i``'s global score is maintained by ``replicas`` score
    managers: the owners of keys ``("score", i, r)`` on a Chord ring over
    all peers.  Per iteration, every peer with an opinion about ``i``
    must ship its contribution to all of i's managers — each shipment
    preceded (once, then cached) by a DHT lookup.  The returned result
    carries total lookups, ring hops, and per-iteration messages: the
    cost model that motivates gossip on unstructured networks.
    """

    def __init__(
        self,
        S: Union[TrustMatrix, sparse.spmatrix, np.ndarray],
        *,
        pretrusted: Iterable[int] = (),
        a: float = 0.15,
        tol: float = 1e-10,
        max_iter: int = 10_000,
        replicas: int = 3,
        ring_bits: int = 32,
    ):
        super().__init__(S, pretrusted=pretrusted, a=a, tol=tol, max_iter=max_iter)
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self.ring = ChordRing(range(self.n), bits=ring_bits)

    def score_managers(self, peer: int) -> FrozenSet[int]:
        """The DHT nodes responsible for ``peer``'s score."""
        if not 0 <= peer < self.n:
            raise ValidationError(f"peer {peer} out of range [0, {self.n})")
        return frozenset(
            self.ring.owner(("score", peer, r)) for r in range(self.replicas)
        )

    def compute(self) -> EigenTrustResult:
        """Run the iteration and model the DHT traffic it would cost."""
        base = super().compute()
        # Lookup phase: every rater resolves the managers of every peer
        # it rates, once (manager addresses are then cached).
        lookups = 0
        hops = 0
        raters, ratees = self._S.nonzero()
        manager_count = {}
        for i, j in zip(raters.tolist(), ratees.tolist()):
            for r in range(self.replicas):
                res = self.ring.lookup(i, ("score", j, r))
                lookups += 1
                hops += res.hops
            manager_count[j] = self.replicas
        # Steady-state phase: per iteration, each nonzero opinion is
        # shipped to each replica manager (addresses cached, no lookup).
        per_iter_messages = int(self._S.nnz) * self.replicas
        return EigenTrustResult(
            vector=base.vector,
            iterations=base.iterations,
            converged=base.converged,
            dht_lookups=lookups,
            dht_hops=hops,
            messages=per_iter_messages * base.iterations,
        )
