"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are
grouped by subsystem; each carries enough context in its message to be
actionable without a debugger.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "ConvergenceError",
    "InvariantViolation",
    "SimulationError",
    "NetworkError",
    "UnknownNodeError",
    "PartitionedNetworkError",
    "StorageError",
    "BloomCapacityError",
    "CryptoError",
    "SignatureError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration object contains inconsistent or illegal values."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range, or dtype)."""


class ConvergenceError(ReproError):
    """An iterative computation exceeded its step budget without converging."""

    def __init__(self, message: str, *, steps: int = -1, residual: float = float("nan")):
        super().__init__(message)
        #: number of steps performed before giving up (-1 if unknown)
        self.steps = steps
        #: last observed residual (NaN if unknown)
        self.residual = residual


class InvariantViolation(ReproError):
    """A runtime-sanitizer invariant check failed.

    Raised by :class:`repro.analysis.sanitizer.InvariantSanitizer` when
    an armed engine breaks one of the protocol's conserved quantities —
    push-sum mass conservation, non-negative consensus mass, finiteness,
    or trust-matrix row-stochasticity.  Carries structured context so a
    violation names *where* in the run it happened.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "",
        engine: str = "",
        cycle: "int | None" = None,
        step: "int | None" = None,
        node: "int | None" = None,
        shard: "int | None" = None,
        slot: "int | None" = None,
    ):
        where = []
        if engine:
            where.append(f"engine {engine!r}")
        if cycle is not None:
            where.append(f"cycle {cycle}")
        if step is not None:
            where.append(f"step {step}")
        if node is not None:
            where.append(f"node {node}")
        if shard is not None:
            where.append(f"shard {shard}")
        if slot is not None:
            where.append(f"slot {slot}")
        prefix = f"[{invariant}] " if invariant else ""
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"{prefix}{message}{suffix}")
        #: short name of the violated invariant (e.g. ``"mass-conservation"``)
        self.invariant = invariant
        #: engine registry name, when a cycle engine raised
        self.engine = engine
        #: 1-based aggregation cycle the sanitizer was in (None if unknown)
        self.cycle = cycle
        #: gossip step / round within the cycle (None if unknown)
        self.step = step
        #: offending node id, when one can be named
        self.node = node
        #: column shard of a shared-workspace ownership breach
        self.shard = shard
        #: pool slot (0=X, 1=W, 2=out in attach order) of that breach
        self.slot = slot


class SimulationError(ReproError):
    """The discrete-event simulator reached an illegal state."""


class NetworkError(ReproError):
    """Overlay-network level failure."""


class UnknownNodeError(NetworkError, KeyError):
    """A node id was referenced that is not part of the overlay."""


class PartitionedNetworkError(NetworkError):
    """An operation required a connected overlay but the graph is partitioned."""


class StorageError(ReproError):
    """Reputation-storage level failure."""


class BloomCapacityError(StorageError):
    """A Bloom filter was asked to hold more items than it was sized for."""


class CryptoError(ReproError):
    """Failure in the simulated identity-based crypto layer."""


class SignatureError(CryptoError):
    """A message signature failed verification."""


class ExperimentError(ReproError):
    """An experiment harness was misused or produced inconsistent output."""
