"""Classic and counting Bloom filters, from scratch on NumPy bit arrays.

Hash family: double hashing over two independent 64-bit digests of the
item (Kirsch-Mitzenmacher), which provably preserves the asymptotic
false-positive rate of ``k`` independent hashes while costing two
hashes per operation.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable, Tuple

import numpy as np

from repro.errors import BloomCapacityError, ValidationError

__all__ = ["optimal_parameters", "BloomFilter", "CountingBloomFilter"]


def optimal_parameters(capacity: int, error_rate: float) -> Tuple[int, int]:
    """Optimal ``(bits m, hashes k)`` for ``capacity`` items at ``error_rate``.

    Standard formulas: ``m = -n ln p / (ln 2)^2``, ``k = (m/n) ln 2``.
    """
    if capacity < 1:
        raise ValidationError(f"capacity must be >= 1, got {capacity}")
    if not 0.0 < error_rate < 1.0:
        raise ValidationError(f"error_rate must be in (0, 1), got {error_rate}")
    m = int(math.ceil(-capacity * math.log(error_rate) / (math.log(2) ** 2)))
    k = max(1, int(round((m / capacity) * math.log(2))))
    return m, k


def _digests(item: Hashable) -> Tuple[int, int]:
    """Two independent 64-bit digests of ``item`` (stable across runs)."""
    raw = repr(item).encode()
    d = hashlib.sha256(raw).digest()
    h1 = int.from_bytes(d[:8], "big")
    h2 = int.from_bytes(d[8:16], "big") | 1  # odd, so strides cover the table
    return h1, h2


class BloomFilter:
    """A classic Bloom filter sized for ``capacity`` items at ``error_rate``.

    Supports membership testing with no false negatives and a bounded
    false-positive rate, plus union/intersection with compatible filters
    (same parameters) — the operations the gossip layer can use to merge
    bracket filters.
    """

    def __init__(self, capacity: int, error_rate: float = 0.01):
        self.capacity = int(capacity)
        self.error_rate = float(error_rate)
        self.m, self.k = optimal_parameters(self.capacity, self.error_rate)
        self._bits = np.zeros(self.m, dtype=bool)
        self.count = 0

    def _positions(self, item: Hashable) -> np.ndarray:
        h1, h2 = _digests(item)
        idx = (h1 + h2 * np.arange(self.k, dtype=np.uint64)) % np.uint64(self.m)
        return idx.astype(np.int64)

    def add(self, item: Hashable) -> None:
        """Insert an item.  Raises :class:`BloomCapacityError` past capacity."""
        if self.count >= self.capacity:
            raise BloomCapacityError(
                f"bloom filter sized for {self.capacity} items is full"
            )
        self._bits[self._positions(item)] = True
        self.count += 1

    def update(self, items: Iterable[Hashable]) -> None:
        """Insert many items."""
        for item in items:
            self.add(item)

    def __contains__(self, item: Hashable) -> bool:
        return bool(self._bits[self._positions(item)].all())

    # -- algebra --------------------------------------------------------

    def _check_compatible(self, other: "BloomFilter") -> None:
        if (self.m, self.k) != (other.m, other.k):
            raise ValidationError(
                "bloom filters must share (m, k) parameters to combine"
            )

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Filter representing the union of both item sets."""
        self._check_compatible(other)
        out = BloomFilter(self.capacity, self.error_rate)
        out._bits = self._bits | other._bits
        out.count = min(self.capacity, self.count + other.count)
        return out

    # -- accounting --------------------------------------------------------

    @property
    def bits_set(self) -> int:
        """Number of set bits."""
        return int(self._bits.sum())

    @property
    def size_bytes(self) -> int:
        """Nominal size of the filter in bytes (m bits, packed)."""
        return (self.m + 7) // 8

    def estimated_false_positive_rate(self) -> float:
        """Current FP estimate ``(bits_set / m) ** k``."""
        if self.m == 0:
            return 1.0
        return float((self.bits_set / self.m) ** self.k)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BloomFilter(m={self.m}, k={self.k}, count={self.count})"


class CountingBloomFilter:
    """Bloom filter with small counters, supporting deletion.

    Used where scores move between brackets over time: a peer's id is
    removed from its old bracket and added to the new one.  Counters are
    uint16 and overflow raises rather than silently corrupting.
    """

    _MAX = np.iinfo(np.uint16).max

    def __init__(self, capacity: int, error_rate: float = 0.01):
        self.capacity = int(capacity)
        self.error_rate = float(error_rate)
        self.m, self.k = optimal_parameters(self.capacity, self.error_rate)
        self._counts = np.zeros(self.m, dtype=np.uint16)
        self.count = 0

    def _positions(self, item: Hashable) -> np.ndarray:
        h1, h2 = _digests(item)
        idx = (h1 + h2 * np.arange(self.k, dtype=np.uint64)) % np.uint64(self.m)
        return idx.astype(np.int64)

    def add(self, item: Hashable) -> None:
        """Insert an item, incrementing its counters."""
        if self.count >= self.capacity:
            raise BloomCapacityError(
                f"counting bloom filter sized for {self.capacity} items is full"
            )
        pos = self._positions(item)
        if np.any(self._counts[pos] >= self._MAX):
            raise BloomCapacityError("counting bloom filter counter overflow")
        self._counts[pos] += 1
        self.count += 1

    def remove(self, item: Hashable) -> None:
        """Delete a previously-added item (checked: all counters > 0)."""
        pos = self._positions(item)
        if np.any(self._counts[pos] == 0):
            raise ValidationError(f"cannot remove item never added: {item!r}")
        self._counts[pos] -= 1
        self.count -= 1

    def __contains__(self, item: Hashable) -> bool:
        return bool((self._counts[self._positions(item)] > 0).all())

    @property
    def size_bytes(self) -> int:
        """Nominal size in bytes (2 bytes per counter)."""
        return 2 * self.m

    def __repr__(self) -> str:  # pragma: no cover
        return f"CountingBloomFilter(m={self.m}, k={self.k}, count={self.count})"
