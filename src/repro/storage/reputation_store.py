"""Bracketed Bloom-filter reputation storage.

The GossipTrust storage scheme: quantize global scores into ``2^b``
brackets and keep one Bloom filter per bracket holding the ids of peers
whose score falls in it.  A lookup probes brackets best-first and
returns the representative score of the first bracket containing the
id.  Errors are bounded by (a) the bracket width and (b) Bloom false
positives, both measurable via :meth:`BloomReputationStore.report`.

Brackets are geometric: reputation scores are power-law distributed
(most mass on few peers), so equal-width linear brackets would put
almost every peer in bracket 0.  The top bracket edge is the maximum
observed score; the bottom edge is ``min_score`` (scores below it share
the lowest bracket).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.storage.bloom import BloomFilter

__all__ = ["StorageReport", "BloomReputationStore"]


@dataclass(frozen=True)
class StorageReport:
    """Memory and accuracy accounting of a store snapshot."""

    #: total bloom bytes across brackets
    bloom_bytes: int
    #: bytes a raw (id, float64) table would need for the same peers
    raw_bytes: int
    #: mean absolute relative error of retrieved vs stored scores
    mean_relative_error: float
    #: worst-case relative error observed
    max_relative_error: float
    #: fraction of lookups answered from a wrong (false-positive) bracket
    misbracket_rate: float

    @property
    def compression_ratio(self) -> float:
        """raw_bytes / bloom_bytes (> 1 means the store saves memory).

        An empty report (un-built store) has ``bloom_bytes == 0`` and
        ``raw_bytes == 0``: the ratio is defined as 1.0 there — no
        memory saved, none wasted — rather than dividing by zero.
        """
        if self.bloom_bytes == 0:
            return 1.0 if self.raw_bytes == 0 else float("inf")
        return self.raw_bytes / self.bloom_bytes


class BloomReputationStore:
    """Stores one reputation vector as per-bracket Bloom filters.

    Parameters
    ----------
    bracket_bits:
        ``b``; the store uses ``2^b`` geometric brackets.
    error_rate:
        Per-bracket Bloom false-positive target.
    min_score:
        Lower edge of the lowest bracket (scores are probabilities of
        magnitude ~1/n; the default covers n up to 10^9).
    """

    def __init__(
        self,
        bracket_bits: int = 5,
        *,
        error_rate: float = 0.01,
        min_score: float = 1e-9,
    ):
        if not 1 <= bracket_bits <= 16:
            raise ValidationError(f"bracket_bits must be in [1, 16], got {bracket_bits}")
        if not min_score > 0:
            raise ValidationError(f"min_score must be > 0, got {min_score}")
        self.bracket_bits = int(bracket_bits)
        self.brackets = 1 << self.bracket_bits
        self.error_rate = float(error_rate)
        self.min_score = float(min_score)
        self._filters: List[BloomFilter] = []
        self._edges: Optional[np.ndarray] = None
        self._stored: Dict[int, float] = {}  # kept only for report(); not "used" by lookups

    # -- building ----------------------------------------------------------

    def build(self, scores: np.ndarray) -> None:
        """(Re)build the store from a full reputation vector.

        Safely re-entrant for per-epoch rebuilds: the new edges,
        filters, and score table are fully constructed *before* any
        instance state is touched, then installed in one final swap.  A
        validation error (or any mid-build failure) leaves the previous
        snapshot intact and servable, so a long-lived serving layer can
        call ``build`` every epoch without a window where lookups see a
        half-replaced store.
        """
        v = np.asarray(scores, dtype=np.float64)
        if v.ndim != 1 or v.size == 0:
            raise ValidationError("scores must be a non-empty 1-D vector")
        if np.any(v < 0):
            raise ValidationError("reputation scores are non-negative")
        top = float(v.max())
        if top <= self.min_score:
            top = self.min_score * 10.0
        # Geometric edges from min_score to top, brackets+1 edges.
        edges = np.geomspace(self.min_score, top, self.brackets + 1)
        assignment = self._bracket_of(v, edges=edges)
        per_bracket = np.bincount(assignment, minlength=self.brackets)
        filters = [
            BloomFilter(max(8, int(per_bracket[b]) * 2), self.error_rate)
            for b in range(self.brackets)
        ]
        stored: Dict[int, float] = {}
        for node, (score, b) in enumerate(zip(v, assignment)):
            filters[b].add(node)
            stored[node] = float(score)
        # Atomic install: all three references swap after full construction.
        self._edges = edges
        self._filters = filters
        self._stored = stored

    def _bracket_of(
        self, scores: np.ndarray, *, edges: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if edges is None:
            edges = self._edges
        assert edges is not None
        idx = np.searchsorted(edges, scores, side="right") - 1
        return np.clip(idx, 0, self.brackets - 1)

    # -- lookup ------------------------------------------------------------

    def lookup(self, node: int) -> float:
        """Retrieve the (quantized) score of ``node``.

        Probes brackets from the highest down — high-reputation lookups
        are the common case in peer selection — and returns the
        geometric midpoint of the first bracket whose filter claims the
        id.  Returns ``min_score`` if no bracket matches (cannot happen
        for stored ids: Bloom filters have no false negatives).
        """
        if self._edges is None:
            raise ValidationError("store is empty; call build() first")
        for b in range(self.brackets - 1, -1, -1):
            if node in self._filters[b]:
                return self.representative(b)
        return self.min_score

    def representative(self, bracket: int) -> float:
        """Geometric midpoint score of a bracket."""
        if self._edges is None:
            raise ValidationError("store is empty; call build() first")
        if not 0 <= bracket < self.brackets:
            raise ValidationError(f"bracket {bracket} out of range")
        lo, hi = self._edges[bracket], self._edges[bracket + 1]
        return float(np.sqrt(lo * hi))

    def lookup_vector(self, n: int) -> np.ndarray:
        """Retrieve scores for ids ``0..n-1`` as a dense vector."""
        return np.array([self.lookup(i) for i in range(n)])

    # -- accounting ----------------------------------------------------------

    @property
    def built(self) -> bool:
        """Whether the store holds a servable snapshot."""
        return self._edges is not None and bool(self._stored)

    def report(self) -> StorageReport:
        """Memory/accuracy report against the exact stored scores.

        An empty or un-built store reports all-zero accounting (and a
        neutral ``compression_ratio`` of 1.0) instead of raising — a
        per-epoch metrics scrape may race the first ``build``.
        """
        if not self.built:
            return StorageReport(
                bloom_bytes=0,
                raw_bytes=0,
                mean_relative_error=0.0,
                max_relative_error=0.0,
                misbracket_rate=0.0,
            )
        bloom_bytes = sum(f.size_bytes for f in self._filters)
        raw_bytes = len(self._stored) * (8 + 8)  # id + float64
        rels = []
        misbrackets = 0
        true_brackets = self._bracket_of(
            np.array([self._stored[i] for i in sorted(self._stored)])
        )
        for node in sorted(self._stored):
            truth = self._stored[node]
            got = self.lookup(node)
            if truth > 0:
                rels.append(abs(got - truth) / truth)
            found_bracket = None
            for b in range(self.brackets - 1, -1, -1):
                if node in self._filters[b]:
                    found_bracket = b
                    break
            if found_bracket != int(true_brackets[node]):
                misbrackets += 1
        rel_arr = np.asarray(rels) if rels else np.zeros(1)
        return StorageReport(
            bloom_bytes=bloom_bytes,
            raw_bytes=raw_bytes,
            mean_relative_error=float(rel_arr.mean()),
            max_relative_error=float(rel_arr.max()),
            misbracket_rate=misbrackets / len(self._stored),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BloomReputationStore(brackets={self.brackets}, "
            f"stored={len(self._stored)})"
        )
