"""Reputation storage: Bloom filters and the bracketed score store.

§7 lists "efficient reputation storage with Bloom filters" among the
GossipTrust innovations: instead of holding ``n`` floating-point scores,
a node quantizes scores into ``2^b`` brackets and inserts each peer id
into the Bloom filter of its bracket — trading a bounded quantization /
false-positive error for an order-of-magnitude memory saving.
"""

from repro.storage.bloom import BloomFilter, CountingBloomFilter, optimal_parameters
from repro.storage.reputation_store import BloomReputationStore, StorageReport

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "optimal_parameters",
    "BloomReputationStore",
    "StorageReport",
]
