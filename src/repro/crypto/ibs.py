"""Identity-based signing and verification of gossip payloads.

A :class:`IdentitySigner` wraps a node's PKG-issued key and produces
:class:`SignedEnvelope` objects around arbitrary payload bytes.
Verification re-derives the expected MAC from the claimed sender
identity — a message claiming to be from ``node:7`` but signed with any
other key fails, as does any payload tampering.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Union

from repro.crypto.pkg import PrivateKeyGenerator
from repro.errors import CryptoError, SignatureError

__all__ = ["SignedEnvelope", "IdentitySigner", "verify_envelope"]


@dataclass(frozen=True)
class SignedEnvelope:
    """A payload with its claimed sender identity and signature."""

    identity: str
    payload: bytes
    signature: bytes

    def __post_init__(self) -> None:
        if not self.identity:
            raise CryptoError("envelope identity must be non-empty")


def _mac(key: bytes, identity: str, payload: bytes) -> bytes:
    msg = b"ibs-sign:" + identity.encode() + b":" + payload
    return hmac.new(key, msg, hashlib.sha256).digest()


class IdentitySigner:
    """Signs payloads under one identity's PKG-issued key.

    Example
    -------
    >>> pkg = PrivateKeyGenerator(b"x" * 32)
    >>> signer = IdentitySigner("node:3", pkg)
    >>> env = signer.sign(b"gossip pair")
    >>> verify_envelope(env, pkg)
    True
    """

    def __init__(self, identity: str, pkg: PrivateKeyGenerator):
        self.identity = identity
        self._key = pkg.extract(identity)

    def sign(self, payload: Union[bytes, str]) -> SignedEnvelope:
        """Produce a signed envelope over ``payload``."""
        data = payload.encode() if isinstance(payload, str) else bytes(payload)
        return SignedEnvelope(
            identity=self.identity,
            payload=data,
            signature=_mac(self._key, self.identity, data),
        )


def verify_envelope(
    envelope: SignedEnvelope, pkg: PrivateKeyGenerator, *, raise_on_failure: bool = False
) -> bool:
    """Check an envelope against its claimed identity.

    Uses constant-time comparison.  With ``raise_on_failure`` a bad
    envelope raises :class:`SignatureError` instead of returning False.
    """
    key = pkg.verification_key(envelope.identity)
    expected = _mac(key, envelope.identity, envelope.payload)
    ok = hmac.compare_digest(expected, envelope.signature)
    if not ok and raise_on_failure:
        raise SignatureError(
            f"signature check failed for identity {envelope.identity!r}"
        )
    return ok
