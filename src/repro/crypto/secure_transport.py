"""Authenticated transport: identity-based signatures on every message.

Wraps a :class:`~repro.network.transport.Transport` so that every
payload travels inside a :class:`~repro.crypto.ibs.SignedEnvelope`
bound to the *claimed sender id*.  On delivery the wrapper verifies the
envelope before handing the payload to the application handler; spoofed
or tampered messages are counted and dropped.  This is the "secure
communication with identity-based cryptography" mechanism of §7: in an
open overlay with no PKI, a peer's network identity doubles as its
verification key, so gossip state cannot be forged in transit or
injected under a stolen identity.

Payload bytes are produced with :mod:`pickle` — acceptable here because
the simulation is a closed world; a production system would use a
schema codec.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable

from repro.crypto.ibs import IdentitySigner, SignedEnvelope, verify_envelope
from repro.crypto.pkg import PrivateKeyGenerator
from repro.network.transport import Message, Transport

__all__ = ["SecureTransport"]


def _identity(node: int) -> str:
    return f"node:{node}"


class SecureTransport:
    """Signature-checking facade over a plain :class:`Transport`.

    Exposes the same ``register`` / ``send`` surface, so protocol
    engines can run over either transparently.

    Parameters
    ----------
    transport:
        The underlying (unauthenticated) transport.
    pkg:
        The private key generator issuing per-identity keys.
    """

    def __init__(self, transport: Transport, pkg: PrivateKeyGenerator):
        self.transport = transport
        self.pkg = pkg
        self._signers: dict = {}
        #: messages dropped because their signature failed
        self.rejected = 0
        #: messages verified and delivered
        self.verified = 0

    # -- Transport facade ---------------------------------------------------

    @property
    def sim(self):
        """The underlying simulator (engines reach it through here)."""
        return self.transport.sim

    @property
    def latency(self) -> float:
        """Mean one-way latency of the wrapped transport."""
        return self.transport.latency

    @property
    def sent(self) -> int:
        """Messages sent through the wrapped transport."""
        return self.transport.sent

    @property
    def drop_count(self) -> int:
        """Drops in the wrapped transport plus signature rejections."""
        return self.transport.drop_count + self.rejected

    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        """Install ``handler``; it only ever sees verified payloads."""

        def checked(msg: Message) -> None:
            envelope = msg.payload
            if not isinstance(envelope, SignedEnvelope):
                self.rejected += 1
                return
            if envelope.identity != _identity(msg.src):
                self.rejected += 1
                return
            if not verify_envelope(envelope, self.pkg):
                self.rejected += 1
                return
            self.verified += 1
            handler(
                Message(
                    src=msg.src,
                    dst=msg.dst,
                    payload=pickle.loads(envelope.payload),
                    kind=msg.kind,
                    sent_at=msg.sent_at,
                )
            )

        self.transport.register(node, checked)

    def unregister(self, node: int) -> None:
        """Remove ``node``'s handler."""
        self.transport.unregister(node)

    def send(
        self, src: int, dst: int, payload: Any, *, kind: str = "data", size: int = 0
    ) -> bool:
        """Sign ``payload`` under ``src``'s identity key and send it."""
        signer = self._signers.get(src)
        if signer is None:
            signer = IdentitySigner(_identity(src), self.pkg)
            self._signers[src] = signer
        envelope = signer.sign(pickle.dumps(payload))
        return self.transport.send(src, dst, envelope, kind=kind, size=size)

    # -- attack surface for tests ---------------------------------------------

    def inject_forged(
        self, claimed_src: int, dst: int, payload: Any, forged_key: bytes
    ) -> bool:
        """Inject a message signed with the wrong key (attacker move).

        Returns whether the raw transport accepted it (it will); the
        verification layer must reject it on delivery.
        """
        import hashlib
        import hmac as hmac_mod

        data = pickle.dumps(payload)
        identity = _identity(claimed_src)
        bad_sig = hmac_mod.new(
            forged_key, b"ibs-sign:" + identity.encode() + b":" + data, hashlib.sha256
        ).digest()
        envelope = SignedEnvelope(identity=identity, payload=data, signature=bad_sig)
        return self.transport.send(claimed_src, dst, envelope, kind="forged")

    def __repr__(self) -> str:  # pragma: no cover
        return f"SecureTransport(verified={self.verified}, rejected={self.rejected})"
