"""The Private Key Generator (PKG) of the simulated IBS scheme.

In identity-based cryptography a trusted authority holds a master
secret and derives each participant's private key from their identity
string.  Here the derivation is ``HMAC(master_secret, identity)`` —
deterministic, so a peer re-requesting its key gets the same bytes,
and infeasible to invert without the master secret.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Optional, Set

from repro.errors import CryptoError

__all__ = ["PrivateKeyGenerator"]


class PrivateKeyGenerator:
    """Issues identity-bound private keys from one master secret.

    Parameters
    ----------
    master_secret:
        32+ bytes of secret material; generated fresh when omitted.
        Tests pass a fixed secret for determinism.
    """

    KEY_BYTES = 32

    def __init__(self, master_secret: Optional[bytes] = None):
        if master_secret is None:
            master_secret = os.urandom(self.KEY_BYTES)
        if len(master_secret) < 16:
            raise CryptoError("master secret must be at least 16 bytes")
        self._master = bytes(master_secret)
        self._issued: Set[str] = set()

    def extract(self, identity: str) -> bytes:
        """Derive the private key for ``identity`` (idempotent)."""
        if not identity:
            raise CryptoError("identity must be a non-empty string")
        self._issued.add(identity)
        return hmac.new(self._master, f"extract:{identity}".encode(), hashlib.sha256).digest()

    def verification_key(self, identity: str) -> bytes:
        """Key used by verifiers for ``identity``.

        In real IBS, verification needs only public parameters.  Our
        HMAC simulation is symmetric, so the "verification key" equals
        the signing key — the simulation models the *trust topology*
        (keys bound to identities by a single authority), not the
        asymmetry.  Callers must treat this as an oracle available to
        all honest verifiers.
        """
        return self.extract(identity)

    @property
    def issued_identities(self) -> frozenset:
        """Identities that have requested keys (monitoring/tests)."""
        return frozenset(self._issued)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PrivateKeyGenerator(issued={len(self._issued)})"
