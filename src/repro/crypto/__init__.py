"""Simulated identity-based signatures for gossip message authenticity.

§7 lists "secure communication with identity-based cryptography" among
the GossipTrust mechanisms: with IBC, a peer's network identity *is*
its public key, so gossip messages can be authenticated without any
certificate infrastructure — exactly what an open unstructured overlay
lacks.

**Substitution (see DESIGN.md):** real IBC needs pairing-based
cryptography, unavailable offline.  We simulate the *semantics* — a
trusted PKG issues per-identity private keys; signatures verify against
the identity alone; forgeries and tampered payloads are rejected —
with keyed SHA-256 HMACs.  Every property the experiments exercise
(authenticity, non-forgeability by peers without the identity key)
holds; bit-level security against a real adversary is out of scope.
"""

from repro.crypto.ibs import IdentitySigner, SignedEnvelope, verify_envelope
from repro.crypto.pkg import PrivateKeyGenerator
from repro.crypto.secure_transport import SecureTransport

__all__ = [
    "PrivateKeyGenerator",
    "IdentitySigner",
    "SignedEnvelope",
    "verify_envelope",
    "SecureTransport",
]
