"""Per-cycle telemetry, uniform across gossip engines.

Every engine reports its cycle outcome through the same
:class:`~repro.gossip.base.GossipCycleResult` contract, so cost
accounting is engine-agnostic: :class:`CycleTelemetry` turns a stream
of cycle results into :class:`CycleRecord` rows — steps, messages
sent/dropped, mass lost, gossip error, wall time — and aggregates them
for CLI and experiment output.

Two ways to feed it:

* pass a :class:`CycleTelemetry` (or any ``on_cycle`` callable) to
  :meth:`repro.core.gossiptrust.GossipTrust.run`, which records every
  cycle automatically and attaches the recorder to the result;
* call :meth:`CycleTelemetry.record` yourself around direct
  ``engine.run_cycle`` calls (the experiments do this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List

from repro.metrics.reporting import TextTable, percentile
from repro.utils.proc import peak_rss_kib as _peak_rss_kib

if TYPE_CHECKING:
    from repro.gossip.base import GossipCycleResult

__all__ = ["Stopwatch", "CycleRecord", "CycleTelemetry"]


class Stopwatch:
    """Monotonic wall-clock interval timer for the measurement layer.

    The single sanctioned wall-clock reader outside :mod:`repro.utils.proc`
    (enforced by lint rule GT003): deterministic code that needs a wall
    time measured *around* it takes a ``Stopwatch`` instead of touching
    :mod:`time` itself.

    >>> watch = Stopwatch()           # starts immediately
    >>> elapsed = watch.elapsed()     # seconds since start
    >>> lap = watch.restart()         # seconds since start, then reset
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Return the elapsed seconds and start a new interval."""
        now = time.perf_counter()
        lap, self._start = now - self._start, now
        return lap

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stopwatch(elapsed={self.elapsed():.6f}s)"


@dataclass(frozen=True)
class CycleRecord:
    """One aggregation cycle's cost and accuracy, any engine."""

    #: 1-based aggregation-cycle index
    cycle: int
    #: gossip steps / rounds the cycle took
    steps: int
    #: point-to-point messages sent (0 for engines without messages)
    messages_sent: int
    #: messages lost to the transport
    messages_dropped: int
    #: fraction of push-sum (x, w) mass lost during the cycle
    mass_lost_fraction: float
    #: average relative error of the gossiped vs exact cycle vector
    gossip_error: float
    #: engine execution mode (``"full"``, ``"message"``, ...)
    mode: str
    #: wall-clock seconds spent in ``run_cycle``
    wall_time: float
    #: process peak RSS when the cycle was recorded (KiB; 0 if unknown)
    peak_rss_kib: float = 0.0
    #: wall-clock seconds per cycle phase (``setup``/``oracle``/``alloc``/
    #: ``kernel``/``estimate``); empty for engines without a breakdown
    phases: Dict[str, float] = field(default_factory=dict)


class CycleTelemetry:
    """Records per-cycle telemetry; usable directly as an ``on_cycle`` hook."""

    def __init__(self) -> None:
        self.records: List[CycleRecord] = []

    # -- recording -------------------------------------------------------

    def record(
        self, cycle: int, result: "GossipCycleResult", *, wall_time: float = 0.0
    ) -> CycleRecord:
        """Append one cycle's outcome; returns the stored record."""
        rec = CycleRecord(
            cycle=int(cycle),
            steps=int(result.steps),
            messages_sent=int(result.messages_sent),
            messages_dropped=int(result.messages_dropped),
            mass_lost_fraction=float(result.mass_lost_fraction),
            gossip_error=float(result.gossip_error),
            mode=str(result.mode),
            wall_time=float(wall_time),
            peak_rss_kib=_peak_rss_kib(),
            phases=dict(getattr(result, "phase_times", {}) or {}),
        )
        self.records.append(rec)
        return rec

    def timed(self, cycle: int, engine, S, v) -> "GossipCycleResult":
        """Run ``engine.run_cycle(S, v)`` and record it with wall time."""
        start = time.perf_counter()
        result = engine.run_cycle(S, v)
        self.record(cycle, result, wall_time=time.perf_counter() - start)
        return result

    def __call__(self, record: CycleRecord) -> None:
        """Accept an externally-built record (the ``on_cycle`` form)."""
        self.records.append(record)

    def clear(self) -> None:
        """Drop all records."""
        self.records = []

    # -- aggregation -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CycleRecord]:
        return iter(self.records)

    def summary(self) -> Dict[str, float]:
        """Totals and means over the recorded cycles."""
        recs = self.records
        if not recs:
            return {
                "cycles": 0,
                "total_steps": 0,
                "messages_sent": 0,
                "messages_dropped": 0,
                "max_mass_lost_fraction": 0.0,
                "mean_gossip_error": 0.0,
                "wall_time": 0.0,
                "wall_time_p50": 0.0,
                "wall_time_p90": 0.0,
                "wall_time_max": 0.0,
                "peak_rss_kib": 0.0,
            }
        walls = [r.wall_time for r in recs]
        return {
            "cycles": len(recs),
            "total_steps": sum(r.steps for r in recs),
            "messages_sent": sum(r.messages_sent for r in recs),
            "messages_dropped": sum(r.messages_dropped for r in recs),
            "max_mass_lost_fraction": max(r.mass_lost_fraction for r in recs),
            "mean_gossip_error": sum(r.gossip_error for r in recs) / len(recs),
            "wall_time": sum(walls),
            "wall_time_p50": percentile(walls, 50.0),
            "wall_time_p90": percentile(walls, 90.0),
            "wall_time_max": max(walls),
            "peak_rss_kib": max(r.peak_rss_kib for r in recs),
        }

    def phase_summary(self) -> Dict[str, float]:
        """Total seconds per cycle phase over the recorded cycles.

        Sums the per-cycle ``phases`` breakdowns (``setup``/``oracle``/
        ``alloc``/``kernel``/``estimate``) so a bench or experiment can
        explain *where* its wall time went — e.g. whether a
        workspace-reuse change moved the ``alloc`` share.  Empty when
        no recorded cycle carried a breakdown.
        """
        totals: Dict[str, float] = {}
        for rec in self.records:
            for name, seconds in rec.phases.items():
                totals[name] = totals.get(name, 0.0) + float(seconds)
        return totals

    def summary_line(self) -> str:
        """One-line cost summary for experiment notes / CLI output."""
        s = self.summary()
        line = (
            f"telemetry: {s['cycles']} cycles, {s['total_steps']} steps, "
            f"{s['messages_sent']} msgs sent ({s['messages_dropped']} dropped), "
            f"max mass lost {s['max_mass_lost_fraction']:.3g}, "
            f"{s['wall_time']:.3f}s gossip wall time "
            f"(p50 {s['wall_time_p50']:.3f}s, p90 {s['wall_time_p90']:.3f}s, "
            f"max {s['wall_time_max']:.3f}s), peak rss {s['peak_rss_kib']:.0f} KiB"
        )
        phases = self.phase_summary()
        if phases:
            parts = ", ".join(f"{k} {v:.3f}s" for k, v in sorted(phases.items()))
            line += f" [phases: {parts}]"
        return line

    def render(self) -> str:
        """Per-cycle table rendering."""
        table = TextTable(
            [
                "cycle",
                "mode",
                "steps",
                "msgs",
                "dropped",
                "mass_lost",
                "gossip_err",
                "wall_s",
                "rss_kib",
            ],
            title="Per-cycle telemetry",
            float_fmt=".3g",
        )
        for r in self.records:
            table.add_row(
                [
                    r.cycle,
                    r.mode,
                    r.steps,
                    r.messages_sent,
                    r.messages_dropped,
                    r.mass_lost_fraction,
                    r.gossip_error,
                    r.wall_time,
                    r.peak_rss_kib,
                ]
            )
        return table.render()

    def __repr__(self) -> str:  # pragma: no cover
        return f"CycleTelemetry(cycles={len(self.records)})"
