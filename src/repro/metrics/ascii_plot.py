"""ASCII line charts for figure series — terminal-native figure output.

The paper's figures are line charts; the experiment harness regenerates
their *data* as :class:`~repro.metrics.reporting.Series`.  This module
renders those series as an ASCII chart so `gossiptrust run fig3` shows
an actual figure in the terminal, not only coordinate lists.

Rendering rules: one glyph per series (``*+ox#@`` cycling), points
plotted on a character grid with linear or log axes, a legend below,
min/max axis labels.  Overlapping points show the later series' glyph.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ValidationError
from repro.metrics.reporting import Series

__all__ = ["render_chart"]

_GLYPHS = "*+ox#@%&"


def _transform(value: float, lo: float, hi: float, log: bool) -> float:
    """Map value to [0, 1] under the chosen axis scale."""
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def render_chart(
    series: Sequence[Series],
    *,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render series as an ASCII chart.

    Parameters
    ----------
    series:
        The curves to plot (at least one non-empty).
    width, height:
        Plot-area size in characters (excluding axes/labels).
    log_x, log_y:
        Logarithmic axes (all plotted values must then be > 0).
    title, x_label, y_label:
        Annotations.

    Returns
    -------
    str
        The chart, ready to print.
    """
    if width < 8 or height < 4:
        raise ValidationError(f"chart must be at least 8x4, got {width}x{height}")
    populated = [s for s in series if len(s) > 0]
    if not populated:
        raise ValidationError("nothing to plot: all series are empty")
    xs = [x for s in populated for x in s.x]
    ys = [y for s in populated for y in s.y]
    if log_x and min(xs) <= 0:
        raise ValidationError("log_x requires strictly positive x values")
    if log_y and min(ys) <= 0:
        raise ValidationError("log_y requires strictly positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for si, s in enumerate(populated):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for x, y in zip(s.x, s.y):
            col = round(_transform(x, x_lo, x_hi, log_x) * (width - 1))
            row = round(_transform(y, y_lo, y_hi, log_y) * (height - 1))
            grid[height - 1 - row][col] = glyph

    fmt = "{:.3g}"
    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_label = fmt.format(y_hi)
    y_lo_label = fmt.format(y_lo)
    margin = max(len(y_hi_label), len(y_lo_label), len(y_label)) + 1
    for r, row_chars in enumerate(grid):
        if r == 0:
            prefix = y_hi_label.rjust(margin - 1)
        elif r == height - 1:
            prefix = y_lo_label.rjust(margin - 1)
        elif r == height // 2:
            prefix = y_label.rjust(margin - 1)
        else:
            prefix = " " * (margin - 1)
        lines.append(f"{prefix}|{''.join(row_chars)}")
    lines.append(" " * margin + "-" * width)
    x_lo_label = fmt.format(x_lo)
    x_hi_label = fmt.format(x_hi)
    gap = width - len(x_lo_label) - len(x_hi_label) - len(x_label)
    gap_left = max(1, gap // 2)
    gap_right = max(1, gap - gap_left)
    lines.append(
        " " * margin
        + x_lo_label
        + " " * gap_left
        + x_label
        + " " * gap_right
        + x_hi_label
    )
    legend = "   ".join(
        f"{_GLYPHS[si % len(_GLYPHS)]} {s.label}" for si, s in enumerate(populated)
    )
    lines.append(" " * margin + legend)
    return "\n".join(lines)
