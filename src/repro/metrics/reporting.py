"""Text rendering of experiment outputs — the tables and figure series.

The benchmark harness reproduces the paper's artifacts as *text*: a
:class:`TextTable` per table, a set of :class:`Series` per figure (one
series per plotted curve).  Everything renders deterministically so
outputs can be diffed across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.errors import ValidationError

__all__ = ["TextTable", "Series", "percentile"]

Cell = Union[str, int, float]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Deterministic pure-Python implementation matching NumPy's default
    (``linear``) method; used by telemetry summaries so reports do not
    need an array round-trip for a handful of wall times.  Returns
    ``0.0`` for an empty sequence.
    """
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(float(v) for v in values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def _fmt(value: Cell, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


class TextTable:
    """A fixed-column text table with aligned rendering.

    Example
    -------
    >>> t = TextTable(["eps", "steps"], title="demo")
    >>> t.add_row([1e-4, 28])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], *, title: str = "", float_fmt: str = ".4g"):
        if not columns:
            raise ValidationError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.float_fmt = float_fmt
        self._rows: List[List[str]] = []

    def add_row(self, values: Sequence[Cell]) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValidationError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([_fmt(v, self.float_fmt) for v in values])

    @property
    def row_count(self) -> int:
        """Number of data rows."""
        return len(self._rows)

    def render(self) -> str:
        """The table as aligned text (title, header, separator, rows)."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self._rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Series:
    """One plotted curve of a figure, as (x, y) pairs with a label."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def render(self, *, float_fmt: str = ".4g") -> str:
        """The series as 'label: (x, y) (x, y) ...' text."""
        pts = " ".join(
            f"({format(xv, float_fmt)}, {format(yv, float_fmt)})"
            for xv, yv in zip(self.x, self.y)
        )
        return f"{self.label}: {pts}"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValidationError("series x and y must have equal length")

    def __len__(self) -> int:
        return len(self.x)
