"""Error and ranking metrics for reputation vectors.

The headline metric is the paper's Eq. 8 RMS relative aggregation
error::

    E = sqrt( (1/n) * sum_i ((v_i - u_i) / v_i)^2 )

with ``v`` the calculated (reference) and ``u`` the gossiped/attacked
scores.  Ranking metrics matter too: what a reputation system is *for*
is choosing the best peer, so Kendall tau and top-k overlap are
reported alongside.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import stats

from repro.errors import ValidationError

__all__ = [
    "rms_relative_error",
    "l1_error",
    "linf_error",
    "kendall_tau",
    "rank_overlap",
]


def _pair(v: np.ndarray, u: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(v, dtype=np.float64)
    b = np.asarray(u, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValidationError(f"vectors must be equal-length 1-D, got {a.shape} vs {b.shape}")
    return a, b


def rms_relative_error(
    v: np.ndarray,
    u: np.ndarray,
    *,
    floor: float = 1e-12,
    cap: Optional[float] = None,
) -> float:
    """Eq. 8: RMS of per-peer relative errors ``(v_i - u_i)/v_i``.

    Components where the reference ``v_i`` is (numerically) zero are
    excluded rather than floored — a peer with zero calculated
    reputation has no defined relative error, and flooring would let a
    single such peer dominate the sum.

    ``cap`` winsorizes per-component relative errors before squaring.
    Relative error is heavy-tailed on near-zero scores (a peer whose
    tiny score is off 50x contributes 2500 to the mean); operationally a
    score off 10x and one off 50x are equally broken, so the threat-
    model experiments cap at 10 to keep seed-to-seed curves comparable.
    """
    a, b = _pair(v, u)
    mask = np.abs(a) > floor
    if not mask.any():
        raise ValidationError("reference vector is all zeros; RMS relative error undefined")
    rel = np.abs((a[mask] - b[mask]) / a[mask])
    if cap is not None:
        if cap <= 0:
            raise ValidationError(f"cap must be > 0, got {cap}")
        rel = np.minimum(rel, cap)
    return float(np.sqrt(np.mean(rel**2)))


def l1_error(v: np.ndarray, u: np.ndarray) -> float:
    """Total-variation-style L1 distance ``sum_i |v_i - u_i|``."""
    a, b = _pair(v, u)
    return float(np.abs(a - b).sum())


def linf_error(v: np.ndarray, u: np.ndarray) -> float:
    """Worst-component distance ``max_i |v_i - u_i|``."""
    a, b = _pair(v, u)
    return float(np.abs(a - b).max())


def kendall_tau(v: np.ndarray, u: np.ndarray) -> float:
    """Kendall rank correlation between two score vectors (1 = same order)."""
    a, b = _pair(v, u)
    tau, _p = stats.kendalltau(a, b)
    return float(tau)


def rank_overlap(v: np.ndarray, u: np.ndarray, k: int) -> float:
    """Fraction of the reference top-``k`` also in the estimate top-``k``.

    The operationally decisive metric: reputation-based selection only
    ever looks at the top of the ranking.
    """
    a, b = _pair(v, u)
    if not 1 <= k <= a.shape[0]:
        raise ValidationError(f"k must be in [1, {a.shape[0]}], got {k}")
    top_v = set(np.argsort(-a, kind="stable")[:k].tolist())
    top_u = set(np.argsort(-b, kind="stable")[:k].tolist())
    return len(top_v & top_u) / k
