"""Convergence accounting and the paper's theoretical cycle bound.

§4.1 cites the PowerTrust proof that the number of aggregation cycles
satisfies ``d <= ceil(log_b delta)`` with ``b = lambda_2 / lambda_1`` of
the trust matrix.  :func:`theoretical_cycle_bound` evaluates that bound
so experiments can report measured-vs-predicted cycle counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.trust.matrix import TrustMatrix

__all__ = ["theoretical_cycle_bound", "StepStats"]


def theoretical_cycle_bound(S: TrustMatrix, delta: float) -> int:
    """``ceil(log_b delta)`` with ``b = lambda_2/lambda_1`` (§4.1).

    Returns a large sentinel (10_000) when the spectral gap is
    degenerate (``lambda_2`` ~ ``lambda_1`` or ~0), where the bound is
    uninformative.
    """
    if not delta > 0:
        raise ValidationError(f"delta must be > 0, got {delta}")
    lam1, lam2 = S.spectral_gap()
    if lam1 <= 0 or lam2 <= 0:
        return 1
    b = lam2 / lam1
    if b >= 1.0 - 1e-12:
        return 10_000
    return int(math.ceil(math.log(delta) / math.log(b)))


@dataclass
class StepStats:
    """Summary statistics of a collection of step/cycle counts."""

    mean: float
    std: float
    minimum: int
    maximum: int
    count: int

    @classmethod
    def from_counts(cls, counts: Sequence[int]) -> "StepStats":
        """Summarize raw counts (e.g. per-cycle gossip steps)."""
        if len(counts) == 0:
            raise ValidationError("cannot summarize an empty count list")
        arr = np.asarray(counts, dtype=np.float64)
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std()),
            minimum=int(arr.min()),
            maximum=int(arr.max()),
            count=int(arr.size),
        )

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.std:.1f} (min {self.minimum}, max {self.maximum})"
