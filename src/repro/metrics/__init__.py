"""Evaluation metrics: error measures (Eq. 8), ranking quality, reporting."""

from repro.metrics.convergence import theoretical_cycle_bound
from repro.metrics.errors import (
    l1_error,
    linf_error,
    rank_overlap,
    kendall_tau,
    rms_relative_error,
)
from repro.metrics.reporting import Series, TextTable
from repro.metrics.telemetry import CycleRecord, CycleTelemetry

__all__ = [
    "CycleRecord",
    "CycleTelemetry",
    "rms_relative_error",
    "l1_error",
    "linf_error",
    "kendall_tau",
    "rank_overlap",
    "theoretical_cycle_bound",
    "TextTable",
    "Series",
]
