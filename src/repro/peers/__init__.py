"""Peer behavior and threat models.

§6.1 studies two malicious settings: *independent* (peers cheat in
transactions and invert their feedback) and *collusive* (groups rate
each other very high and outsiders very low).  This package builds peer
populations with those behaviors and synthesizes the honest/attacked
trust-matrix pairs the Fig. 4 error analyses compare.
"""

from repro.peers.behavior import (
    PeerPopulation,
    rate_transaction,
    reputation_inverse_rate,
)
from repro.peers.threat_models import (
    ThreatScenario,
    build_collusive_scenario,
    build_independent_scenario,
)

__all__ = [
    "PeerPopulation",
    "rate_transaction",
    "reputation_inverse_rate",
    "ThreatScenario",
    "build_independent_scenario",
    "build_collusive_scenario",
]
