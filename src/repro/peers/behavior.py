"""Peer populations and behavioral rules.

A :class:`PeerPopulation` assigns every peer a behavioral class
(:class:`~repro.types.PeerClass`), an intrinsic *service quality* (the
probability a transaction it serves is authentic), and — for colluders —
a collusion group id.  Rating rules implement the paper's §6.1:

* honest peers rate what they experienced;
* independent malicious peers invert — "they rate the peers who provide
  good service very low and rate those who provide bad service very
  high";
* collusive peers "rate the peers in their collusion group very high and
  rate outsiders very low".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.types import PeerClass, TransactionOutcome
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability

__all__ = [
    "PeerPopulation",
    "rate_transaction",
    "reputation_inverse_rate",
]

#: default authentic-service probability of an honest peer
HONEST_QUALITY = 0.95
#: default authentic-service probability of a malicious peer ("cheat
#: during transactions", §6.1)
MALICIOUS_QUALITY = 0.2


@dataclass
class PeerPopulation:
    """A peer population with behavioral classes and service qualities.

    Attributes
    ----------
    classes:
        Per-peer :class:`PeerClass` array (dtype object).
    quality:
        Per-peer authentic-service probability.
    group:
        Collusion group id per peer (-1 when not colluding).
    """

    classes: np.ndarray
    quality: np.ndarray
    group: np.ndarray

    @property
    def n(self) -> int:
        """Population size."""
        return self.classes.shape[0]

    @classmethod
    def build(
        cls,
        n: int,
        *,
        malicious_fraction: float = 0.0,
        collusive: bool = False,
        group_size: int = 0,
        honest_quality: float = HONEST_QUALITY,
        malicious_quality: float = MALICIOUS_QUALITY,
        rng: SeedLike = None,
    ) -> "PeerPopulation":
        """Sample a population.

        Parameters
        ----------
        n:
            Number of peers.
        malicious_fraction:
            Fraction gamma of malicious peers (chosen uniformly).
        collusive:
            If True, malicious peers are partitioned into collusion
            groups of ``group_size`` (the last group may be smaller);
            otherwise they act independently.
        group_size:
            Peers per collusion group (required when ``collusive``).
        honest_quality, malicious_quality:
            Authentic-service probabilities per class.
        """
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        check_probability("malicious_fraction", malicious_fraction)
        check_probability("honest_quality", honest_quality)
        check_probability("malicious_quality", malicious_quality)
        if collusive and group_size < 2:
            raise ValidationError(
                f"collusive populations need group_size >= 2, got {group_size}"
            )
        gen = as_generator(rng)
        classes = np.full(n, PeerClass.HONEST, dtype=object)
        quality = np.full(n, float(honest_quality))
        group = np.full(n, -1, dtype=np.int64)
        m = int(round(n * malicious_fraction))
        if m > 0:
            bad = gen.choice(n, size=m, replace=False)
            quality[bad] = float(malicious_quality)
            if collusive:
                classes[bad] = PeerClass.MALICIOUS_COLLUSIVE
                for g, start in enumerate(range(0, m, group_size)):
                    group[bad[start : start + group_size]] = g
            else:
                classes[bad] = PeerClass.MALICIOUS_INDEPENDENT
        return cls(classes=classes, quality=quality, group=group)

    # -- queries -----------------------------------------------------------

    def is_malicious(self, node: int) -> bool:
        """Whether ``node`` is malicious (either kind)."""
        return self.classes[node] in (
            PeerClass.MALICIOUS_INDEPENDENT,
            PeerClass.MALICIOUS_COLLUSIVE,
        )

    def malicious_mask(self) -> np.ndarray:
        """Boolean mask of malicious peers."""
        return np.fromiter(
            (self.is_malicious(i) for i in range(self.n)), dtype=bool, count=self.n
        )

    def honest_nodes(self) -> np.ndarray:
        """Ids of honest peers."""
        return np.flatnonzero(~self.malicious_mask())

    def malicious_nodes(self) -> np.ndarray:
        """Ids of malicious peers."""
        return np.flatnonzero(self.malicious_mask())

    def same_group(self, a: int, b: int) -> bool:
        """Whether two peers collude in the same group."""
        return bool(self.group[a] >= 0 and self.group[a] == self.group[b])

    def group_count(self) -> int:
        """Number of collusion groups."""
        gmax = int(self.group.max())
        return gmax + 1 if gmax >= 0 else 0

    def serve(self, node: int, gen: np.random.Generator) -> TransactionOutcome:
        """Sample the outcome of a transaction served by ``node``."""
        ok = gen.random() < self.quality[node]
        return TransactionOutcome.AUTHENTIC if ok else TransactionOutcome.INAUTHENTIC


def rate_transaction(
    population: PeerPopulation,
    rater: int,
    ratee: int,
    outcome: TransactionOutcome,
) -> TransactionOutcome:
    """The outcome *as reported* by ``rater`` (the dishonesty rules).

    Honest raters report the truth.  Independent malicious raters invert
    the experienced outcome.  Collusive raters report AUTHENTIC for
    group members and INAUTHENTIC for everyone else, regardless of the
    real outcome.
    """
    klass = population.classes[rater]
    if klass is PeerClass.MALICIOUS_INDEPENDENT:
        return (
            TransactionOutcome.INAUTHENTIC
            if outcome is TransactionOutcome.AUTHENTIC
            else TransactionOutcome.AUTHENTIC
        )
    if klass is PeerClass.MALICIOUS_COLLUSIVE:
        return (
            TransactionOutcome.AUTHENTIC
            if population.same_group(rater, ratee)
            else TransactionOutcome.INAUTHENTIC
        )
    return outcome


def reputation_inverse_rate(
    reputation: np.ndarray, *, base: float = 0.05, cap: float = 0.95
) -> np.ndarray:
    """Inauthentic-response rate inversely proportional to reputation (§6.4).

    "Every node has a rate to respond a query with inauthentic files.
    For simplicity, this rate is modeled inversely proportional to
    node's global reputation."  The uniform score ``1/n`` maps to the
    ``base`` rate, lower scores scale up proportionally, and the result
    is capped at ``cap`` (a peer nobody trusts serves junk almost
    always, not with probability > 1).
    """
    v = np.asarray(reputation, dtype=np.float64)
    if v.ndim != 1:
        raise ValidationError(f"reputation must be 1-D, got shape {v.shape}")
    check_probability("base", base)
    check_probability("cap", cap)
    n = v.shape[0]
    uniform = 1.0 / n
    with np.errstate(divide="ignore"):
        rate = base * uniform / np.where(v > 0, v, np.inf)
    rate[v <= 0] = cap
    return np.minimum(rate, cap)
