"""Threat-model scenario synthesis for the Fig. 4 error analyses.

A scenario is a *matched pair* of trust matrices built from one shared
transaction stream:

* ``S_true`` — every rating reported truthfully (what the reputation
  system would see in an attack-free world), and
* ``S_attacked`` — the same transactions, but malicious raters apply
  their dishonesty rules (inversion or collusion boosting).

Sharing the transaction stream (common random numbers) means the RMS
error between the aggregations of the two matrices isolates exactly the
damage done by dishonest *feedback*, which is what Fig. 4 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributions.powerlaw import FeedbackCountDistribution
from repro.errors import ValidationError
from repro.peers.behavior import PeerPopulation, rate_transaction
from repro.trust.feedback import FeedbackLedger
from repro.trust.matrix import TrustMatrix
from repro.types import TransactionOutcome
from repro.utils.rng import SeedLike, as_generator

__all__ = ["ThreatScenario", "build_independent_scenario", "build_collusive_scenario"]


@dataclass
class ThreatScenario:
    """A matched honest/attacked trust-matrix pair plus its population."""

    population: PeerPopulation
    #: matrix from truthful reports of the shared transaction stream
    S_true: TrustMatrix
    #: matrix from the same stream with dishonest reporting applied
    S_attacked: TrustMatrix
    #: total transactions generated
    transactions: int

    @property
    def n(self) -> int:
        """Number of peers."""
        return self.population.n


def _generate(
    population: PeerPopulation,
    feedback_dist: FeedbackCountDistribution,
    rng: SeedLike,
    *,
    collusion_boost: int = 5,
) -> ThreatScenario:
    """Run the shared transaction stream and build both ledgers.

    ``collusion_boost`` extra mutual transactions per collusion pair
    model the "rate ... very high" boosting — colluders don't merely lie
    about real downloads, they fabricate volume between themselves.
    """
    gen = as_generator(rng)
    n = population.n
    truthful = FeedbackLedger(n)
    attacked = FeedbackLedger(n)
    counts = feedback_dist.sample_counts(n, gen)
    tx = 0
    for rater in range(int(n)):
        k = int(counts[rater])
        partners = gen.integers(0, n - 1, size=k)
        partners[partners >= rater] += 1
        for ratee in partners.tolist():
            outcome = population.serve(ratee, gen)
            truthful.record_transaction(rater, ratee, outcome)
            attacked.record_transaction(
                rater, ratee, rate_transaction(population, rater, ratee, outcome)
            )
            tx += 1
    # Fabricated intra-group boosting (attacked ledger only).
    if population.group_count() > 0 and collusion_boost > 0:
        for g in range(population.group_count()):
            members = np.flatnonzero(population.group == g)
            for a in members.tolist():
                for b in members.tolist():
                    if a == b:
                        continue
                    for _ in range(collusion_boost):
                        attacked.record_transaction(
                            a, b, TransactionOutcome.AUTHENTIC
                        )
                        tx += 1
    return ThreatScenario(
        population=population,
        S_true=TrustMatrix.from_ledger(truthful),
        S_attacked=TrustMatrix.from_ledger(attacked),
        transactions=tx,
    )


def build_independent_scenario(
    n: int,
    malicious_fraction: float,
    *,
    feedback_dist: Optional[FeedbackCountDistribution] = None,
    rng: SeedLike = None,
) -> ThreatScenario:
    """Independent threat model (§6.1): lone cheaters with inverted feedback.

    Parameters
    ----------
    n:
        Number of peers (paper: 1000).
    malicious_fraction:
        Fraction gamma of independent malicious peers.
    feedback_dist:
        Feedback-count distribution (default: the paper's d_max=200,
        d_avg=20 power law).
    rng:
        Seed/generator; drives population sampling and the shared
        transaction stream.
    """
    gen = as_generator(rng)
    population = PeerPopulation.build(
        n, malicious_fraction=malicious_fraction, collusive=False, rng=gen
    )
    dist = feedback_dist or FeedbackCountDistribution()
    return _generate(population, dist, gen)


def build_collusive_scenario(
    n: int,
    malicious_fraction: float,
    group_size: int,
    *,
    feedback_dist: Optional[FeedbackCountDistribution] = None,
    collusion_boost: int = 5,
    rng: SeedLike = None,
) -> ThreatScenario:
    """Collusive threat model (§6.1): groups boosting each other.

    Parameters
    ----------
    n:
        Number of peers.
    malicious_fraction:
        Total fraction of collusive peers (paper: 5% and 10%).
    group_size:
        Peers per collusion group (Fig. 4(b) sweeps this).
    collusion_boost:
        Fabricated mutual transactions per ordered colluder pair.
    """
    if group_size < 2:
        raise ValidationError(f"group_size must be >= 2, got {group_size}")
    gen = as_generator(rng)
    population = PeerPopulation.build(
        n,
        malicious_fraction=malicious_fraction,
        collusive=True,
        group_size=group_size,
        rng=gen,
    )
    dist = feedback_dist or FeedbackCountDistribution()
    return _generate(population, dist, gen, collusion_boost=collusion_boost)
