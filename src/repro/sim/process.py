"""Generator-based cooperative processes.

A process body is a generator.  At each ``yield`` it hands the kernel
one of:

* a non-negative number — sleep that many simulated time units,
* an :class:`~repro.sim.events.Event` — resume when it triggers (the
  event's value is sent back into the generator),
* another :class:`Process` — resume when that process finishes.

A process is itself an :class:`~repro.sim.events.Event` that triggers
with the generator's return value, so processes compose with ``yield``.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = ["Process"]


class Process(Event):
    """A running cooperative process (also its own completion event)."""

    __slots__ = ("_generator", "_alive")

    def __init__(self, sim: Any, generator: Generator[Any, Any, Any]):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the process body is still executing."""
        return self._alive

    def interrupt(self, reason: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process body."""
        if not self._alive:
            raise SimulationError("cannot interrupt a finished process")
        try:
            target = self._generator.throw(ProcessInterrupt(reason))
        except (StopIteration, ProcessInterrupt) as stop:
            self._finish(getattr(stop, "value", None))
        else:
            self._wait_on(target)

    # -- kernel interface ----------------------------------------------

    def _resume(self, value: Any) -> None:
        """Advance the generator with ``value``; handle its next yield."""
        if not self._alive:  # pragma: no cover - kernel never resumes dead procs
            return
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Event):
            if target.triggered:
                # Re-enter via an immediate event to keep stack depth flat.
                ev = Event(self.sim)
                ev.add_callback(lambda _ev: self._resume(target.value))
                self.sim._schedule(self.sim.now, ev)
            else:
                target.add_callback(lambda ev: self._resume(ev.value))
        elif isinstance(target, Real):
            if target < 0:
                self._crash(SimulationError(f"negative sleep: {target}"))
                return
            self.sim.timeout(float(target)).add_callback(
                lambda ev: self._resume(ev.value)
            )
        else:
            self._crash(
                SimulationError(
                    f"process yielded unsupported value {target!r}; "
                    "yield a delay, Event, or Process"
                )
            )

    def _finish(self, value: Any) -> None:
        self._alive = False
        if not self.triggered:
            self.succeed(value)

    def _crash(self, exc: Exception) -> None:
        self._alive = False
        self._generator.close()
        raise exc


class ProcessInterrupt(Exception):
    """Raised inside a process body by :meth:`Process.interrupt`.

    ``reason`` carries whatever the interrupter passed (e.g. a churn
    model signalling departure).
    """

    def __init__(self, reason: Any = None):
        super().__init__(reason)
        self.reason = reason
