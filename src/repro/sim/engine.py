"""The discrete-event simulation kernel.

Determinism contract: given the same schedule of calls, the kernel
replays identically.  Events scheduled for the same simulated time fire
in the order they were scheduled (a monotone sequence number breaks
heap ties), so no behaviour ever depends on heap internals.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """Binary-heap discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> log = []
    >>> def proc():
    ...     yield 5.0
    ...     log.append(sim.now)
    >>> _ = sim.process(proc())
    >>> sim.run()
    >>> log
    [5.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._event_count = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired since construction (a cheap progress gauge)."""
        return self._event_count

    # -- scheduling ----------------------------------------------------

    def _schedule(self, when: float, event: Event) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now={self._now}"
            )
        heapq.heappush(self._queue, (when, self._seq, event))
        self._seq += 1

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Any, Any, Any]) -> Process:
        """Install a generator as a cooperative process, started at ``now``.

        The process's first resume is scheduled as an immediate event
        (same timestamp, FIFO with anything else already due now).
        """
        proc = Process(self, generator)
        start = Event(self)
        start.add_callback(lambda _ev: proc._resume(None))
        self._schedule(self._now, start)
        return proc

    def call_at(self, when: float, fn, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        ev = Event(self)
        ev.add_callback(lambda _ev: fn(*args))
        self._schedule(when, ev)
        return ev

    def call_in(self, delay: float, fn, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.call_at(self._now + delay, fn, *args)

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        if not self._queue:
            return False
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self._event_count += 1
        if not event.triggered:
            event.succeed(event.value)
        return True

    def run(self, until: Optional[float] = None, *, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, time ``until``, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` do
        fire, and the clock is advanced to ``until`` on return even if
        the queue drained earlier (matching SimPy semantics).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if queue is empty)."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:  # pragma: no cover
        return f"Simulator(now={self._now}, pending={len(self._queue)})"
