"""Event primitives for the discrete-event kernel."""

from __future__ import annotations

from typing import Any, Callable, List

from repro.errors import SimulationError

__all__ = ["Event", "Timeout"]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`succeed` (or the simulator firing a
    scheduled timeout) moves it to *triggered*, at which point every
    waiting process is resumed with the event's ``value``.  Triggering
    twice is an error — that invariably indicates two owners fighting
    over one handle.
    """

    __slots__ = ("sim", "value", "_triggered", "_callbacks")

    def __init__(self, sim: "Any"):
        self.sim = sim
        self.value: Any = None
        self._triggered = False
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has fired."""
        return self._triggered

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires (immediately if fired)."""
        if self._triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now, resuming all waiters with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Constructed via :meth:`repro.sim.engine.Simulator.timeout`; processes
    usually just ``yield delay`` and let the kernel build the timeout.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Any", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self.value = value
        sim._schedule(sim.now + self.delay, self)
