"""Discrete-event simulation substrate.

A small, dependency-free DES kernel in the style of SimPy:

* :class:`~repro.sim.engine.Simulator` — binary-heap event queue with a
  deterministic tie-break (same-time events fire in schedule order).
* :class:`~repro.sim.process.Process` — generator-based cooperative
  processes that ``yield`` delays or event handles.
* :class:`~repro.sim.events.Event` — one-shot triggerable handles.

The message-level gossip engine, churn model and transport layer all run
on this kernel; the vectorized engines bypass it entirely.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout
from repro.sim.process import Process, ProcessInterrupt

__all__ = ["Simulator", "Event", "Timeout", "Process", "ProcessInterrupt"]
