"""Static and runtime invariant analysis for the GossipTrust codebase.

Two complementary layers live here:

* :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — a custom
  AST lint framework enforcing *project* invariants that generic linters
  cannot know about: all randomness flows through
  :class:`~repro.utils.rng.RngStreams` (GT001), the fast-kernel hot
  paths stay allocation-free (GT002), the deterministic core never reads
  the wall clock (GT003), and numeric modules never compare floats with
  bare ``==`` (GT004).  Run via ``tools/analyze.py`` or ``make analyze``.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime sanitizer
  (``REPRO_SANITIZE=1`` or ``GossipTrustConfig.sanitize``) that arms
  checked invariant hooks inside every gossip engine: push-sum mass
  conservation, non-negative consensus mass, NaN/inf guards, and
  post-normalization row-stochasticity of the trust matrix.  Violations
  raise :class:`~repro.errors.InvariantViolation` with engine, cycle,
  step, and node context.

The linter's flow-aware rules (GT005-GT008) lean on a small
interprocedural layer — :mod:`repro.analysis.callgraph` builds the
project symbol table and call graph, :mod:`repro.analysis.dataflow`
runs reaching-definitions tag propagation over it — and the
shared-memory write-confinement rule GT006 has a runtime twin, the
:class:`~repro.analysis.sanitizer.ShardOwnershipGuard` shadow-ownership
race sanitizer armed by the same ``REPRO_SANITIZE=1`` switch.
"""

from repro.analysis.sanitizer import (
    InvariantSanitizer,
    ShardOwnershipGuard,
    sanitize_enabled,
)

__all__ = ["InvariantSanitizer", "ShardOwnershipGuard", "sanitize_enabled"]
