"""Custom AST lint framework for project-specific invariants.

Generic linters cannot know that *this* codebase promises bit-identical
runs under a seeded :class:`~repro.utils.rng.RngStreams`, or that the
fast gossip kernels are allocation-free by contract.  This module is the
small framework those project rules plug into:

* :class:`SourceFile` — one parsed file: AST, raw lines, and the
  ``# noqa: GTxxx`` suppression map shared by every rule.
* :class:`Rule` — base class; a rule declares its ``code``, a one-line
  ``summary``, path ``include``/``exclude`` patterns, and implements
  :meth:`Rule.check` yielding :class:`Violation` objects.
* :class:`FlowRule` — base class for the interprocedural rules
  (GT005+); the driver injects one shared
  :class:`~repro.analysis.callgraph.ProjectIndex` before checking, so
  parsing, call-graph construction, and dataflow amortize across rules.
* :class:`Violation` — one finding, renderable as plain text or as a
  GitHub Actions ``::error`` annotation.
* :func:`lint_paths` / :func:`lint_sources` — the driver used by
  ``tools/analyze.py`` and the fixture self-tests.

Suppression: a trailing ``# noqa: GT004 -- why it is safe`` comment
silences that rule on that line (comma-separated codes; a bare
``# noqa`` silences all rules).  The text after ``--`` is the
*justification*; GT009 rejects project-rule suppressions that omit it,
and ``tools/analyze.py --list-suppressions`` reports every sentinel
with its justification.  Suppressions are detected on real comment
tokens only — the string ``# noqa`` inside a docstring (like this one)
is inert.

Adding a rule: subclass :class:`Rule` (or :class:`FlowRule`) in
``repro/analysis/rules/``, register it in
:data:`repro.analysis.rules.ALL_RULES`, and add a fixture test proving
it fires on a violating snippet and stays silent on a compliant one
(see ``tests/test_analysis_linter.py``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Violation",
    "Suppression",
    "SourceFile",
    "Rule",
    "FlowRule",
    "lint_sources",
    "lint_paths",
    "load_sources",
    "iter_python_files",
]

#: the rule code used for files that do not parse
PARSE_ERROR_CODE = "GT000"


@dataclass(frozen=True)
class Violation:
    """One lint finding: rule code, location, and message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self, fmt: str = "text") -> str:
        """Render for terminals (``text``) or CI (``github``)."""
        if fmt == "github":
            return (
                f"::error file={self.path},line={self.line},col={self.col},"
                f"title={self.rule}::{self.message}"
            )
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One ``# noqa`` sentinel: where, which codes, and why."""

    path: str
    line: int
    codes: FrozenSet[str]
    justification: str
    comment: str

    @property
    def blanket(self) -> bool:
        """True for a bare ``# noqa`` that silences every rule."""
        return "*" in self.codes


#: a noqa *directive* opens the comment: ``# noqa``, ``#noqa: GT004 -- why``
_NOQA_DIRECTIVE = re.compile(r"^#+\s*noqa\b(.*)$", re.IGNORECASE | re.DOTALL)


def _parse_noqa(comment: str) -> Optional[Tuple[FrozenSet[str], str]]:
    """Parse a comment token into ``(codes, justification)``.

    ``# noqa`` (no codes) suppresses everything (``{"*"}``).  Codes are
    comma-separated; an optional `` -- reason`` tail is the
    justification GT009 requires for project-rule sentinels.  The
    directive must *open* the comment — prose that merely mentions
    ``# noqa`` mid-comment is not a suppression.
    """
    match = _NOQA_DIRECTIVE.match(comment.strip())
    if match is None:
        return None
    rest = match.group(1)
    stripped = rest.lstrip()
    if not stripped.startswith(":"):
        # Blanket form: nothing after 'noqa' but whitespace or a reason.
        if stripped and not stripped.startswith("--"):
            return None  # '# noqachment...' / prose, not a directive
        _, _, justification = stripped.partition("--")
        return frozenset({"*"}), justification.strip()
    spec = stripped[1:]
    spec = spec.split("#", 1)[0]
    spec, _, justification = spec.partition("--")
    codes = {tok.strip().upper() for tok in spec.split(",") if tok.strip()}
    if not codes:
        return frozenset({"*"}), justification.strip()
    return frozenset(codes), justification.strip()


def _noqa_codes(line: str) -> FrozenSet[str]:
    """Codes suppressed by a ``# noqa`` comment on ``line`` (``*`` = all)."""
    idx = line.find("#")
    while idx >= 0:
        parsed = _parse_noqa(line[idx:])
        if parsed is not None:
            return parsed[0]
        idx = line.find("#", idx + 1)
    return frozenset()


class SourceFile:
    """One parsed Python source file, shared across all rules.

    Parsing and the suppression scan happen once here; every rule then
    walks the same AST.  ``path`` is kept exactly as given so reported
    locations match what the caller passed (relative paths stay
    relative — what CI annotations need).  Suppressions come from real
    comment tokens (via :mod:`tokenize`), so ``# noqa`` text inside a
    string literal never silences anything.
    """

    def __init__(self, path: str, text: str):
        self.path = str(path)
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=self.path)
        #: 1-based line -> the comment token on that line, if any
        self.comments: Dict[int, str] = self._scan_comments(text)
        #: every ``# noqa`` sentinel in the file, in line order
        self.suppressions: List[Suppression] = []
        #: 1-based line -> codes suppressed on that line
        self.noqa: Dict[int, FrozenSet[str]] = {}
        for line_no, comment in sorted(self.comments.items()):
            parsed = _parse_noqa(comment)
            if parsed is None:
                continue
            codes, justification = parsed
            self.noqa[line_no] = codes
            self.suppressions.append(
                Suppression(
                    path=self.path,
                    line=line_no,
                    codes=codes,
                    justification=justification,
                    comment=comment.strip(),
                )
            )
        #: normalized posix path used for rule scoping
        self.posix = Path(self.path).as_posix()

    @staticmethod
    def _scan_comments(text: str) -> Dict[int, str]:
        comments: Dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(text).readline):
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass  # ast.parse succeeded, so this should not happen
        return comments

    @classmethod
    def read(cls, path: str) -> "SourceFile":
        """Load and parse ``path`` (UTF-8)."""
        return cls(path, Path(path).read_text(encoding="utf-8"))

    def suppressed(self, code: str, line: int) -> bool:
        """Whether rule ``code`` is ``# noqa``-silenced on ``line``."""
        codes = self.noqa.get(line)
        return bool(codes) and ("*" in codes or code.upper() in codes)


class Rule:
    """Base class of every project lint rule.

    Subclasses set :attr:`code` (``"GT00x"``), :attr:`summary`, the
    path-scoping patterns, and implement :meth:`check`.  Scoping matches
    on normalized posix paths: a rule applies when any ``include``
    substring occurs in the path (empty ``include`` = everywhere) and no
    ``exclude`` substring does.
    """

    code: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    #: substring patterns selecting the files the rule runs on
    include: ClassVar[Tuple[str, ...]] = ()
    #: substring patterns exempting files even when included
    exclude: ClassVar[Tuple[str, ...]] = ()
    #: rules that audit the suppression mechanism itself set this False
    #: so a ``# noqa`` cannot silence them
    suppressible: ClassVar[bool] = True

    def applies_to(self, src: SourceFile) -> bool:
        """Whether this rule runs on ``src`` (path scoping)."""
        path = src.posix
        if any(pat in path for pat in self.exclude):
            return False
        return not self.include or any(pat in path for pat in self.include)

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Yield violations found in ``src``; override in subclasses."""
        raise NotImplementedError

    def violation(self, src: SourceFile, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` located at ``node``."""
        return Violation(
            rule=self.code,
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class FlowRule(Rule):
    """A rule that needs the shared project index (call graph + flows).

    The driver builds one :class:`~repro.analysis.callgraph.ProjectIndex`
    over every file in the run and injects it via :meth:`bind_project`
    before any :meth:`check` call.  Checking a :class:`FlowRule` without
    a bound project builds a single-file index on the fly — fixture
    tests lint one snippet at a time and still need resolution inside
    that snippet.
    """

    needs_project: ClassVar[bool] = True

    def __init__(self) -> None:
        self.project: Any = None

    def bind_project(self, project: Any) -> None:
        """Attach the shared project index for this lint run."""
        self.project = project

    def project_for(self, src: SourceFile) -> Any:
        """The bound index, or a throwaway single-file one."""
        if self.project is not None:
            return self.project
        from repro.analysis.callgraph import ProjectIndex

        return ProjectIndex([src])


def _bind_flow_rules(sources: Sequence[SourceFile], rules: Sequence[Rule]) -> None:
    flow_rules = [r for r in rules if getattr(r, "needs_project", False)]
    if not flow_rules:
        return
    from repro.analysis.callgraph import ProjectIndex

    project = ProjectIndex(sources)
    for rule in flow_rules:
        rule.bind_project(project)  # type: ignore[attr-defined]


def lint_sources(sources: Iterable[SourceFile], rules: Sequence[Rule]) -> List[Violation]:
    """Run ``rules`` over parsed ``sources``; suppressions applied.

    Flow rules get one shared :class:`ProjectIndex` over all
    ``sources`` — the cache that keeps whole-tree runs fast.
    """
    source_list = list(sources)
    _bind_flow_rules(source_list, rules)
    out: List[Violation] = []
    for src in source_list:
        for rule in rules:
            if not rule.applies_to(src):
                continue
            for v in rule.check(src):
                if rule.suppressible and src.suppressed(v.rule, v.line):
                    continue
                out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in candidates:
            if "__pycache__" in f.parts:
                continue
            key = f.as_posix()
            if key not in seen:
                seen.add(key)
                yield key


def load_sources(paths: Sequence[str]) -> Tuple[List[SourceFile], List[Violation]]:
    """Parse every ``.py`` file under ``paths``.

    Returns the parsed sources plus :data:`GT000 <PARSE_ERROR_CODE>`
    violations for files that fail to parse — a broken file must fail
    the gate, not hide the rest of the report.
    """
    sources: List[SourceFile] = []
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            sources.append(SourceFile.read(path))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            violations.append(
                Violation(
                    rule=PARSE_ERROR_CODE,
                    path=path,
                    line=int(line),
                    col=1,
                    message=f"file does not parse: {exc}",
                )
            )
    return sources, violations


def lint_paths(paths: Sequence[str], rules: Sequence[Rule]) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` with ``rules``."""
    sources, violations = load_sources(paths)
    violations.extend(lint_sources(sources, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
