"""Custom AST lint framework for project-specific invariants.

Generic linters cannot know that *this* codebase promises bit-identical
runs under a seeded :class:`~repro.utils.rng.RngStreams`, or that the
fast gossip kernels are allocation-free by contract.  This module is the
small framework those project rules plug into:

* :class:`SourceFile` — one parsed file: AST, raw lines, and the
  ``# noqa: GTxxx`` suppression map shared by every rule.
* :class:`Rule` — base class; a rule declares its ``code``, a one-line
  ``summary``, path ``include``/``exclude`` patterns, and implements
  :meth:`Rule.check` yielding :class:`Violation` objects.
* :class:`Violation` — one finding, renderable as plain text or as a
  GitHub Actions ``::error`` annotation.
* :func:`lint_paths` / :func:`lint_sources` — the driver used by
  ``tools/analyze.py`` and the fixture self-tests.

Suppression: a trailing ``# noqa: GT004`` comment silences that rule on
that line (comma-separated codes; a bare ``# noqa`` silences all rules).
Suppressions are for *documented intent* — e.g. an exact float sentinel
comparison — not for postponing fixes.

Adding a rule: subclass :class:`Rule` in ``repro/analysis/rules/``,
register it in :data:`repro.analysis.rules.ALL_RULES`, and add a
fixture test proving it fires on a violating snippet and stays silent
on a compliant one (see ``tests/test_analysis_linter.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "Violation",
    "SourceFile",
    "Rule",
    "lint_sources",
    "lint_paths",
    "iter_python_files",
]

#: the rule code used for files that do not parse
PARSE_ERROR_CODE = "GT000"


@dataclass(frozen=True)
class Violation:
    """One lint finding: rule code, location, and message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self, fmt: str = "text") -> str:
        """Render for terminals (``text``) or CI (``github``)."""
        if fmt == "github":
            return (
                f"::error file={self.path},line={self.line},col={self.col},"
                f"title={self.rule}::{self.message}"
            )
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _noqa_codes(line: str) -> FrozenSet[str]:
    """Codes suppressed by a ``# noqa`` comment on ``line`` (``*`` = all)."""
    lower = line.lower()
    idx = lower.find("# noqa")
    if idx < 0:
        return frozenset()
    rest = line[idx + len("# noqa"):]
    if not rest.lstrip().startswith(":"):
        return frozenset({"*"})
    spec = rest.lstrip()[1:]
    # Codes run until a second comment or end of line; split on commas.
    spec = spec.split("#", 1)[0]
    codes = {tok.strip().upper() for tok in spec.split(",") if tok.strip()}
    return frozenset(codes) if codes else frozenset({"*"})


class SourceFile:
    """One parsed Python source file, shared across all rules.

    Parsing and the suppression scan happen once here; every rule then
    walks the same AST.  ``path`` is kept exactly as given so reported
    locations match what the caller passed (relative paths stay
    relative — what CI annotations need).
    """

    def __init__(self, path: str, text: str):
        self.path = str(path)
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=self.path)
        #: 1-based line -> codes suppressed on that line
        self.noqa: Dict[int, FrozenSet[str]] = {
            i: codes
            for i, raw in enumerate(self.lines, start=1)
            if (codes := _noqa_codes(raw))
        }
        #: normalized posix path used for rule scoping
        self.posix = Path(self.path).as_posix()

    @classmethod
    def read(cls, path: str) -> "SourceFile":
        """Load and parse ``path`` (UTF-8)."""
        return cls(path, Path(path).read_text(encoding="utf-8"))

    def suppressed(self, code: str, line: int) -> bool:
        """Whether rule ``code`` is ``# noqa``-silenced on ``line``."""
        codes = self.noqa.get(line)
        return bool(codes) and ("*" in codes or code.upper() in codes)


class Rule:
    """Base class of every project lint rule.

    Subclasses set :attr:`code` (``"GT00x"``), :attr:`summary`, the
    path-scoping patterns, and implement :meth:`check`.  Scoping matches
    on normalized posix paths: a rule applies when any ``include``
    substring occurs in the path (empty ``include`` = everywhere) and no
    ``exclude`` substring does.
    """

    code: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    #: substring patterns selecting the files the rule runs on
    include: ClassVar[Tuple[str, ...]] = ()
    #: substring patterns exempting files even when included
    exclude: ClassVar[Tuple[str, ...]] = ()

    def applies_to(self, src: SourceFile) -> bool:
        """Whether this rule runs on ``src`` (path scoping)."""
        path = src.posix
        if any(pat in path for pat in self.exclude):
            return False
        return not self.include or any(pat in path for pat in self.include)

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Yield violations found in ``src``; override in subclasses."""
        raise NotImplementedError

    def violation(self, src: SourceFile, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` located at ``node``."""
        return Violation(
            rule=self.code,
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def lint_sources(sources: Iterable[SourceFile], rules: Sequence[Rule]) -> List[Violation]:
    """Run ``rules`` over parsed ``sources``; suppressions applied."""
    out: List[Violation] = []
    for src in sources:
        for rule in rules:
            if not rule.applies_to(src):
                continue
            for v in rule.check(src):
                if not src.suppressed(v.rule, v.line):
                    out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in candidates:
            if "__pycache__" in f.parts:
                continue
            key = f.as_posix()
            if key not in seen:
                seen.add(key)
                yield key


def lint_paths(paths: Sequence[str], rules: Sequence[Rule]) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` with ``rules``.

    Files that fail to parse surface as :data:`GT000 <PARSE_ERROR_CODE>`
    violations rather than aborting the run — a broken file must fail
    the gate, not hide the rest of the report.
    """
    sources: List[SourceFile] = []
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            sources.append(SourceFile.read(path))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            violations.append(
                Violation(
                    rule=PARSE_ERROR_CODE,
                    path=path,
                    line=int(line),
                    col=1,
                    message=f"file does not parse: {exc}",
                )
            )
    violations.extend(lint_sources(sources, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
