"""Project symbol table and call graph for flow-aware lint rules.

The GT001–GT004 rules are *local*: each fires on a syntactic pattern in
one file.  The determinism rules added with the interprocedural layer
(GT005–GT008) need to answer questions no single AST can: *does this
function's output feed an RNG draw three calls away?*  *Is this callable
handed to a process pool one that consumes randomness?*  This module
builds the shared index those questions run against:

* :class:`ModuleInfo` — one parsed module: its dotted name, import
  alias map, and top-level symbols.
* :class:`FunctionInfo` — one function or method (nested functions
  included): its qualified name, AST node, resolved project callees,
  and the attribute-call names it could not resolve.
* :class:`ProjectIndex` — the whole-project view: symbol resolution,
  the call graph, memoized transitive closures
  (:meth:`ProjectIndex.reachable`), and a per-function
  :class:`~repro.analysis.dataflow.FunctionFlow` cache so every rule
  shares one dataflow result per function.

The index is built **once** per lint invocation (``tools/analyze.py``
constructs it from the same :class:`~repro.analysis.linter.SourceFile`
objects every rule walks) — parsing, call-graph construction, and
dataflow all amortize across the GT005–GT008 rule set, which is what
keeps ``make analyze`` over the full tree in single-digit seconds.

Resolution is deliberately best-effort: Python's dynamism makes a sound
call graph impossible, and a lint rule wants high precision over
soundness.  A ``Name`` call resolves through enclosing-function nested
defs, then module scope, then the import map; ``self.method()``
resolves inside the enclosing class; a bare ``obj.method()`` resolves
by method name only when that name is defined exactly once in the
project (or in the same module) — otherwise it is recorded in
:attr:`FunctionInfo.attr_calls` for rules that match on method *names*
(e.g. the RNG draw methods ``integers``/``choice``/``shuffle``).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import FunctionFlow
from repro.analysis.linter import SourceFile

__all__ = [
    "ModuleInfo",
    "FunctionInfo",
    "ProjectIndex",
    "module_name_for",
]

#: package roots recognized when deriving dotted module names from paths
_PACKAGE_ROOTS = ("repro", "tests", "tools", "examples", "benchmarks")

FuncNode = ast.FunctionDef  # methods and nested functions share the shape


def module_name_for(path: str) -> str:
    """The dotted module name a posix ``path`` maps to.

    ``src/repro/gossip/engine.py`` -> ``repro.gossip.engine``; paths
    outside a recognized package root fall back to their stem, so
    fixture files in temporary directories still index cleanly.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in _PACKAGE_ROOTS:
        if root in parts:
            return ".".join(parts[parts.index(root):])
    return ".".join(parts[-1:]) if parts else "<unknown>"


class ModuleInfo:
    """One module's symbols as seen by the resolver."""

    def __init__(self, name: str, src: SourceFile):
        self.name = name
        self.src = src
        #: local alias -> dotted target (``np`` -> ``numpy``,
        #: ``as_generator`` -> ``repro.utils.rng.as_generator``)
        self.imports: Dict[str, str] = {}
        #: top-level function name -> qname
        self.functions: Dict[str, str] = {}
        #: class name -> {method name -> qname}
        self.classes: Dict[str, Dict[str, str]] = {}
        self._scan_imports()

    def _scan_imports(self) -> None:
        for node in ast.walk(self.src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )


class FunctionInfo:
    """One function/method definition plus its outgoing call edges."""

    def __init__(
        self,
        qname: str,
        node: FuncNode,
        module: ModuleInfo,
        cls: Optional[str] = None,
        parent: Optional["FunctionInfo"] = None,
    ):
        self.qname = qname
        self.node = node
        self.module = module
        #: name of the enclosing class, for methods
        self.cls = cls
        #: enclosing function, for nested defs
        self.parent = parent
        #: nested def name -> qname
        self.nested: Dict[str, str] = {}
        #: resolved project callees (qnames) — the call-graph edges
        self.calls: Set[str] = set()
        #: dotted names of calls resolved outside the project
        #: (``numpy.random.default_rng``, ``os.listdir``)
        self.external_calls: Set[str] = set()
        #: method names of attribute calls that resolved to nothing
        #: (``obj.integers()`` on an unknown receiver -> ``integers``)
        self.attr_calls: Set[str] = set()

    @property
    def src(self) -> SourceFile:
        return self.module.src

    def __repr__(self) -> str:  # pragma: no cover
        return f"FunctionInfo({self.qname!r}, calls={len(self.calls)})"


def _own_statements(func: FuncNode) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested defs/classes."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scopes index separately
        stack.extend(ast.iter_child_nodes(node))


def _dotted(expr: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


class ProjectIndex:
    """Symbol table + call graph over a set of parsed sources.

    Build once per lint run (``ProjectIndex(sources)``), then share it
    across every flow rule: the per-function dataflow cache
    (:meth:`flow`) and the reachability memo (:meth:`reachable`) are
    the expensive artifacts the caching requirement is about.
    """

    def __init__(self, sources: Sequence[SourceFile]):
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method/function name -> qnames defining it (for unique-name
        #: attribute-call resolution)
        self._by_name: Dict[str, List[str]] = {}
        self._flows: Dict[str, FunctionFlow] = {}
        self._closures: Dict[str, FrozenSet[str]] = {}
        for src in sources:
            self._index_source(src)
        for info in self.functions.values():
            self._extract_calls(info)

    # -- construction ------------------------------------------------------

    def _index_source(self, src: SourceFile) -> None:
        mod = ModuleInfo(module_name_for(src.posix), src)
        # Last module with a name wins; fixture collisions are harmless
        # because resolution happens through each function's own module.
        self.modules[mod.name] = mod
        for node in src.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(node, mod, cls=None, parent=None)
            elif isinstance(node, ast.ClassDef):
                methods: Dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = self._index_function(
                            item, mod, cls=node.name, parent=None
                        )
                        methods[item.name] = info.qname
                mod.classes[node.name] = methods

    def _index_function(
        self,
        node: FuncNode,
        mod: ModuleInfo,
        cls: Optional[str],
        parent: Optional[FunctionInfo],
    ) -> FunctionInfo:
        if parent is not None:
            qname = f"{parent.qname}.<locals>.{node.name}"
        elif cls is not None:
            qname = f"{mod.name}.{cls}.{node.name}"
        else:
            qname = f"{mod.name}.{node.name}"
        info = FunctionInfo(qname, node, mod, cls=cls, parent=parent)
        self.functions[qname] = info
        self._by_name.setdefault(node.name, []).append(qname)
        if parent is not None:
            parent.nested[node.name] = qname
        elif cls is None:
            mod.functions[node.name] = qname
        for item in node.body:
            self._walk_nested(item, mod, info)
        return info

    def _walk_nested(self, node: ast.AST, mod: ModuleInfo, owner: FunctionInfo) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._index_function(node, mod, cls=owner.cls, parent=owner)
            return
        if isinstance(node, ast.ClassDef):
            return  # classes nested in functions: out of resolver scope
        for child in ast.iter_child_nodes(node):
            self._walk_nested(child, mod, owner)

    def _extract_calls(self, info: FunctionInfo) -> None:
        for node in _own_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.resolve_call(node.func, info)
            if resolved is not None:
                info.calls.add(resolved)
                continue
            dotted = _dotted(node.func)
            if dotted is not None and len(dotted) > 1:
                head = info.module.imports.get(dotted[0])
                if head is not None:
                    info.external_calls.add(".".join((head, *dotted[1:])))
                    continue
            if isinstance(node.func, ast.Attribute):
                info.attr_calls.add(node.func.attr)
            elif isinstance(node.func, ast.Name):
                info.external_calls.add(node.func.id)

    # -- resolution --------------------------------------------------------

    def resolve_call(
        self, func: ast.expr, caller: FunctionInfo
    ) -> Optional[str]:
        """The project qname ``func`` refers to, or None.

        Resolution order for ``Name`` calls: nested defs of enclosing
        functions, the caller's module scope, then imports of project
        modules.  ``self.m()`` / ``cls.m()`` resolves in the enclosing
        class; ``Class.m()`` and ``module.f()`` resolve through the
        import map; a bare ``obj.m()`` resolves only when ``m`` is
        defined exactly once project-wide or once in the caller's
        module.
        """
        mod = caller.module
        if isinstance(func, ast.Name):
            scope: Optional[FunctionInfo] = caller
            while scope is not None:
                if func.id in scope.nested:
                    return scope.nested[func.id]
                scope = scope.parent
            if func.id in mod.functions:
                return mod.functions[func.id]
            target = mod.imports.get(func.id)
            if target is not None and target in self.functions:
                return target
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, *rest = dotted
        if head in ("self", "cls") and caller.cls is not None and len(rest) == 1:
            methods = mod.classes.get(caller.cls, {})
            if rest[0] in methods:
                return methods[rest[0]]
        if head in mod.classes and len(rest) == 1 and rest[0] in mod.classes[head]:
            return mod.classes[head][rest[0]]
        target = mod.imports.get(head)
        if target is not None:
            qname = ".".join((target, *rest))
            if qname in self.functions:
                return qname
            # ``shard_exec.advance_shard`` style: module alias + func
            if len(rest) == 1 and target in self.modules:
                return self.modules[target].functions.get(rest[0])
        # Unique-name fallback for attribute calls on unknown receivers.
        if len(dotted) == 2:
            method = dotted[1]
            in_module = [
                q for q in self._by_name.get(method, ())
                if self.functions[q].module is mod
            ]
            if len(in_module) == 1:
                return in_module[0]
            everywhere = self._by_name.get(method, [])
            if len(everywhere) == 1:
                return everywhere[0]
        return None

    # -- queries -----------------------------------------------------------

    def flow(self, qname: str) -> Optional[FunctionFlow]:
        """The cached :class:`FunctionFlow` of ``qname`` (None if unknown)."""
        if qname in self._flows:
            return self._flows[qname]
        info = self.functions.get(qname)
        if info is None:
            return None
        fl = FunctionFlow(info.node)
        self._flows[qname] = fl
        return fl

    def reachable(self, qname: str) -> FrozenSet[str]:
        """Qnames transitively callable from ``qname`` (including itself)."""
        cached = self._closures.get(qname)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [qname]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            info = self.functions.get(cur)
            if info is None:
                continue
            stack.extend(info.calls - seen)
        out = frozenset(seen)
        self._closures[qname] = out
        return out

    def reaches(
        self, qname: str, predicate: Callable[[FunctionInfo], bool]
    ) -> bool:
        """Whether any function reachable from ``qname`` satisfies ``predicate``."""
        for reached in self.reachable(qname):
            info = self.functions.get(reached)
            if info is not None and predicate(info):
                return True
        return False

    def functions_in(self, src: SourceFile) -> List[FunctionInfo]:
        """Every indexed function whose definition lives in ``src``."""
        return [
            info for info in self.functions.values() if info.src is src
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ProjectIndex(modules={len(self.modules)}, "
            f"functions={len(self.functions)})"
        )
