"""Reaching-definitions dataflow for flow-aware lint rules.

The flow rules (GT005–GT008) need more than "this expression is a set
literal" — they need "the value flowing into this ``for`` loop was
*produced* by an unordered container three assignments ago and never
sorted since".  This module provides that as a small abstract
interpreter over a function body:

* A rule supplies a :class:`TagClassifier` describing which expressions
  *introduce* tags (``set(...)`` → ``{"unordered"}``), which calls
  *launder* them (``sorted(x)`` → ∅), and what reaching a loop target
  means (:meth:`TagClassifier.element_tags`).
* :class:`FunctionFlow` executes the function's statements in order,
  maintaining an environment mapping local names to tag sets.  Branches
  are *merged* (the environment after ``if/else`` is the union of both
  arms), loop bodies run twice so loop-carried tags reach a fixpoint,
  and ``try`` arms merge like branches.  The result is conservative:
  a name holds a tag if **any** control-flow path could have put it
  there — exactly the bar a determinism lint wants.
* The per-statement environment snapshots (:attr:`FlowResult.env_at`)
  let a rule ask for the tags of any expression *at the point it
  executes* (:meth:`FlowResult.tags_of`), so ``x = sorted(x)`` really
  clears the tag for everything downstream while earlier uses still
  see it.

Results are memoized per classifier on the :class:`FunctionFlow`, and
the flows themselves are cached on the shared
:class:`~repro.analysis.callgraph.ProjectIndex`, so the whole-tree
``make analyze`` pass pays for each function body once, not once per
rule.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

__all__ = ["Tags", "NO_TAGS", "TagClassifier", "FlowResult", "FunctionFlow"]

Tags = FrozenSet[str]
NO_TAGS: Tags = frozenset()
Env = Dict[str, Tags]


class TagClassifier:
    """Rule-supplied semantics for tag introduction and laundering.

    The defaults make every expression tag-free; a rule overrides the
    hooks it cares about.  Classifiers must be stable objects (one per
    rule instance) — flow results are memoized per classifier.
    """

    def expr_tags(self, expr: ast.expr, env: "Env", result: "FlowResult") -> Optional[Tags]:
        """Tags introduced by ``expr`` itself, or None to use defaults.

        Returning a set short-circuits structural propagation, so this
        is where literals (``{a, b}``), subscript semantics, and
        sanitizers live.
        """
        return None

    def call_tags(
        self, call: ast.Call, arg_tags: List[Tags], env: "Env", result: "FlowResult"
    ) -> Tags:
        """Tags of a call result, given the tags of its positional args."""
        return NO_TAGS

    def element_tags(self, iterable_tags: Tags) -> Tags:
        """Tags a loop target inherits from its iterable."""
        return NO_TAGS

    def param_tags(self, name: str, func: ast.AST) -> Tags:
        """Seed tags for a function parameter."""
        return NO_TAGS


class FlowResult:
    """Environment snapshots from one interpretation of a function."""

    def __init__(self, classifier: TagClassifier):
        self.classifier = classifier
        #: id(statement node) -> environment *before* that statement
        self.env_at: Dict[int, Env] = {}
        #: environment after the last statement
        self.final: Env = {}

    def env_before(self, stmt: ast.AST) -> Env:
        """The environment in effect when ``stmt`` starts executing."""
        return self.env_at.get(id(stmt), self.final)

    def tags_of(self, expr: ast.expr, env: Env) -> Tags:
        """Tags of ``expr`` evaluated in ``env``.

        Structural rules: names read the environment; calls defer to
        the classifier with argument tags already computed; unions,
        conditionals, tuples, starred and walrus expressions propagate
        the union of their parts; subscripts and attributes are
        tag-free by default (a dict's *values* are not unordered just
        because the dict is — iterating the dict is what GT005 flags).
        """
        custom = self.classifier.expr_tags(expr, env, self)
        if custom is not None:
            return custom
        if isinstance(expr, ast.Name):
            return env.get(expr.id, NO_TAGS)
        if isinstance(expr, ast.Call):
            arg_tags = [self.tags_of(a, env) for a in expr.args]
            return self.classifier.call_tags(expr, arg_tags, env, self)
        if isinstance(expr, (ast.BinOp,)):
            return self.tags_of(expr.left, env) | self.tags_of(expr.right, env)
        if isinstance(expr, ast.BoolOp):
            out = NO_TAGS
            for value in expr.values:
                out |= self.tags_of(value, env)
            return out
        if isinstance(expr, ast.IfExp):
            return self.tags_of(expr.body, env) | self.tags_of(expr.orelse, env)
        if isinstance(expr, (ast.Tuple, ast.List)):
            out = NO_TAGS
            for elt in expr.elts:
                out |= self.tags_of(elt, env)
            return out
        if isinstance(expr, ast.Starred):
            return self.tags_of(expr.value, env)
        if isinstance(expr, ast.NamedExpr):
            return self.tags_of(expr.value, env)
        if isinstance(expr, ast.Await):
            return self.tags_of(expr.value, env)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = dict(env)
            for gen in expr.generators:
                elem = self.classifier.element_tags(self.tags_of(gen.iter, inner))
                for name in _target_names(gen.target):
                    inner[name] = elem
            if isinstance(expr, ast.DictComp):
                return self.tags_of(expr.key, inner) | self.tags_of(expr.value, inner)
            return self.tags_of(expr.elt, inner)
        return NO_TAGS

    # -- convenience for rules --------------------------------------------

    def tags_at(self, stmt: ast.AST, expr: ast.expr) -> Tags:
        """Tags of ``expr`` at the program point where ``stmt`` executes."""
        return self.tags_of(expr, self.env_before(stmt))


def _merge(a: Env, b: Env) -> Env:
    """Path-join: a name holds every tag either branch gave it."""
    out = dict(a)
    for name, tags in b.items():
        out[name] = out.get(name, NO_TAGS) | tags
    return out


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


class FunctionFlow:
    """Abstract interpreter over one function body.

    Construct once per function (the project index does this and caches
    it), then :meth:`propagate` per rule classifier.  Nested function
    definitions are opaque — they have their own ``FunctionFlow`` via
    the index — but comprehension generators are interpreted inline,
    since their targets feed expressions in this scope.
    """

    def __init__(self, func: ast.AST):
        self.func = func
        self._memo: Dict[TagClassifier, FlowResult] = {}

    def propagate(self, classifier: TagClassifier) -> FlowResult:
        cached = self._memo.get(classifier)
        if cached is not None:
            return cached
        result = FlowResult(classifier)
        env: Env = {}
        args = getattr(self.func, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                tags = classifier.param_tags(arg.arg, self.func)
                if tags:
                    env[arg.arg] = tags
        body = getattr(self.func, "body", [])
        result.final = self._exec_block(body, env, result)
        self._memo[classifier] = result
        return result

    # -- interpreter -------------------------------------------------------

    def _exec_block(self, stmts: List[ast.stmt], env: Env, result: FlowResult) -> Env:
        for stmt in stmts:
            env = self._exec_stmt(stmt, env, result)
        return env

    def _exec_stmt(self, stmt: ast.stmt, env: Env, result: FlowResult) -> Env:
        # Snapshot before execution: union with any earlier visit so a
        # second loop pass widens rather than overwrites.
        prior = result.env_at.get(id(stmt))
        result.env_at[id(stmt)] = _merge(prior, env) if prior is not None else dict(env)
        env = self._absorb_walrus(stmt, env, result)

        if isinstance(stmt, ast.Assign):
            tags = result.tags_of(stmt.value, env)
            env = dict(env)
            for target in stmt.targets:
                self._bind_target(target, tags, stmt.value, env, result)
            return env
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tags = result.tags_of(stmt.value, env)
            env = dict(env)
            self._bind_target(stmt.target, tags, stmt.value, env, result)
            return env
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                env = dict(env)
                env[stmt.target.id] = (
                    env.get(stmt.target.id, NO_TAGS) | result.tags_of(stmt.value, env)
                )
            return env
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = result.tags_of(stmt.iter, env)
            loop_env = dict(env)
            elem = result.classifier.element_tags(iter_tags)
            for name in _target_names(stmt.target):
                loop_env[name] = elem
            # Two passes let loop-carried tags stabilize.
            for _ in range(2):
                loop_env = self._exec_block(stmt.body, loop_env, result)
                for name in _target_names(stmt.target):
                    loop_env[name] = loop_env.get(name, NO_TAGS) | elem
            after = self._exec_block(stmt.orelse, dict(loop_env), result)
            return _merge(env, after)  # body may not run at all
        if isinstance(stmt, ast.While):
            loop_env = dict(env)
            for _ in range(2):
                loop_env = self._exec_block(stmt.body, loop_env, result)
            after = self._exec_block(stmt.orelse, dict(loop_env), result)
            return _merge(env, after)
        if isinstance(stmt, ast.If):
            then_env = self._exec_block(stmt.body, dict(env), result)
            else_env = self._exec_block(stmt.orelse, dict(env), result)
            return _merge(then_env, else_env)
        if isinstance(stmt, ast.Try):
            body_env = self._exec_block(stmt.body, dict(env), result)
            merged = _merge(env, body_env)
            for handler in stmt.handlers:
                h_env = dict(merged)
                if handler.name:
                    h_env[handler.name] = NO_TAGS
                merged = _merge(merged, self._exec_block(handler.body, h_env, result))
            merged = _merge(merged, self._exec_block(stmt.orelse, dict(body_env), result))
            return self._exec_block(stmt.finalbody, merged, result)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            env = dict(env)
            for item in stmt.items:
                if item.optional_vars is not None:
                    tags = result.tags_of(item.context_expr, env)
                    self._bind_target(item.optional_vars, tags, item.context_expr, env, result)
            return self._exec_block(stmt.body, env, result)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return env  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Delete):
            env = dict(env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            # ``xs.append(v)`` — the container absorbs the argument tags,
            # so values funneled through a list/set build stay tracked.
            call = stmt.value
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("append", "add", "extend", "insert", "appendleft")
                and isinstance(func.value, ast.Name)
            ):
                absorbed = NO_TAGS
                for arg in call.args:
                    absorbed |= result.tags_of(arg, env)
                if absorbed:
                    env = dict(env)
                    name = func.value.id
                    env[name] = env.get(name, NO_TAGS) | absorbed
            return env
        return env

    def _bind_target(
        self,
        target: ast.expr,
        tags: Tags,
        value: ast.expr,
        env: Env,
        result: FlowResult,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            # ``a, b = pair`` — each element inherits the element view.
            elem = result.classifier.element_tags(tags) | (
                tags if isinstance(value, (ast.Tuple, ast.List)) else NO_TAGS
            )
            for name in _target_names(target):
                env[name] = elem
        # Subscript/attribute targets mutate containers, not names.

    def _absorb_walrus(self, stmt: ast.stmt, env: Env, result: FlowResult) -> Env:
        """Bind ``x := expr`` targets appearing anywhere in ``stmt``."""
        walruses: List[ast.NamedExpr] = []
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.NamedExpr):
                walruses.append(node)
            if node is not stmt and isinstance(node, ast.stmt):
                break  # child statements snapshot themselves
        if not walruses:
            return env
        env = dict(env)
        for walrus in walruses:
            env[walrus.target.id] = result.tags_of(walrus.value, env)
        return env

    # -- site enumeration for rules ---------------------------------------

    def iteration_sites(self) -> Iterator[Tuple[ast.stmt, ast.expr, ast.AST]]:
        """Yield ``(enclosing_stmt, iterable_expr, site_node)`` for every
        ``for`` statement and comprehension generator in this function
        (nested defs excluded — they have their own flow)."""
        for stmt, node in self._own_nodes():
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield stmt, node.iter, node
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield stmt, gen.iter, node

    def _own_nodes(self) -> Iterator[Tuple[ast.stmt, ast.AST]]:
        """(enclosing statement, node) pairs, skipping nested defs."""

        def walk(node: ast.AST, stmt: ast.stmt) -> Iterator[Tuple[ast.stmt, ast.AST]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                    continue
                enclosing = child if isinstance(child, ast.stmt) else stmt
                yield enclosing, child
                yield from walk(child, enclosing)

        for top in getattr(self.func, "body", []):
            yield top, top
            yield from walk(top, top)
