"""GT008 — float reductions never accumulate in unordered container order.

Floating-point addition is not associative: ``sum`` over the same
values in a different order produces a different last bit, and the
repo's bitwise contracts (workers-N ≡ workers-1, shard invariance,
replayable fault plans) make that last bit load-bearing.  A reduction
over a ``set``/``frozenset``/dict-view — whose iteration order depends
on hash seeding, not the experiment seed — is therefore a determinism
bug even when every element is "the same".

Scoped to the numeric core (``core/``, ``gossip/``, ``trust/``) and
powered by the same unordered-provenance dataflow as GT005.  Flagged:

* ``sum(xs)`` / ``np.sum(xs)`` where ``xs`` is tagged unordered at the
  call site;
* ``acc += term`` (or ``-=`` / ``*=``) inside a loop iterating an
  unordered container — the loop body realizes the unordered reduction
  one element at a time.

Passing: reduce over ``sorted(xs)``, or use ``math.fsum`` — its
compensated summation is order-independent by construction, so an
unordered argument is genuinely safe there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FlowRule, SourceFile, Violation
from repro.analysis.rules._flowutils import UNORDERED, UnorderedClassifier

__all__ = ["FloatReductionOrderRule"]

_ADVICE = (
    "float reduction order must be seed-determined: reduce over "
    "sorted(...) or use math.fsum (order-independent)"
)

_ACCUM_OPS = (ast.Add, ast.Sub, ast.Mult)


class FloatReductionOrderRule(FlowRule):
    """No order-dependent reductions over unordered containers (GT008)."""

    code = "GT008"
    summary = "no float accumulation in unordered-container order in the core"
    include = ("repro/core/", "repro/gossip/", "repro/trust/")
    exclude = ()

    def check(self, src: SourceFile) -> Iterator[Violation]:
        project = self.project_for(src)
        classifier = UnorderedClassifier()
        classifier.project = project
        for info in project.functions_in(src):
            flow = project.flow(info.qname)
            if flow is None:
                continue
            classifier.caller = info
            fr = flow.propagate(classifier)
            for stmt, node in flow._own_nodes():
                if not isinstance(node, ast.Call):
                    continue
                name = self._reducer_name(node.func)
                if name != "sum" or not node.args:
                    continue
                if UNORDERED in fr.tags_at(stmt, node.args[0]):
                    yield self.violation(
                        src, node,
                        f"'{name}' accumulates an unordered container in hash "
                        f"order — {_ADVICE}",
                    )
            for stmt, iter_expr, site in flow.iteration_sites():
                if not isinstance(site, (ast.For, ast.AsyncFor)):
                    continue
                if UNORDERED not in fr.tags_at(stmt, iter_expr):
                    continue
                for inner in ast.walk(site):
                    if isinstance(inner, ast.AugAssign) and isinstance(
                        inner.op, _ACCUM_OPS
                    ):
                        yield self.violation(
                            src, inner,
                            f"in-loop accumulation over an unordered container "
                            f"— {_ADVICE}",
                        )

    @staticmethod
    def _reducer_name(func: ast.expr) -> str:
        """``sum`` for builtin/np.sum; ``math.fsum`` deliberately excluded."""
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in ("math",):
                return f"math.{func.attr}"  # fsum passes
            return func.attr
        return ""
