"""GT004 — no bare float ``==`` / ``!=`` comparisons in numeric modules.

Gossip estimates, trust scores, and convergence residuals are all
accumulated floating-point quantities; testing them for exact equality
against a float literal is almost always a bug (the comparison silently
never — or worse, flakily — fires).  Thresholded comparisons
(``residual <= epsilon``), ``np.isclose``, or ``math.isclose`` are the
sanctioned forms.

Flagged in the numeric packages: any ``==`` or ``!=`` whose left or
right operand is a float *literal* (``x == 0.5``, ``err != 1e-4``).
Integer-literal comparisons (``steps == 0``) pass — they are exact by
construction.  The rare legitimate exact-float sentinel (e.g. "mass is
exactly the 0.0 it was initialized to") is kept visible with a
``# noqa: GT004`` and a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Rule, SourceFile, Violation

__all__ = ["NoBareFloatEqRule"]


def _float_literal(node: ast.expr) -> "float | None":
    """The value of a float literal expression (incl. ``-0.5``), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    return None


class NoBareFloatEqRule(Rule):
    """Numeric modules never ``==``-compare against float literals (GT004)."""

    code = "GT004"
    summary = "no bare float ==/!= comparisons in numeric modules"
    include = (
        "repro/gossip/",
        "repro/trust/",
        "repro/core/",
        "repro/metrics/",
        "repro/baselines/",
        "repro/distributions/",
        "repro/types.py",
    )
    exclude = ()

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                lit = _float_literal(left)
                if lit is None:
                    lit = _float_literal(right)
                if lit is not None:
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.violation(
                        src,
                        node,
                        f"bare float comparison '{sym} {lit!r}' — use a "
                        "threshold or np.isclose (or # noqa: GT004 with a "
                        "justification for an exact sentinel)",
                    )
