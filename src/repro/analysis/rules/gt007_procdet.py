"""GT007 — cross-process fan-outs keep the determinism discipline.

``experiments/runner.py`` set the house rules for process parallelism:
results are collected in **submission order** (``executor.map``, or a
futures *list* resolved in order — never ``as_completed``), and any
randomness inside a task derives from a **per-task seed** threaded
through the submission (the ``SweepPoint.seed`` convention), so worker
count and completion timing cannot reach the results.  This rule makes
that discipline checkable everywhere a ``ProcessPoolExecutor`` (or any
``concurrent.futures`` executor) appears:

* ``as_completed(...)`` — flagged unconditionally: completion order is
  scheduler noise, and code iterating it bakes that noise into results
  (if only the *values* are order-independent, collect the futures in a
  list and resolve them in submission order instead — same wall time).
* Futures collected into a ``set`` (a set-comprehension of ``submit``
  calls, or ``futures.add(pool.submit(...))``) — flagged: the
  collection itself forgets submission order.
* ``submit``/``map`` of a project-resolved task whose transitive call
  graph *consumes RNG draws* without any per-task seed evidence among
  the arguments (a ``seed``/``rng`` keyword, or an argument derived
  from ``.spawn(...)``) — flagged: worker placement becomes part of
  the random stream.

The shard executor passes by construction: ``advance_shard`` tasks are
pure CSR arithmetic (no RNG anywhere in their closure), and the engine
resolves their futures in submission order.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Optional

from repro.analysis.linter import FlowRule, SourceFile, Violation
from repro.analysis.rules._flowutils import RNG_DRAW_NAMES, mentions_name

__all__ = ["ProcessPoolDisciplineRule"]

_ADVICE_ORDER = (
    "collect futures in submission order (executor.map or an ordered "
    "futures list), matching experiments/runner.py"
)
_ADVICE_SEED = (
    "thread a spawned per-task seed through the submission "
    "(seed=... kwarg or a .spawn(...)-derived argument), matching "
    "experiments/runner.py"
)

#: evidence of per-task seeding; a bare ``rng`` argument is NOT
#: evidence — sharing one generator across tasks is the bug itself
_SEED_FRAGMENTS = ("seed", "spawn")


def _contains_submit(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
        ):
            return True
    return False


def _uses_executors(src: SourceFile) -> bool:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("concurrent"):
                return True
        elif isinstance(node, ast.Import):
            if any(alias.name.startswith("concurrent") for alias in node.names):
                return True
    return False


class ProcessPoolDisciplineRule(FlowRule):
    """Pool fan-outs: ordered collection + per-task seeds (GT007)."""

    code = "GT007"
    summary = "process fan-outs collect in submission order and thread seeds"
    include = ("repro/", "tools/", "examples/", "benchmarks/")
    exclude = ("tests/",)

    def check(self, src: SourceFile) -> Iterator[Violation]:
        if not _uses_executors(src):
            return
        project = self.project_for(src)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = self._name_of(node.func)
                if name == "as_completed":
                    yield self.violation(
                        src, node,
                        f"'as_completed' iterates in completion order — "
                        f"{_ADVICE_ORDER}",
                    )
                elif (
                    name == "add"
                    and isinstance(node.func, ast.Attribute)
                    and any(_contains_submit(arg) for arg in node.args)
                ):
                    yield self.violation(
                        src, node,
                        f"futures added to a set lose submission order — "
                        f"{_ADVICE_ORDER}",
                    )
            elif isinstance(node, ast.SetComp) and _contains_submit(node.elt):
                yield self.violation(
                    src, node,
                    f"set-comprehension of submitted futures loses submission "
                    f"order — {_ADVICE_ORDER}",
                )
        yield from self._check_seed_threading(src, project)

    @staticmethod
    def _name_of(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _check_seed_threading(
        self, src: SourceFile, project: Any
    ) -> Iterator[Violation]:
        for info in project.functions_in(src):
            for stmt_node in ast.walk(info.node):
                if not isinstance(stmt_node, ast.Call):
                    continue
                func = stmt_node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in ("submit", "map") or not stmt_node.args:
                    continue
                task_qname = project.resolve_call(stmt_node.args[0], info)
                if task_qname is None:
                    continue
                if not project.reaches(task_qname, self._consumes_rng):
                    continue
                if self._has_seed_evidence(stmt_node):
                    continue
                yield self.violation(
                    src, stmt_node,
                    f"task '{task_qname.rsplit('.', 1)[-1]}' consumes RNG but "
                    f"the fan-out threads no per-task seed — {_ADVICE_SEED}",
                )

    @staticmethod
    def _consumes_rng(info: Any) -> bool:
        return bool(info.attr_calls & RNG_DRAW_NAMES)

    @staticmethod
    def _has_seed_evidence(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg and any(f in kw.arg.lower() for f in _SEED_FRAGMENTS):
                return True
            if mentions_name(kw.value, "seed") or mentions_name(kw.value, "spawn"):
                return True
        for arg in call.args[1:]:
            if any(mentions_name(arg, f) for f in _SEED_FRAGMENTS):
                return True
        return False
