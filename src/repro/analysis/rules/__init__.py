"""Project lint rules — the GT rule catalog.

=========  ==============================================================
``GT001``  No ad-hoc / global RNG: randomness flows through
           ``utils.rng`` (:class:`~repro.utils.rng.RngStreams`,
           :func:`~repro.utils.rng.as_generator`).
``GT002``  No array allocations inside ``# hot:``-marked regions of the
           fast-kernel paths (the allocation-free contract of PR 2).
``GT003``  No wall-clock reads in the deterministic core
           (``core/``, ``gossip/``, ``sim/``, ``trust/``).
``GT004``  No bare float ``==`` / ``!=`` comparisons in numeric modules.
=========  ==============================================================

Each rule lives in its own module; :data:`ALL_RULES` is the canonical
registry consumed by ``tools/analyze.py``.  To add a rule, drop a
:class:`~repro.analysis.linter.Rule` subclass module here, append an
instance below, and add fixture self-tests (see DESIGN.md, "Static
analysis & sanitizers").
"""

from typing import Tuple

from repro.analysis.linter import Rule
from repro.analysis.rules.gt001_rng import NoAdHocRngRule
from repro.analysis.rules.gt002_alloc import NoHotAllocRule
from repro.analysis.rules.gt003_wallclock import NoWallClockRule
from repro.analysis.rules.gt004_floateq import NoBareFloatEqRule

__all__ = [
    "ALL_RULES",
    "NoAdHocRngRule",
    "NoHotAllocRule",
    "NoWallClockRule",
    "NoBareFloatEqRule",
]

#: the full GT rule set, in catalog order
ALL_RULES: Tuple[Rule, ...] = (
    NoAdHocRngRule(),
    NoHotAllocRule(),
    NoWallClockRule(),
    NoBareFloatEqRule(),
)
