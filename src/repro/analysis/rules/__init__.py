"""Project lint rules — the GT rule catalog.

=========  ==============================================================
``GT001``  No ad-hoc / global RNG: randomness flows through
           ``utils.rng`` (:class:`~repro.utils.rng.RngStreams`,
           :func:`~repro.utils.rng.as_generator`).
``GT002``  No array allocations inside ``# hot:``-marked regions of the
           fast-kernel paths (the allocation-free contract of PR 2).
``GT003``  No wall-clock reads in the deterministic core
           (``core/``, ``gossip/``, ``sim/``, ``trust/``, ``service/``,
           ``experiments/``).
``GT004``  No bare float ``==`` / ``!=`` comparisons in numeric modules.
``GT005``  No unordered-container iteration (set/dict-view/listing) on
           paths reaching RNG draws, partner selection, message
           scheduling, or CSR layout (flow-aware, call-graph scoped).
``GT006``  Shared-workspace writes in ``shard_exec.py``/``memory.py``
           provably confined to the caller's shard slot (ownership
           dataflow; runtime twin: the shadow-ownership sanitizer).
``GT007``  Process fan-outs collect futures in submission order and
           thread a spawned per-task seed (no ``as_completed``).
``GT008``  No float reductions in unordered-container order in the
           numeric core (``sorted(...)`` or ``math.fsum``).
``GT009``  Suppression hygiene: GT sentinels name codes and carry a
           `` -- justification`` (unsuppressible self-check).
=========  ==============================================================

GT001–GT004 are local AST matches; GT005–GT008 are
:class:`~repro.analysis.linter.FlowRule` subclasses running on the
shared :class:`~repro.analysis.callgraph.ProjectIndex` (symbol table +
call graph + reaching-definitions dataflow) built once per lint run.

Each rule lives in its own module; :data:`ALL_RULES` is the canonical
registry consumed by ``tools/analyze.py``.  To add a rule, drop a
:class:`~repro.analysis.linter.Rule` subclass module here, append an
instance below, and add fixture self-tests (see DESIGN.md, "Static
analysis & sanitizers").
"""

from typing import Tuple

from repro.analysis.linter import Rule
from repro.analysis.rules.gt001_rng import NoAdHocRngRule
from repro.analysis.rules.gt002_alloc import NoHotAllocRule
from repro.analysis.rules.gt003_wallclock import NoWallClockRule
from repro.analysis.rules.gt004_floateq import NoBareFloatEqRule
from repro.analysis.rules.gt005_iterorder import NondeterministicIterOrderRule
from repro.analysis.rules.gt006_ownership import SharedWriteOwnershipRule
from repro.analysis.rules.gt007_procdet import ProcessPoolDisciplineRule
from repro.analysis.rules.gt008_reduction import FloatReductionOrderRule
from repro.analysis.rules.gt009_suppress import SuppressionHygieneRule

__all__ = [
    "ALL_RULES",
    "NoAdHocRngRule",
    "NoHotAllocRule",
    "NoWallClockRule",
    "NoBareFloatEqRule",
    "NondeterministicIterOrderRule",
    "SharedWriteOwnershipRule",
    "ProcessPoolDisciplineRule",
    "FloatReductionOrderRule",
    "SuppressionHygieneRule",
]

#: the full GT rule set, in catalog order
ALL_RULES: Tuple[Rule, ...] = (
    NoAdHocRngRule(),
    NoHotAllocRule(),
    NoWallClockRule(),
    NoBareFloatEqRule(),
    NondeterministicIterOrderRule(),
    SharedWriteOwnershipRule(),
    ProcessPoolDisciplineRule(),
    FloatReductionOrderRule(),
    SuppressionHygieneRule(),
)
