"""GT001 — no ad-hoc or global RNG outside ``utils/rng.py``.

The parallel sweep runner's bit-determinism guarantee (workers=N equals
workers=1) holds only because every stochastic component draws from a
*named child stream* of one root seed (:class:`~repro.utils.rng.RngStreams`).
A stray ``np.random.default_rng()`` — or worse, the legacy global
``np.random.seed`` / ``random`` module — silently breaks that: its draws
depend on call order and process identity, not the experiment seed.

Flagged in library and example code:

* any call through ``np.random`` / ``numpy.random`` (``default_rng``,
  ``seed``, ``RandomState``, legacy distribution functions, ...);
* ``from numpy.random import ...`` (the same calls in disguise);
* any import of the stdlib ``random`` module.

Type annotations such as ``np.random.Generator`` are attribute
*references*, not calls, and pass.  The sanctioned constructions live in
``repro/utils/rng.py``, which is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.analysis.linter import Rule, SourceFile, Violation

__all__ = ["NoAdHocRngRule"]

_ADVICE = "route randomness through utils.rng (RngStreams / as_generator)"


def _numpy_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str], Set[str]]:
    """Names bound to numpy, numpy.random, and numpy.random members."""
    numpy_names: Set[str] = set()
    nprandom_names: Set[str] = set()
    member_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    nprandom_names.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        nprandom_names.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    member_names.add(alias.asname or alias.name)
    return numpy_names, nprandom_names, member_names


class NoAdHocRngRule(Rule):
    """All randomness flows through ``utils.rng`` (GT001)."""

    code = "GT001"
    summary = "no global/module-level RNG; use utils.rng streams"
    include = ("repro/", "examples/")
    exclude = ("repro/utils/rng.py", "tests/", "conftest.py")

    def check(self, src: SourceFile) -> Iterator[Violation]:
        numpy_names, nprandom_names, member_names = _numpy_aliases(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            src, node, f"stdlib 'random' import — {_ADVICE}"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        src, node, f"stdlib 'random' import — {_ADVICE}"
                    )
                elif node.module == "numpy.random":
                    yield self.violation(
                        src,
                        node,
                        f"direct numpy.random import — {_ADVICE}",
                    )
            elif isinstance(node, ast.Call):
                label = self._rng_call(
                    node.func, numpy_names, nprandom_names, member_names
                )
                if label is not None:
                    yield self.violation(
                        src, node, f"ad-hoc RNG call '{label}' — {_ADVICE}"
                    )

    @staticmethod
    def _rng_call(
        func: ast.expr,
        numpy_names: Set[str],
        nprandom_names: Set[str],
        member_names: Set[str],
    ) -> "str | None":
        """The dotted name of an ``np.random`` call, or None if clean."""
        if isinstance(func, ast.Name) and func.id in member_names:
            return func.id
        if not isinstance(func, ast.Attribute):
            return None
        # np.random.<fn>(...) — Attribute(Attribute(Name(np), random), fn)
        base = func.value
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_names
        ):
            return f"{base.value.id}.random.{func.attr}"
        # nprand.<fn>(...) where nprand aliases numpy.random
        if isinstance(base, ast.Name) and base.id in nprandom_names:
            return f"{base.id}.{func.attr}"
        return None
