"""GT009 — suppression hygiene: every GT ``# noqa`` names codes and a why.

A suppression is a hole in the gate; an *unexplained* suppression is a
hole nobody can audit.  House style: a sentinel silences specific
codes and records its reason inline —

    mass == 0.0  # noqa: GT004 -- exact sentinel: initialized literal

This rule audits the sentinels themselves (and is deliberately
*unsuppressible* — a ``# noqa: GT009`` cannot silence it):

* a blanket ``# noqa`` (no codes) inside project scope — flagged: it
  silences every current and future rule at once;
* a sentinel naming any ``GTxxx`` code with no `` -- justification``
  tail — flagged: the reviewer three PRs later needs the why;
* a sentinel naming a GT code no registered rule owns — flagged: it is
  dead (typo'd) armor.

Detection runs on real comment tokens only (the framework's
:mod:`tokenize` scan), so ``# noqa`` examples inside docstrings — like
the ones in this file — are inert.  Foreign-tool sentinels
(``# noqa: E402``-style ruff/flake8 codes) are out of scope: they name
codes, and their linters have their own hygiene.  Test files are
excluded — lint fixtures there quote sentinels as *data*.  The full
sentinel inventory is reported by
``tools/analyze.py --list-suppressions``.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.linter import Rule, SourceFile, Violation

__all__ = ["SuppressionHygieneRule", "GT_CODE_RE"]

#: shape of a project rule code
GT_CODE_RE = re.compile(r"^GT\d{3}$")


def _known_codes() -> frozenset:
    from repro.analysis.rules import ALL_RULES

    return frozenset({rule.code for rule in ALL_RULES} | {"GT000"})


class _Anchor:
    """Positions a violation on the sentinel's own line."""

    def __init__(self, line: int):
        self.lineno = line
        self.col_offset = 0


class SuppressionHygieneRule(Rule):
    """GT sentinels are targeted and justified (GT009)."""

    code = "GT009"
    summary = "noqa sentinels name GT codes and carry a '-- justification'"
    include = ("repro/", "tools/", "examples/", "benchmarks/")
    exclude = ("tests/",)
    suppressible = False

    def check(self, src: SourceFile) -> Iterator[Violation]:
        known = _known_codes()
        for sup in src.suppressions:
            anchor = _Anchor(sup.line)
            if sup.blanket:
                yield self.violation(
                    src, anchor,
                    "blanket '# noqa' silences every rule — name the codes "
                    "and append ' -- <why this is safe>'",
                )
                continue
            gt_codes = sorted(c for c in sup.codes if GT_CODE_RE.match(c))
            if not gt_codes:
                continue  # foreign-tool sentinel (ruff/flake8)
            unknown = [c for c in gt_codes if c not in known]
            for c in unknown:
                yield self.violation(
                    src, anchor,
                    f"sentinel names unregistered rule '{c}' — dead "
                    "suppression (typo?)",
                )
            if not sup.justification:
                yield self.violation(
                    src, anchor,
                    f"bare suppression of {', '.join(gt_codes)} — append "
                    "' -- <why this is safe>' to the sentinel",
                )
