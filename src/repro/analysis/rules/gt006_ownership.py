"""GT006 — shared-workspace writes stay inside the caller's shard slot.

The sharded sparse kernel's no-locking design rests on one invariant:
a worker task for shard ``s`` writes **only** the CSR pool arrays of
shard ``s``.  The pools of every shard are attached in every worker
process (that is the point of the manifest), so nothing at runtime
stops a task from scribbling over a foreign shard's slot — it would
not crash, it would just make results silently depend on task timing.

This rule proves write confinement statically in the two modules that
touch attached segments directly (``gossip/shard_exec.py`` and
``gossip/memory.py``):

1. **Provenance.** Values returned by ``attach_array`` (directly or
   through project-resolved helpers) are *attached*.  A module-level
   context dict (``_CTX``-style) is scanned for ``update``/key stores;
   keys whose stored value is attached become the *attached table*.
2. **Ownership.** Subscripting an attached table with the caller's
   shard parameter (``ctx["shards"][shard]``) yields an *owned* slot;
   any deeper subscript of an owned value stays owned.  Any other
   index — a constant, an arithmetic expression like ``shard + 1``, an
   unrelated variable — yields a *foreign* reference, as does holding
   the whole table or a flat attached buffer (the parent-owned
   ``targets`` ring, which workers may read but never write).
3. **Writes.** Subscript-assignments, in-place writer kernels
   (``csr_matmat``/``csr_matvecs``/``csr_todense`` out-args), ``out=``
   keywords, ``np.copyto``, and mutating methods (``.fill``/``.sort``/
   ``.partition``) through anything attached-but-not-owned are errors.

The runtime twin of this rule is the shadow-ownership sanitizer in
:mod:`repro.analysis.sanitizer` (``REPRO_SANITIZE=1``), which catches
the same class of race when the write site is not statically visible.
"""

from __future__ import annotations

import ast
from typing import Any, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow import NO_TAGS, Env, FlowResult, TagClassifier, Tags
from repro.analysis.linter import FlowRule, SourceFile, Violation
from repro.analysis.rules._flowutils import return_tags

__all__ = ["SharedWriteOwnershipRule"]

#: tags used by the ownership lattice
_CTX_TAG = "ctx"          # the module-level context dict itself
_ATTACHED = "attached"    # a manifest-attached array (flat)
_TABLE = "table"          # the per-shard table of attached pools
_OWN = "own"              # confined to the caller's shard slot
_FOREIGN = "foreign"      # attached, but NOT the caller's slot
_SHARD = "shard"          # the caller's shard-index parameter

#: parameter names recognized as the caller's shard index
_SHARD_PARAMS = frozenset({"shard", "shard_id", "shard_index", "si"})

#: writer kernels: callable name -> number of trailing out-args
_TRAILING_WRITERS = {
    "csr_matmat": 3,
    "_csr_matmat": 3,
    "csr_matvecs": 1,
    "csr_todense": 1,
}
#: mutating methods that write their receiver
_MUTATOR_METHODS = frozenset({"fill", "sort", "partition", "put"})

_ADVICE = (
    "workers may write only their own shard's manifest-attached pools "
    "(index the shard table with the task's shard parameter)"
)


def _callable_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _OwnershipClassifier(TagClassifier):
    """Tag semantics of the attached/own/foreign lattice."""

    def __init__(self, ctx_names: FrozenSet[str], attached_keys: FrozenSet[str]):
        self.ctx_names = ctx_names
        self.attached_keys = attached_keys
        self.project: Any = None
        self.caller: Any = None
        self._active: Set[str] = set()
        self._depth = 0

    def param_tags(self, name: str, func: ast.AST) -> Tags:
        if name in _SHARD_PARAMS:
            return frozenset({_SHARD})
        return NO_TAGS

    def expr_tags(self, expr: ast.expr, env: Env, result: FlowResult) -> Optional[Tags]:
        if isinstance(expr, ast.Name) and expr.id in self.ctx_names:
            return frozenset({_CTX_TAG})
        if isinstance(expr, ast.Subscript):
            base = result.tags_of(expr.value, env)
            if _CTX_TAG in base:
                key = expr.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    if key.value in self.attached_keys:
                        return frozenset({_TABLE})
                    return NO_TAGS
                return frozenset({_TABLE})  # dynamic key: assume attached
            if _TABLE in base:
                idx = expr.slice
                if isinstance(idx, ast.Name) and _SHARD in env.get(idx.id, NO_TAGS):
                    return frozenset({_OWN})
                return frozenset({_FOREIGN})
            if _OWN in base:
                return frozenset({_OWN})
            if _FOREIGN in base:
                return frozenset({_FOREIGN})
            if _ATTACHED in base:
                return frozenset({_ATTACHED})
            return None
        return None

    def call_tags(
        self, call: ast.Call, arg_tags: List[Tags], env: Env, result: FlowResult
    ) -> Tags:
        name = _callable_name(call.func)
        if name == "attach_array":
            return frozenset({_ATTACHED})
        if self.project is None or self.caller is None or self._depth >= 3:
            return NO_TAGS
        qname = self.project.resolve_call(call.func, self.caller)
        if qname is None or qname in self._active:
            return NO_TAGS
        return return_tags(self.project, qname, self)  # type: ignore[arg-type]

    def element_tags(self, iterable_tags: Tags) -> Tags:
        if _TABLE in iterable_tags:
            # iterating the shard table yields slots the iterator does
            # not own
            return frozenset({_FOREIGN})
        return iterable_tags  # tuple-unpacking an attach result, etc.


def _module_dict_names(tree: ast.Module) -> FrozenSet[str]:
    """Names of module-level ``NAME = {}``-style context tables."""
    names: Set[str] = set()
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, (ast.Dict, ast.DictComp))
        ):
            names.add(target.id)
    return frozenset(names)


class SharedWriteOwnershipRule(FlowRule):
    """Attached-segment writes are confined to the own shard slot (GT006)."""

    code = "GT006"
    summary = "shared-workspace writes confined to the caller's shard slot"
    include = ("repro/gossip/shard_exec.py", "repro/gossip/memory.py")
    exclude = ()

    def check(self, src: SourceFile) -> Iterator[Violation]:
        project = self.project_for(src)
        ctx_names = _module_dict_names(src.tree)
        infos = project.functions_in(src)
        attached_keys = self._discover_attached_keys(project, infos, ctx_names)
        classifier = _OwnershipClassifier(ctx_names, attached_keys)
        classifier.project = project
        for info in infos:
            flow = project.flow(info.qname)
            if flow is None:
                continue
            classifier.caller = info
            fr = flow.propagate(classifier)
            yield from self._check_function(src, flow, fr)

    # -- phase 1: which ctx keys hold attached segments --------------------

    def _discover_attached_keys(
        self, project: Any, infos: List[Any], ctx_names: FrozenSet[str]
    ) -> FrozenSet[str]:
        if not ctx_names:
            return frozenset()
        probe = _OwnershipClassifier(frozenset(), frozenset())
        probe.project = project
        keys: Set[str] = set()
        for info in infos:
            flow = project.flow(info.qname)
            if flow is None:
                continue
            probe.caller = info
            fr = flow.propagate(probe)
            for stmt, node in flow._own_nodes():
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "update"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ctx_names
                ):
                    for kw in node.keywords:
                        if kw.arg and _ATTACHED in fr.tags_at(stmt, kw.value):
                            keys.add(kw.arg)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in ctx_names
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)
                            and _ATTACHED in fr.tags_at(stmt, node.value)
                        ):
                            keys.add(target.slice.value)
        return frozenset(keys)

    # -- phase 2: write-site confinement -----------------------------------

    def _check_function(
        self, src: SourceFile, flow: Any, fr: FlowResult
    ) -> Iterator[Violation]:
        for stmt, node in flow._own_nodes():
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        yield from self._flag_write(
                            src, fr, stmt, target.value, "subscript assignment"
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(src, fr, stmt, node)

    def _check_call(
        self, src: SourceFile, fr: FlowResult, stmt: ast.stmt, call: ast.Call
    ) -> Iterator[Violation]:
        name = _callable_name(call.func)
        if name in _TRAILING_WRITERS:
            out_count = _TRAILING_WRITERS[name]
            for arg in call.args[-out_count:]:
                yield from self._flag_write(src, fr, stmt, arg, f"'{name}' out-arg")
        elif name == "copyto" and call.args:
            yield from self._flag_write(src, fr, stmt, call.args[0], "'copyto' target")
        elif (
            name in _MUTATOR_METHODS
            and isinstance(call.func, ast.Attribute)
        ):
            yield from self._flag_write(
                src, fr, stmt, call.func.value, f"'.{name}()' receiver"
            )
        for kw in call.keywords:
            if kw.arg == "out":
                yield from self._flag_write(src, fr, stmt, kw.value, "'out=' target")

    def _flag_write(
        self,
        src: SourceFile,
        fr: FlowResult,
        stmt: ast.stmt,
        written: ast.expr,
        what: str,
    ) -> Iterator[Violation]:
        tags = fr.tags_at(stmt, written)
        if _OWN in tags:
            return
        if _FOREIGN in tags:
            yield self.violation(
                src, written,
                f"{what} writes a foreign shard's attached slot — {_ADVICE}",
            )
        elif _TABLE in tags:
            yield self.violation(
                src, written,
                f"{what} writes through the unsliced shard table — {_ADVICE}",
            )
        elif _ATTACHED in tags:
            yield self.violation(
                src, written,
                f"{what} writes a flat manifest-attached buffer (parent-owned) "
                f"— {_ADVICE}",
            )
