"""Shared tag semantics for the flow-aware determinism rules.

GT005 (iteration order) and GT008 (float-reduction order) both need the
same core judgment — *is this value an unordered container, or derived
from one, at this program point?* — and GT006/GT007 need the same
interprocedural helpers (resolve a call, summarize a callee's return
tags).  This module is that shared substrate so each rule file carries
only its own policy.

The :data:`UNORDERED` tag marks values whose iteration order is not a
pure function of the experiment seed: ``set``/``frozenset`` values and
set-literal/set-comprehension results, filesystem enumeration
(``os.listdir``, ``glob.glob``, ``Path.iterdir``), set-algebra results,
and anything *materialized from* one of those (``list(s)``,
``enumerate(s)``, a comprehension over ``s``) — materializing does not
launder nondeterminism, it freezes it.  Plain dict/list/tuple literals
are ordered (CPython dicts preserve insertion order), but a dict *built
from* an unordered source inherits the tag.  Sanctioned launderers
clear it: ``sorted``, ``np.sort``, ``np.unique``, ``min``/``max``,
``math.fsum`` (order-independent by construction), and length/scalar
reductions.
"""

from __future__ import annotations

import ast
from typing import Any, FrozenSet, List, Optional

from repro.analysis.dataflow import NO_TAGS, Env, FlowResult, TagClassifier, Tags

__all__ = [
    "UNORDERED",
    "RNG_DRAW_NAMES",
    "UnorderedClassifier",
    "return_tags",
]

#: tag carried by values with seed-independent (nondeterministic) order
UNORDERED = "unordered"

#: Generator draw methods whose *consumption* makes a function an
#: order-sensitive sink: feed these from an unordered iteration and the
#: stream decouples from the experiment seed.
RNG_DRAW_NAMES = frozenset(
    {
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "random",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
    }
)

#: callables producing unordered results (bare-name form)
_UNORDERED_BUILDERS = frozenset({"set", "frozenset"})
#: attribute calls producing unordered results regardless of receiver
_UNORDERED_ATTRS = frozenset({"listdir", "scandir", "iglob", "iterdir"})
#: attribute calls that are unordered when the receiver/module suggests
#: filesystem or set algebra
_GLOB_ATTRS = frozenset({"glob", "rglob"})
_SET_ALGEBRA = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
#: bare-name launderers: results are ordered or order-independent
_SANITIZERS = frozenset({"sorted", "min", "max", "len", "sum", "fsum", "any", "all"})
#: attribute launderers (``np.sort``, ``np.unique``, ``math.fsum``)
_SANITIZER_ATTRS = frozenset({"sort", "unique", "fsum", "argsort", "lexsort"})
#: transparent wrappers: output order is input order
_PASSTHROUGH = frozenset({"list", "tuple", "iter", "enumerate", "reversed", "filter", "map"})
_PASSTHROUGH_ATTRS = frozenset({"array", "asarray", "fromiter", "keys", "values", "items", "copy"})

#: interprocedural summary depth — enough for helper-wrapping patterns
#: without turning one lint query into a whole-program fixpoint
_MAX_DEPTH = 3


class UnorderedClassifier(TagClassifier):
    """Flow semantics of the :data:`UNORDERED` tag.

    ``project`` is the shared :class:`~repro.analysis.callgraph.ProjectIndex`
    and ``caller`` the :class:`~repro.analysis.callgraph.FunctionInfo`
    currently being propagated — both are set by the rule before each
    :meth:`~repro.analysis.dataflow.FunctionFlow.propagate` call and
    used to fold project-resolved callees' return tags into call
    results.
    """

    def __init__(self) -> None:
        self.project: Any = None
        self.caller: Any = None
        self._active: set = set()
        self._depth = 0

    def expr_tags(self, expr: ast.expr, env: Env, result: FlowResult) -> Optional[Tags]:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return frozenset({UNORDERED})
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # A comprehension freezes its generators' order: looping a
            # set through a listcomp yields an unordered list.
            for gen in expr.generators:
                if UNORDERED in result.tags_of(gen.iter, env):
                    return frozenset({UNORDERED})
            return NO_TAGS
        return None

    def call_tags(
        self, call: ast.Call, arg_tags: List[Tags], env: Env, result: FlowResult
    ) -> Tags:
        func = call.func
        merged_args = NO_TAGS
        for tags in arg_tags:
            merged_args |= tags
        if isinstance(func, ast.Name):
            name = func.id
            if name in _UNORDERED_BUILDERS:
                return frozenset({UNORDERED})
            if name in _SANITIZERS:
                return NO_TAGS
            if name in _PASSTHROUGH or name == "dict":
                return merged_args
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _SANITIZER_ATTRS:
                return NO_TAGS
            if attr in _UNORDERED_ATTRS or attr in _GLOB_ATTRS:
                return frozenset({UNORDERED})
            if attr in _SET_ALGEBRA or attr in _PASSTHROUGH_ATTRS or attr == "fromkeys":
                # set algebra / dict views / materializers inherit the
                # receiver's (and arguments') orderedness
                return result.tags_of(func.value, env) | merged_args
        return self._callee_return_tags(call) | NO_TAGS

    def _callee_return_tags(self, call: ast.Call) -> Tags:
        """Fold in the return tags of a project-resolved callee."""
        if self.project is None or self.caller is None or self._depth >= _MAX_DEPTH:
            return NO_TAGS
        qname = self.project.resolve_call(call.func, self.caller)
        if qname is None or qname in self._active:
            return NO_TAGS
        return return_tags(self.project, qname, self)

    def element_tags(self, iterable_tags: Tags) -> Tags:
        return NO_TAGS  # elements of an unordered container are just values


def return_tags(project: Any, qname: str, classifier: UnorderedClassifier) -> Tags:
    """Union of tags over every ``return`` expression of ``qname``.

    Depth-limited and cycle-safe: recursion through
    :meth:`UnorderedClassifier.call_tags` stops at ``_MAX_DEPTH`` or on
    re-entry into an in-flight function.
    """
    info = project.functions.get(qname)
    flow = project.flow(qname)
    if info is None or flow is None:
        return NO_TAGS
    prev_caller = classifier.caller
    classifier._active.add(qname)
    classifier._depth += 1
    classifier.caller = info
    try:
        fr = flow.propagate(classifier)
        out: Tags = NO_TAGS
        for stmt, node in flow._own_nodes():
            if isinstance(node, ast.Return) and node.value is not None:
                out |= fr.tags_at(stmt, node.value)
        return out
    finally:
        classifier.caller = prev_caller
        classifier._depth -= 1
        classifier._active.discard(qname)


def mentions_name(expr: ast.expr, fragment: str) -> bool:
    """Whether any identifier in ``expr`` contains ``fragment``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and fragment in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and fragment in node.attr.lower():
            return True
        if isinstance(node, ast.keyword) and node.arg and fragment in node.arg.lower():
            return True
    return False
