"""GT005 — no nondeterministic iteration order on determinism-critical paths.

Python gives ``set``/``frozenset`` iteration an order that depends on
hash seeding and insertion history, and ``os.listdir``/``glob`` return
directory order — none of which is a function of the experiment seed.
Feeding such an order into anything the reproducibility contract covers
silently decouples results from the seed: an RNG consumed in a
different sequence, partners selected from a differently-ordered pool,
messages scheduled in a different order, or a CSR layout built with
permuted columns all produce *plausible but unreproducible* runs.

This is the first flow-aware rule: it tracks unordered-container
provenance through assignments, comprehensions, and project-resolved
helper returns (:mod:`repro.analysis.dataflow`), and consults the call
graph (:mod:`repro.analysis.callgraph`) so it only fires in functions
whose transitive callees actually reach an order-sensitive sink:

* RNG consumption — any reachable function drawing from a generator
  (``integers``/``choice``/``shuffle``/...);
* partner selection — anything in ``repro.gossip.partnering``;
* message scheduling — reachable functions with ``schedule`` in their
  name;
* CSR layout construction — ``fill_mixing`` and friends.

Flagged: ``for``-loops and comprehensions iterating a value tagged
unordered, and NumPy materializations (``np.array``/``np.asarray``/
``np.fromiter``) of one.  Passing: explicitly ordered uses — wrap the
container in ``sorted(...)`` (or ``np.sort``/``np.unique``) before
iterating, and the tag clears.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from repro.analysis.linter import FlowRule, SourceFile, Violation
from repro.analysis.rules._flowutils import (
    RNG_DRAW_NAMES,
    UNORDERED,
    UnorderedClassifier,
)

__all__ = ["NondeterministicIterOrderRule"]

_ADVICE = (
    "iteration order of a set/dict-view/listing is not seed-determined; "
    "sort it first (sorted(...) / np.sort / np.unique) or keep an "
    "ordered container"
)

#: function names that build CSR layout or schedule messages
_SINK_FUNC_NAMES = frozenset({"fill_mixing"})
_NP_MATERIALIZERS = frozenset({"array", "asarray", "fromiter"})


def _is_order_sink(info: Any) -> bool:
    """Whether ``info`` is itself an order-sensitive endpoint."""
    if info.module.name.startswith("repro.gossip.partnering"):
        return True  # partner selection
    name = info.node.name
    if name in _SINK_FUNC_NAMES or "schedule" in name.lower():
        return True  # CSR layout / message scheduling
    if info.attr_calls & RNG_DRAW_NAMES:
        return True  # draws from a generator
    return False


class NondeterministicIterOrderRule(FlowRule):
    """Unordered iteration must not reach determinism sinks (GT005)."""

    code = "GT005"
    summary = "no unordered-container iteration on RNG/partner/schedule/CSR paths"
    include = ("repro/",)
    exclude = ("tests/",)

    def check(self, src: SourceFile) -> Iterator[Violation]:
        project = self.project_for(src)
        classifier = UnorderedClassifier()
        classifier.project = project
        for info in project.functions_in(src):
            if not project.reaches(info.qname, _is_order_sink):
                continue
            flow = project.flow(info.qname)
            if flow is None:
                continue
            classifier.caller = info
            fr = flow.propagate(classifier)
            reported = set()
            for stmt, iter_expr, site in flow.iteration_sites():
                if id(site) in reported:
                    continue
                if UNORDERED in fr.tags_at(stmt, iter_expr):
                    reported.add(id(site))
                    kind = (
                        "for-loop" if isinstance(site, (ast.For, ast.AsyncFor))
                        else "comprehension"
                    )
                    yield self.violation(
                        src,
                        site,
                        f"{kind} iterates an unordered container on a path "
                        f"reaching an order-sensitive sink — {_ADVICE}",
                    )
            for stmt, node in flow._own_nodes():
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _NP_MATERIALIZERS
                    and node.args
                    and UNORDERED in fr.tags_at(stmt, node.args[0])
                ):
                    yield self.violation(
                        src,
                        node,
                        f"np.{node.func.attr} materializes an unordered "
                        f"container on an order-sensitive path — {_ADVICE}",
                    )
