"""GT002 — no array allocations inside ``# hot:``-marked regions.

PR 2's fast-kernel contract: the per-step gossip loops run over
*preallocated* workspace buffers and allocate nothing per step.  That
property is easy to lose in review — a well-meaning ``X.copy()`` or
``np.zeros`` in the step loop reintroduces per-step page traffic and
erases the measured ~3.5x speedup.

The contract is declared in the source itself: a ``# hot:`` comment
directly above (or trailing on) a ``def`` / ``for`` / ``while`` header
marks that whole region allocation-free.  Inside a marked region this
rule flags:

* ``np.zeros`` / ``np.empty`` / ``np.full`` (and their ``_like``
  variants, plus ``np.ones``) calls;
* any ``.copy()`` method call.

Everything outside a marked region — including the one-time
:class:`~repro.gossip.engine.Workspace` construction those loops rely
on — is untouched.  The rule is self-scoping: files without a
``# hot:`` marker produce no findings, so it runs everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.analysis.linter import Rule, SourceFile, Violation

__all__ = ["NoHotAllocRule", "HOT_MARKER"]

#: the comment prefix that declares an allocation-free region
HOT_MARKER = "# hot:"

#: numpy allocators banned inside hot regions
_ALLOCATORS = frozenset(
    {
        "zeros", "empty", "full", "ones",
        "zeros_like", "empty_like", "full_like", "ones_like",
    }
)

_REGION_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.For,
    ast.While,
)

RegionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.For, ast.While]


def _marker_lines(src: SourceFile) -> List[int]:
    """1-based line numbers carrying a ``# hot:`` marker."""
    return [
        i for i, line in enumerate(src.lines, start=1) if HOT_MARKER in line
    ]


def hot_regions(src: SourceFile) -> List[RegionNode]:
    """The ``def``/``for``/``while`` nodes marked ``# hot:``.

    A marker binds to the innermost region whose header line is the
    marker line itself (trailing comment) or the nearest header at or
    below the marker (comment-above form, tolerating decorators and
    blank lines in between).
    """
    markers = _marker_lines(src)
    if not markers:
        return []
    candidates: List[RegionNode] = [
        node for node in ast.walk(src.tree) if isinstance(node, _REGION_NODES)
    ]
    regions: List[RegionNode] = []
    for marker in markers:
        # Nearest header at or below the marker covers both the
        # comment-above form (header strictly below, tolerating blank
        # lines/decorators) and the trailing form on a single-line
        # header (``while n:  # hot: ...`` — header line == marker).
        best: RegionNode | None = None
        for node in candidates:
            if node.lineno < marker:
                continue
            if best is None or node.lineno < best.lineno:
                best = node
        if best is None:
            # Marker trails a continuation line of a multi-line header,
            # or sits after every header: innermost containing region.
            for node in candidates:
                if node.lineno <= marker <= (node.end_lineno or node.lineno):
                    if best is None or node.lineno > best.lineno:
                        best = node
        if best is not None and best not in regions:
            regions.append(best)
    return regions


class NoHotAllocRule(Rule):
    """Hot-marked kernel regions stay allocation-free (GT002)."""

    code = "GT002"
    summary = "no np.zeros/np.empty/np.full/.copy() in # hot: regions"
    include = ()  # self-scoping: only files with # hot: markers can fire
    exclude = ()

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for region in hot_regions(src):
            where = getattr(region, "name", type(region).__name__.lower())
            for node in ast.walk(region):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr == "copy" and not node.args and not node.keywords:
                    yield self.violation(
                        src,
                        node,
                        f".copy() allocates inside hot region '{where}' — "
                        "reuse a workspace buffer",
                    )
                elif (
                    func.attr in _ALLOCATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                ):
                    yield self.violation(
                        src,
                        node,
                        f"np.{func.attr} allocates inside hot region "
                        f"'{where}' — preallocate in the Workspace",
                    )
