"""GT003 — no wall-clock reads in the deterministic core.

The aggregation loop, the gossip engines, the DES simulator, and the
trust substrate are all replayed bit-for-bit by the contract suite and
the parallel sweep runner.  A wall-clock read in any of them is either a
determinism bug (behaviour branching on real time) or misplaced
telemetry; both belong in the measurement layer.

Flagged inside ``core/``, ``gossip/``, ``network/``, ``sim/``,
``trust/``, ``service/``, and ``experiments/`` (the network layer —
transport, membership, fault plans — replays on the simulated clock
like everything else; the service and experiment layers measure wall
time, but only *through* ``Stopwatch``, so their results never branch
on a raw clock read):

* references to ``time.time``, ``time.perf_counter``,
  ``time.monotonic``, ``time.process_time`` (calls *or* bare
  references — passing ``time.time`` as a callback is just as bad);
* ``datetime.now`` / ``datetime.utcnow`` / ``date.today``;
* names imported from :mod:`time`/:mod:`datetime` that resolve to the
  above (``from time import perf_counter``).

Simulated time (``sim.now``) is, of course, fine.  The sanctioned
wall-clock readers are the telemetry layer (``metrics/telemetry.py`` —
use its ``Stopwatch``) and ``utils/proc.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.linter import Rule, SourceFile, Violation

__all__ = ["NoWallClockRule"]

_TIME_ATTRS = frozenset({"time", "perf_counter", "monotonic", "process_time"})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_ADVICE = (
    "deterministic core must not read the wall clock; use "
    "metrics.telemetry.Stopwatch in the measurement layer"
)


class NoWallClockRule(Rule):
    """Core/gossip/sim/trust never read the wall clock (GT003)."""

    code = "GT003"
    summary = "no wall-clock (time.*/datetime.now) in the deterministic core"
    include = (
        "repro/core/",
        "repro/gossip/",
        "repro/network/",
        "repro/sim/",
        "repro/trust/",
        "repro/service/",
        "repro/experiments/",
    )
    exclude = ("repro/metrics/telemetry.py", "repro/utils/proc.py")

    def check(self, src: SourceFile) -> Iterator[Violation]:
        clock_names: Set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_ATTRS:
                            clock_names.add(alias.asname or alias.name)
                            yield self.violation(
                                src,
                                node,
                                f"imports wall clock 'time.{alias.name}' — {_ADVICE}",
                            )
                elif node.module == "datetime":
                    # `from datetime import datetime` is fine as a type;
                    # only .now()/.utcnow() usage below is flagged.
                    continue
            elif isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr in ("datetime", "date")
                    and node.attr in _DATETIME_ATTRS
                ):
                    # datetime.datetime.now(...) / dt.date.today(...)
                    yield self.violation(
                        src,
                        node,
                        f"wall-clock '{base.attr}.{node.attr}' — {_ADVICE}",
                    )
                    continue
                if not isinstance(base, ast.Name):
                    continue
                if base.id == "time" and node.attr in _TIME_ATTRS:
                    yield self.violation(
                        src, node, f"wall-clock 'time.{node.attr}' — {_ADVICE}"
                    )
                elif base.id in ("datetime", "date") and node.attr in _DATETIME_ATTRS:
                    yield self.violation(
                        src,
                        node,
                        f"wall-clock '{base.id}.{node.attr}' — {_ADVICE}",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in clock_names:
                    yield self.violation(
                        src, node, f"wall-clock call '{func.id}()' — {_ADVICE}"
                    )
