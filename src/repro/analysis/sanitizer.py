"""Runtime invariant sanitizer for the gossip engines.

The paper's correctness argument rests on invariants the code otherwise
only states in prose: push-sum conserves total mass (the column sums of
``x`` and ``w`` never change — §2, Eqs. 3-4), consensus mass ``w`` never
goes negative, estimates stay finite, and the Eq. 1 normalization leaves
``S`` row-stochastic.  When armed, this sanitizer turns each of those
into a *checked* hook: every engine calls back into one
:class:`InvariantSanitizer` at its convergence-check cadence, and any
breach raises a structured :class:`~repro.errors.InvariantViolation`
naming the engine, aggregation cycle, gossip step, and (when known) the
offending node.

A second, orthogonal sanitizer guards the *parallel* sparse kernel:
:class:`ShardOwnershipGuard` shadows every shared-workspace pool slot
with a per-slot ownership epoch (allocated on the same attachable
backend as the pools), so overlapping writes across shard tasks — the
dynamic counterpart of lint rule GT006 — are caught at dispatch, claim,
or collect time and raise :class:`~repro.errors.InvariantViolation`
naming the shard, slot, and cycle.

Arming
------
* ``REPRO_SANITIZE=1`` in the environment — flips the
  :class:`~repro.core.config.GossipTrustConfig.sanitize` default and
  the :class:`~repro.trust.matrix.TrustMatrix` re-validation on, with
  zero code changes (CI soak runs use this);
* ``GossipTrustConfig(sanitize=True)`` — the factory arms every engine
  it builds;
* :meth:`CycleEngine.arm_sanitizer <repro.gossip.base.CycleEngine.arm_sanitizer>`
  — manual arming of a single engine instance.

Cost model
----------
Checks run at *checked steps only* (the engines' convergence-check
cadence, not every gossip step), and each check is one vectorized
reduction over state the engine already has in cache — O(n·p) per
checked step for the dense sync kernel, O(population) per round for the
message engines.  In practice the armed contract suite runs within ~2x
of unarmed wall time; the default stays off for production sweeps.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.errors import InvariantViolation

__all__ = [
    "ENV_FLAG",
    "InvariantSanitizer",
    "ShardOwnershipGuard",
    "sanitize_enabled",
    "set_sanitize_enabled",
]

#: environment variable that arms the sanitizer process-wide
ENV_FLAG = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: programmatic override of the env flag (None = defer to environment)
_FORCED: Optional[bool] = None


def sanitize_enabled() -> bool:
    """Whether the process-wide sanitizer switch is on.

    Reads :func:`set_sanitize_enabled`'s override first, then the
    ``REPRO_SANITIZE`` environment variable.  Consulted by
    :class:`~repro.core.config.GossipTrustConfig` for its ``sanitize``
    default and by :class:`~repro.trust.matrix.TrustMatrix` for
    post-normalization re-validation.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


def set_sanitize_enabled(value: Optional[bool]) -> None:
    """Force the process-wide switch on/off; ``None`` defers to the env."""
    global _FORCED
    _FORCED = value


class InvariantSanitizer:
    """Checked invariant hooks shared by every gossip engine.

    One instance is armed per engine (see
    :meth:`~repro.gossip.base.CycleEngine.arm_sanitizer`); it tracks the
    aggregation-cycle count itself via :meth:`begin_cycle` so engines
    never need to know their position in the outer loop.  Each ``check_*``
    method increments :attr:`checks` (so tests can prove hooks actually
    ran) and raises :class:`~repro.errors.InvariantViolation` on breach.

    Parameters
    ----------
    rel_tol:
        Relative tolerance of the mass-conservation and agreement
        checks, scaled by the conserved quantity's magnitude.  Push-sum
        arithmetic (halving + summing) is exact in binary floating
        point; the tolerance absorbs only the segment-sum reordering of
        the vectorized kernels.
    """

    def __init__(self, *, rel_tol: float = 1e-9):
        if not rel_tol > 0:
            raise ValueError(f"rel_tol must be > 0, got {rel_tol}")
        self.rel_tol = float(rel_tol)
        #: number of invariant checks executed so far
        self.checks = 0
        #: 1-based cycle counter maintained by begin_cycle
        self.cycle = 0
        #: name of the engine currently driving checks
        self.engine = ""

    # -- lifecycle ---------------------------------------------------------

    def begin_cycle(self, engine: str) -> int:
        """Mark the start of an aggregation cycle on ``engine``."""
        self.cycle += 1
        self.engine = engine
        return self.cycle

    def _fail(
        self,
        invariant: str,
        message: str,
        *,
        step: Optional[int] = None,
        node: Optional[int] = None,
    ) -> None:
        raise InvariantViolation(
            message,
            invariant=invariant,
            engine=self.engine,
            cycle=self.cycle if self.cycle else None,
            step=step,
            node=node,
        )

    # -- checks ------------------------------------------------------------

    def check_finite(
        self, name: str, arr: np.ndarray, *, step: Optional[int] = None
    ) -> None:
        """All entries of ``arr`` are finite (no NaN/inf)."""
        self.checks += 1
        a = np.asarray(arr)
        if not np.all(np.isfinite(a)):
            bad = np.argwhere(~np.isfinite(a))
            node = int(bad[0][0]) if bad.size else None
            count = int(bad.shape[0])
            self._fail(
                "finite",
                f"{name} contains {count} NaN/inf entr{'y' if count == 1 else 'ies'}",
                step=step,
                node=node,
            )

    def check_nonnegative(
        self, name: str, arr: np.ndarray, *, step: Optional[int] = None
    ) -> None:
        """No entry of ``arr`` is negative (consensus mass w >= 0)."""
        self.checks += 1
        a = np.asarray(arr)
        # NaNs compare False against 0 and would slip through a `< 0`
        # scan; route them to check_finite's message instead.
        if a.size and not np.min(a) >= 0:
            if not np.all(np.isfinite(a)):
                self.check_finite(name, a, step=step)
            bad = np.argwhere(a < 0)
            node = int(bad[0][0]) if bad.size else None
            worst = float(np.min(a))
            self._fail(
                "nonnegative-mass",
                f"{name} has negative entries (min = {worst:.6g})",
                step=step,
                node=node,
            )

    def check_mass(
        self,
        name: str,
        total: float,
        expected: float,
        *,
        step: Optional[int] = None,
    ) -> None:
        """Conservation: ``total`` equals ``expected`` within tolerance."""
        self.checks += 1
        tol = self.rel_tol * max(abs(expected), 1.0)
        if not abs(total - expected) <= tol:
            self._fail(
                "mass-conservation",
                f"{name} drifted: |{total!r} - {expected!r}| = "
                f"{abs(total - expected):.6g} > tol {tol:.3g}",
                step=step,
            )

    def check_mass_bounded(
        self,
        name: str,
        total: float,
        ceiling: float,
        *,
        step: Optional[int] = None,
    ) -> None:
        """Lossy-transport form: mass may vanish but never appear.

        Message engines lose the mass carried by dropped messages and
        departed nodes, so equality cannot hold under fault injection —
        but the total can *never exceed* what the cycle started with.
        """
        self.checks += 1
        tol = self.rel_tol * max(abs(ceiling), 1.0)
        if not total <= ceiling + tol:
            self._fail(
                "mass-conservation",
                f"{name} increased: {total!r} > initial {ceiling!r} "
                f"(excess {total - ceiling:.6g}) — gossip created mass",
                step=step,
            )

    def check_allclose(
        self,
        name: str,
        arr: np.ndarray,
        expected: np.ndarray,
        *,
        step: Optional[int] = None,
    ) -> None:
        """Elementwise agreement within tolerance (structured all-reduce)."""
        self.checks += 1
        a = np.asarray(arr, dtype=np.float64)
        e = np.asarray(expected, dtype=np.float64)
        scale = float(np.max(np.abs(e))) if e.size else 1.0
        tol = self.rel_tol * max(scale, 1.0)
        diff = np.abs(a - e)
        if not np.all(diff <= tol):
            bad = np.argwhere(~(diff <= tol))
            node = int(bad[0][0]) if bad.size else None
            self._fail(
                "exact-agreement",
                f"{name} deviates from the exact reduction by "
                f"{float(np.max(diff)):.6g} (> tol {tol:.3g})",
                step=step,
                node=node,
            )

    def check_row_stochastic(
        self, row_sums: np.ndarray, *, where: str = "trust matrix", atol: float = 1e-8
    ) -> None:
        """Eq. 1 post-normalization: every row of ``S`` sums to 1."""
        self.checks += 1
        sums = np.asarray(row_sums, dtype=np.float64).ravel()
        bad = np.flatnonzero(~(np.abs(sums - 1.0) <= atol))
        if bad.size:
            i = int(bad[0])
            self._fail(
                "row-stochastic",
                f"{where} is not row-stochastic after normalization: "
                f"row {i} sums to {sums[i]!r} ({bad.size} bad row(s))",
                node=i,
            )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"InvariantSanitizer(rel_tol={self.rel_tol}, checks={self.checks}, "
            f"cycle={self.cycle}, engine={self.engine!r})"
        )


#: epoch value of an unleased ownership cell
_FREE = 0

#: pool slots per shard (X, W, out)
_SLOTS = 3


class ShardOwnershipGuard:
    """Shadow write-ownership epochs for a sharded shared workspace.

    The runtime twin of lint rule GT006: where the static rule proves
    that *visible* write sites stay inside the caller's shard slot,
    this guard catches the same race dynamically — a task writing a
    shard it was never leased, two tasks dispatched onto one shard, or
    the parent scribbling on pools an outstanding window still owns.

    The shadow state is one ``(shards, 3)`` int64 *epoch map* allocated
    on the workspace backend itself, so parent and attached worker
    processes observe the same cells through the manifest.  Each cell
    tracks one pool slot's lease through a three-state protocol:

    ========== ==========================================================
    cell value meaning
    ========== ==========================================================
    ``0``      free — the parent owns the slot between windows
    ``+t``     leased — the parent granted ticket ``t`` at dispatch
    ``-t``     claimed — the worker holding ticket ``t`` is writing
    ========== ==========================================================

    The parent :meth:`lease`\\ s every slot of a shard before submitting
    its window task (ticket ``t`` is unique per task), the worker
    :meth:`claim`\\ s them on entry, and the parent :meth:`collect`\\ s
    (frees) them after the future resolves.  Every transition checks the
    cell holds exactly the expected prior state, so *any* interleaving
    of overlapping writers trips one of the checks and raises
    :class:`~repro.errors.InvariantViolation` naming the shard, slot,
    and aggregation cycle.  :meth:`check_parent_write` is the hook
    :class:`~repro.gossip.memory.CsrPool` calls from ``load``/
    ``ensure``/``release`` so parent-side pool writes are confined to
    the free state.

    Checks are O(shards) per window against an int64 row the parent
    just touched — noise next to the SpGEMMs they guard.
    """

    def __init__(self, epochs: np.ndarray, *, engine: str = "") -> None:
        if epochs.ndim != 2 or epochs.shape[1] != _SLOTS:
            raise ValueError(
                f"epoch map must be (shards, {_SLOTS}), got {epochs.shape}"
            )
        #: the shared ``(shards, 3)`` epoch cells (attach-visible)
        self.epochs = epochs
        #: engine registry name, for violation context
        self.engine = engine
        #: 1-based aggregation cycle (maintained via :meth:`begin_cycle`)
        self.cycle = 0
        self._ticket = 0
        self._pool_slots: "dict[str, tuple[int, int]]" = {}

    @property
    def shards(self) -> int:
        """Number of shard rows in the epoch map."""
        return int(self.epochs.shape[0])

    def register_pool(self, label: str, shard: int, slot: int) -> None:
        """Bind a pool label to its ``(shard, slot)`` cell.

        Registered pools route their ``load``/``ensure``/``release``
        writes through :meth:`check_parent_write`; unregistered labels
        (the ``targets`` ring, mixing scratch) are not slot-tracked.
        """
        self._pool_slots[label] = (int(shard), int(slot))

    def begin_cycle(self, engine: str = "") -> int:
        """Start an aggregation cycle; all cells must be free."""
        self.cycle += 1
        if engine:
            self.engine = engine
        for shard in range(self.shards):
            for slot in range(_SLOTS):
                cur = int(self.epochs[shard, slot])
                if cur != _FREE:
                    self._fail(
                        f"cycle began with a stale lease (epoch {cur})",
                        shard=shard, slot=slot,
                    )
        return self.cycle

    def _fail(
        self,
        message: str,
        *,
        shard: int,
        slot: int,
        step: Optional[int] = None,
    ) -> None:
        raise InvariantViolation(
            message,
            invariant="shard-ownership",
            engine=self.engine,
            cycle=self.cycle if self.cycle else None,
            step=step,
            shard=shard,
            slot=slot,
        )

    # -- parent side --------------------------------------------------------

    def lease(self, shard: int, *, step: Optional[int] = None) -> int:
        """Grant a fresh ticket over every slot of ``shard``.

        Called by the parent immediately before submitting the shard's
        window task.  A cell that is not free means the shard map
        dispatched two tasks onto one shard — the race GT006 cannot see
        when the mapping itself is data-dependent.
        """
        self._ticket += 1
        ticket = self._ticket
        for slot in range(_SLOTS):
            cur = int(self.epochs[shard, slot])
            if cur != _FREE:
                self._fail(
                    f"overlapping dispatch: slot already leased "
                    f"(epoch {cur}, new ticket {ticket})",
                    shard=shard, slot=slot, step=step,
                )
            self.epochs[shard, slot] = ticket
        return ticket

    def collect(
        self, shard: int, ticket: int, *, step: Optional[int] = None
    ) -> None:
        """Retire ``ticket``'s lease after its future resolved.

        Every cell must sit in the claimed state ``-ticket`` — anything
        else means the task never ran against its lease (wrong shard
        argument) or a concurrent writer moved the cell.
        """
        for slot in range(_SLOTS):
            cur = int(self.epochs[shard, slot])
            if cur != -ticket:
                what = (
                    "was never claimed by its task"
                    if cur == ticket
                    else f"holds foreign epoch {cur}"
                )
                self._fail(
                    f"collect of ticket {ticket} found a slot that {what}",
                    shard=shard, slot=slot, step=step,
                )
            self.epochs[shard, slot] = _FREE

    def check_parent_write(
        self, label: str, *, what: str = "pool write"
    ) -> None:
        """Parent-side pool mutation hook: the slot must be free.

        Wired into :class:`~repro.gossip.memory.CsrPool` ``load``/
        ``ensure``/``release`` — a parent writing a pool while a worker
        window holds its lease is the same race from the other side.
        """
        loc = self._pool_slots.get(label)
        if loc is None:
            return
        shard, slot = loc
        cur = int(self.epochs[shard, slot])
        if cur != _FREE:
            self._fail(
                f"parent-side {what} on pool {label!r} while a worker "
                f"window holds its lease (epoch {cur})",
                shard=shard, slot=slot,
            )

    # -- worker side --------------------------------------------------------

    def claim(
        self, shard: int, ticket: int, *, step: Optional[int] = None
    ) -> None:
        """Worker entry: flip ``shard``'s cells from leased to claimed.

        A cell already claimed (``-ticket``) means another task holding
        the same lease got here first — the overlapping-write race
        itself.  Any other value means this task is writing a shard it
        was never leased.
        """
        for slot in range(_SLOTS):
            cur = int(self.epochs[shard, slot])
            if cur == -ticket:
                self._fail(
                    "overlapping write: slot already claimed by a "
                    f"concurrent task holding ticket {ticket}",
                    shard=shard, slot=slot, step=step,
                )
            if cur != ticket:
                self._fail(
                    f"task holding ticket {ticket} claims a slot it was "
                    f"never leased (epoch {cur})",
                    shard=shard, slot=slot, step=step,
                )
            self.epochs[shard, slot] = -ticket

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShardOwnershipGuard(shards={self.shards}, cycle={self.cycle}, "
            f"engine={self.engine!r})"
        )
