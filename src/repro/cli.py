"""Command-line interface: regenerate any paper table or figure.

Usage::

    gossiptrust list
    gossiptrust run fig3 [--quick] [--engine sync]
    gossiptrust run table3 --set n=500 --set repeats=2
    gossiptrust all --quick
    gossiptrust serve-sim --n 1000 --epochs 5

``--set key=value`` forwards typed overrides to the experiment runner
(ints, floats, and comma-separated tuples are auto-parsed).
``--engine NAME`` is shorthand for ``--set engine=NAME`` and selects
any engine registered with :func:`repro.gossip.factory.register_engine`.
``--workers N`` is shorthand for ``--set workers=N`` and fans the
experiment's sweep points over ``N`` processes (see
:mod:`repro.experiments.runner`); results are identical to serial runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.experiments.registry import list_experiments, run_experiment
from repro.utils.logging import configure

__all__ = ["main", "build_parser", "parse_override"]


def parse_override(text: str) -> tuple:
    """Parse ``key=value`` into a typed (key, value) pair.

    Values parse as int, then float, then comma-tuples of those, then
    plain strings.  ``n=500`` -> 500; ``gammas=0.0,0.2`` -> (0.0, 0.2);
    a trailing comma makes a one-element tuple (``sizes=100,`` -> (100,)),
    matching Python literal syntax.
    """
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"override must be key=value, got {text!r}")
    key, _, raw = text.partition("=")

    def scalar(tok: str):
        for cast in (int, float):
            try:
                return cast(tok)
            except ValueError:
                continue
        return tok

    if "," in raw:
        value: object = tuple(scalar(t) for t in raw.split(",") if t != "")
    else:
        value = scalar(raw)
    return key, value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="gossiptrust",
        description="GossipTrust reproduction: regenerate paper tables/figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    run_p.add_argument("--quick", action="store_true", help="smoke-test scale")
    run_p.add_argument(
        "--chart", action="store_true", help="append an ASCII chart of the series"
    )
    run_p.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help="cycle engine to run the experiment on "
        "(registered names; shorthand for --set engine=NAME)",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep-backed experiments "
        "(shorthand for --set workers=N; 1 = serial)",
    )
    run_p.add_argument(
        "--kernel",
        default=None,
        choices=["fast", "sparse", "legacy"],
        help="sync-engine step-loop kernel (shorthand for "
        "--set kernel=NAME; 'sparse' is the memory-bounded large-n path)",
    )
    run_p.add_argument(
        "--dtype",
        default=None,
        choices=["float64", "float32"],
        help="sync-engine buffer precision (shorthand for "
        "--set dtype=NAME; float32 halves workspace memory)",
    )
    run_p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="sparse-kernel column shard count (shorthand for "
        "--set shards=K; results are shard-count invariant)",
    )
    run_p.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes stepping sparse-kernel shards "
        "(shorthand for --set shard_workers=N; needs "
        "--set workspace_backend=shared or =memmap)",
    )
    run_p.add_argument(
        "--strategy",
        default=None,
        metavar="NAME",
        help="partner strategy for message-level engines "
        "(global | neighbors | hyparview | brahms; shorthand for "
        "--set strategy=NAME)",
    )
    run_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        type=parse_override,
        metavar="KEY=VALUE",
        help="override a runner keyword (repeatable)",
    )

    all_p = sub.add_parser("all", help="run every experiment in sequence")
    all_p.add_argument("--quick", action="store_true", help="smoke-test scale")

    serve_p = sub.add_parser(
        "serve-sim",
        help="simulate the long-lived reputation service "
        "(streaming ingest, warm re-aggregation, Bloom serving)",
    )
    serve_p.add_argument("--n", type=int, default=200, help="network size")
    serve_p.add_argument(
        "--epochs", type=int, default=5, help="measured ingest/query/aggregate epochs"
    )
    serve_p.add_argument(
        "--events", type=int, default=50, help="feedback events streamed per epoch"
    )
    serve_p.add_argument(
        "--queries", type=int, default=500, help="score lookups served per epoch"
    )
    serve_p.add_argument(
        "--dirty-fraction",
        type=float,
        default=0.01,
        help="fraction of rater rows the event stream touches per epoch",
    )
    serve_p.add_argument("--seed", type=int, default=0, help="root seed")
    return parser


def _render_serve_sim(report) -> str:
    """Text report of one service simulation."""
    from repro.metrics.reporting import TextTable

    epochs = TextTable(
        ["epoch", "dirty", "events", "cycles", "steps", "churn", "wall_s"],
        title=f"service epochs (n={report.config.n}, "
        f"warmup={report.warmup_epochs}, "
        f"power nodes {'stable' if report.power_nodes_stable else 'UNSTABLE'})",
    )
    for ep in report.epoch_reports:
        epochs.add_row(
            [
                ep.epoch,
                ep.dirty_rows,
                ep.events_absorbed,
                ep.cycles,
                ep.gossip_steps,
                ep.power_node_churn,
                ep.wall_time_s,
            ]
        )
    summary = TextTable(["metric", "value"], title="service summary")
    summary.add_row(["ingest events/s", report.ingest_events_per_s])
    summary.add_row(["queries/s", report.queries_per_s])
    summary.add_row(["mean staleness (events)", report.mean_staleness_events])
    summary.add_row(["max staleness (events)", report.max_staleness_events])
    summary.add_row(["warm epoch cycles (mean)", report.warm_cycles])
    summary.add_row(["cold scratch cycles", report.cold_cycles])
    summary.add_row(["warm wall s (mean)", report.warm_wall_s])
    summary.add_row(["cold wall s", report.cold_wall_s])
    summary.add_row(["wall speedup (x)", report.wall_speedup])
    summary.add_row(["step speedup (x)", report.step_speedup])
    summary.add_row(["warm vs cold vector error", report.vector_error])
    summary.add_row(["store compression (x)", report.store_compression])
    return epochs.render() + "\n\n" + summary.render()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    configure()
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for eid, desc in list_experiments().items():
            print(f"{eid:10s} {desc}")
        return 0
    if args.command == "run":
        overrides: Dict[str, object] = dict(args.overrides)
        if args.engine is not None:
            overrides["engine"] = args.engine
        if args.workers is not None:
            overrides["workers"] = args.workers
        if args.kernel is not None:
            overrides["kernel"] = args.kernel
        if args.dtype is not None:
            overrides["dtype"] = args.dtype
        if args.shards is not None:
            overrides["shards"] = args.shards
        if args.shard_workers is not None:
            overrides["shard_workers"] = args.shard_workers
        if args.strategy is not None:
            overrides["strategy"] = args.strategy
        result = run_experiment(args.experiment, quick=args.quick, **overrides)
        print(result.render(chart=args.chart))
        return 0
    if args.command == "all":
        for eid in list_experiments():
            result = run_experiment(eid, quick=args.quick)
            print(result.render())
            print()
        return 0
    if args.command == "serve-sim":
        from repro.service import ServeSimConfig, simulate_service

        report = simulate_service(
            ServeSimConfig(
                n=args.n,
                epochs=args.epochs,
                events_per_epoch=args.events,
                queries_per_epoch=args.queries,
                dirty_fraction=args.dirty_fraction,
                seed=args.seed,
            )
        )
        print(_render_serve_sim(report))
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
