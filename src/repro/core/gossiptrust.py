"""The GossipTrust system — gossiped global reputation aggregation.

Orchestrates the full loop of Fig. 1(b):

1. initialize ``V(0) = (1/n, ..., 1/n)``;
2. per aggregation cycle, run the push-sum gossip protocol until the
   epsilon criterion, yielding every node's estimate of ``S^T V(t)``;
3. apply greedy-factor mixing toward the round's (fixed) power nodes;
4. repeat until the average relative error between consecutive cycle
   vectors drops below delta;
5. select the next round's power nodes from the converged vector.

The gossip work is delegated to a pluggable engine — the vectorized
:class:`~repro.gossip.engine.SynchronousGossipEngine` by default, or the
message-level :class:`~repro.gossip.message_engine.MessageGossipEngine`
via :class:`MessageEngineAdapter` when fault injection matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Union

import numpy as np
from scipy import sparse

from repro.core.aggregation import ExactAggregation, exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.core.power_nodes import PowerNodeSelector
from repro.errors import ConvergenceError, ValidationError
from repro.gossip.convergence import CycleConvergenceDetector, average_relative_error
from repro.gossip.engine import GossipCycleResult, SynchronousGossipEngine
from repro.gossip.message_engine import MessageGossipEngine
from repro.trust.matrix import TrustMatrix
from repro.trust.pretrust import PretrustVector
from repro.types import ReputationVector
from repro.utils.logging import get_logger
from repro.utils.rng import RngStreams, SeedLike

__all__ = ["CycleEngine", "MessageEngineAdapter", "GossipTrustResult", "GossipTrust"]

_log = get_logger("core.gossiptrust")


class CycleEngine(Protocol):
    """Anything that can gossip one aggregation cycle."""

    def run_cycle(self, S: TrustMatrix, v: np.ndarray) -> GossipCycleResult:
        """Estimate ``S^T v`` by gossip; return the cycle outcome."""
        ...  # pragma: no cover


class MessageEngineAdapter:
    """Adapts :class:`MessageGossipEngine` to the :class:`CycleEngine` protocol.

    Extracts sparse rows from the trust matrix once (they are reused
    across cycles) and reshapes the message-level result into a
    :class:`GossipCycleResult`.
    """

    def __init__(self, engine: MessageGossipEngine):
        self.engine = engine
        self._rows_cache: Optional[List[Dict[int, float]]] = None
        self._rows_for: Optional[int] = None

    def _rows(self, S: TrustMatrix) -> List[Dict[int, float]]:
        if self._rows_cache is None or self._rows_for != id(S):
            csr = S.sparse()
            rows: List[Dict[int, float]] = []
            for i in range(S.n):
                start, end = csr.indptr[i], csr.indptr[i + 1]
                rows.append(
                    {
                        int(j): float(val)
                        for j, val in zip(csr.indices[start:end], csr.data[start:end])
                    }
                )
            self._rows_cache = rows
            self._rows_for = id(S)
        return self._rows_cache

    def run_cycle(self, S: TrustMatrix, v: np.ndarray) -> GossipCycleResult:
        res = self.engine.run_cycle(self._rows(S), v)
        return GossipCycleResult(
            v_next=res.v_next,
            exact=res.exact,
            steps=res.steps,
            gossip_error=res.gossip_error,
            converged=res.converged,
            mode="message",
            node_disagreement=float("nan"),
        )


@dataclass
class GossipTrustResult:
    """Result of a full GossipTrust aggregation run.

    ``vector`` is the converged gossiped global reputation; ``exact``
    fields reference the noise-free computation on the same matrix for
    error reporting.
    """

    vector: np.ndarray
    cycles: int
    converged: bool
    total_gossip_steps: int
    #: power nodes selected FROM this round's result (for the next round)
    power_nodes: FrozenSet[int]
    cycle_results: List[GossipCycleResult]
    #: average relative error of the final vector vs the exact reference
    aggregation_error: float
    #: mean per-cycle gossip error
    mean_gossip_error: float
    #: the exact reference run (same config, no gossip noise)
    exact_reference: ExactAggregation

    @property
    def steps_per_cycle(self) -> List[int]:
        """Gossip step count of each aggregation cycle."""
        return [r.steps for r in self.cycle_results]

    def reputation(self) -> ReputationVector:
        """The converged vector as a :class:`~repro.types.ReputationVector`."""
        return ReputationVector(
            scores={i: float(s) for i, s in enumerate(self.vector)},
            cycle=self.cycles,
        )


class GossipTrust:
    """The GossipTrust reputation system.

    Parameters
    ----------
    trust:
        The normalized local trust matrix ``S`` (or anything
        :class:`TrustMatrix` accepts via its constructors upstream).
    config:
        Design parameters; ``config.n`` must match the matrix.
    engine:
        Optional cycle engine; defaults to a
        :class:`SynchronousGossipEngine` seeded from ``config.seed``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.trust.matrix import TrustMatrix
    >>> from repro.core import GossipTrust, GossipTrustConfig
    >>> raw = np.array([[0, 3, 1], [2, 0, 2], [1, 1, 0]], dtype=float)
    >>> S = TrustMatrix.from_dense_raw(raw)
    >>> system = GossipTrust(S, GossipTrustConfig(n=3, alpha=0.0, seed=7))
    >>> result = system.run()
    >>> bool(result.converged)
    True
    """

    def __init__(
        self,
        trust: Union[TrustMatrix, np.ndarray, sparse.spmatrix],
        config: Optional[GossipTrustConfig] = None,
        *,
        engine: Optional[CycleEngine] = None,
        power_nodes: Optional[FrozenSet[int]] = None,
        rng: SeedLike = None,
    ):
        if isinstance(trust, TrustMatrix):
            self.S = trust
        elif sparse.issparse(trust):
            self.S = TrustMatrix(trust.tocsr())
        else:
            self.S = TrustMatrix(sparse.csr_matrix(np.asarray(trust, dtype=np.float64)))
        n = self.S.n
        self.config = config if config is not None else GossipTrustConfig(n=n)
        if self.config.n != n:
            raise ValidationError(
                f"config.n={self.config.n} does not match trust matrix n={n}"
            )
        streams = RngStreams(rng if rng is not None else self.config.seed)
        if engine is None:
            engine = SynchronousGossipEngine(
                n,
                epsilon=self.config.epsilon,
                mode=self.config.engine_mode,
                probe_columns=self.config.probe_columns,
                max_steps=self.config.max_gossip_steps,
                rng=streams.get("gossip"),
            )
        self.engine = engine
        self.selector = PowerNodeSelector(
            n, self.config.max_power_nodes if self.config.alpha > 0 else 0
        )
        #: power nodes carried into the *current* aggregation round;
        #: fixed while cycles run, re-selected when a round completes
        self.power_nodes: FrozenSet[int] = frozenset(power_nodes or ())
        self._mixing = PretrustVector(n, self.power_nodes)

    def set_power_nodes(self, power_nodes: FrozenSet[int]) -> None:
        """Install the power-node set for the next aggregation round."""
        self.power_nodes = frozenset(power_nodes)
        self._mixing = PretrustVector(self.config.n, self.power_nodes)

    def run(self, *, raise_on_budget: bool = True) -> GossipTrustResult:
        """Run one aggregation round (cycles to delta convergence).

        Power nodes stay fixed for the whole round (§3: they are
        identified "after each round of global reputation computation
        ... for the next round").  On completion the selector picks the
        next round's power nodes from the converged vector, installs
        them on this system, and reports them in the result.

        Raises
        ------
        ConvergenceError
            If ``max_cycles`` is exhausted and ``raise_on_budget`` is
            True.
        """
        cfg = self.config
        n = cfg.n
        detector = CycleConvergenceDetector(cfg.delta)
        v = np.full(n, 1.0 / n)
        detector.update(v)
        cycle_results: List[GossipCycleResult] = []
        converged = False
        cycles = 0
        for cycles in range(1, cfg.max_cycles + 1):
            res = self.engine.run_cycle(self.S, v)
            v_new = res.v_next
            if cfg.alpha > 0:
                v_new = self._mixing.mix(v_new, cfg.alpha)
            # Gossip noise can leave the vector sum slightly off 1;
            # renormalize so cycles compose as probability vectors.
            total = v_new.sum()
            if total > 0:
                v_new = v_new / total
            cycle_results.append(res)
            _log.debug(
                "cycle %d: %d gossip steps, gossip_error=%.3g",
                cycles,
                res.steps,
                res.gossip_error,
            )
            if detector.update(v_new):
                v = v_new
                converged = True
                break
            v = v_new
        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"GossipTrust did not converge in {cfg.max_cycles} cycles "
                f"(delta={cfg.delta})",
                steps=cfg.max_cycles,
                residual=detector.last_residual,
            )
        exact = exact_global_reputation(
            self.S, cfg, power_nodes=self.power_nodes, raise_on_budget=False
        )
        next_power = self.selector.select(v)
        self.set_power_nodes(next_power)
        gossip_errors = [r.gossip_error for r in cycle_results]
        return GossipTrustResult(
            vector=v,
            cycles=cycles,
            converged=converged,
            total_gossip_steps=sum(r.steps for r in cycle_results),
            power_nodes=next_power,
            cycle_results=cycle_results,
            aggregation_error=average_relative_error(v, exact.vector),
            mean_gossip_error=float(np.mean(gossip_errors)) if gossip_errors else 0.0,
            exact_reference=exact,
        )
