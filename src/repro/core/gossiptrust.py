"""The GossipTrust system — gossiped global reputation aggregation.

Orchestrates the full loop of Fig. 1(b):

1. initialize ``V(0) = (1/n, ..., 1/n)``;
2. per aggregation cycle, run the gossip engine until its termination
   criterion, yielding every node's estimate of ``S^T V(t)``;
3. apply greedy-factor mixing toward the round's (fixed) power nodes;
4. repeat until the average relative error between consecutive cycle
   vectors drops below delta;
5. select the next round's power nodes from the converged vector.

The gossip work is delegated to a pluggable
:class:`~repro.gossip.base.CycleEngine` built by
:func:`~repro.gossip.factory.make_engine` from ``config.engine`` —
the vectorized ``"sync"`` engine by default, the message-level
``"message"``/``"async"`` engines when fault injection matters, or the
DHT-ordered ``"structured"`` all-reduce.  Every cycle is recorded in a
:class:`~repro.metrics.telemetry.CycleTelemetry` (steps, messages,
mass loss, wall time), and an ``on_cycle`` callback exposes the stream
to callers as it happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Union

import numpy as np
from scipy import sparse

from repro.core.aggregation import ExactAggregation, exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.core.power_nodes import PowerNodeSelector
from repro.errors import ConvergenceError, ValidationError
from repro.gossip.base import CycleEngine, GossipCycleResult
from repro.gossip.convergence import CycleConvergenceDetector, average_relative_error
from repro.gossip.factory import make_engine
from repro.metrics.telemetry import CycleRecord, CycleTelemetry, Stopwatch
from repro.trust.matrix import TrustMatrix
from repro.trust.pretrust import PretrustVector
from repro.types import ReputationVector
from repro.utils.logging import get_logger
from repro.utils.rng import RngStreams, SeedLike

__all__ = ["GossipTrustResult", "GossipTrust"]

_log = get_logger("core.gossiptrust")


@dataclass
class GossipTrustResult:
    """Result of a full GossipTrust aggregation run.

    ``vector`` is the converged gossiped global reputation.  When the
    run computed the exact-aggregation oracle (``compute_reference``),
    ``aggregation_error``/``exact_reference`` report the gossip noise
    against it; production runs that skip the oracle leave them
    ``None``.

    Results are *versioned*: ``epoch`` is the caller-supplied service
    epoch the run belongs to (0 for standalone runs) and
    ``warm_started`` records whether the run iterated from a previous
    reputation vector instead of uniform — together they are the
    staleness stamp a serving layer attaches to every score it hands
    out.
    """

    vector: np.ndarray
    cycles: int
    converged: bool
    total_gossip_steps: int
    #: power nodes selected FROM this round's result (for the next round)
    power_nodes: FrozenSet[int]
    cycle_results: List[GossipCycleResult]
    #: mean per-cycle gossip error
    mean_gossip_error: float
    #: average relative error of the final vector vs the exact reference
    #: (None when the oracle was skipped)
    aggregation_error: Optional[float] = None
    #: the exact reference run (same config, no gossip noise; None when
    #: the oracle was skipped)
    exact_reference: Optional[ExactAggregation] = None
    #: per-cycle telemetry recorded during the run
    telemetry: Optional[CycleTelemetry] = None
    #: service epoch this run computed (0 for standalone runs)
    epoch: int = 0
    #: whether the run warm-started from a previous reputation vector
    warm_started: bool = False

    @property
    def steps_per_cycle(self) -> List[int]:
        """Gossip step count of each aggregation cycle."""
        return [r.steps for r in self.cycle_results]

    def reputation(self) -> ReputationVector:
        """The converged vector as a :class:`~repro.types.ReputationVector`."""
        return ReputationVector(
            scores={i: float(s) for i, s in enumerate(self.vector)},
            cycle=self.cycles,
        )


class GossipTrust:
    """The GossipTrust reputation system.

    Parameters
    ----------
    trust:
        The normalized local trust matrix ``S`` (or anything
        :class:`TrustMatrix` accepts via its constructors upstream).
    config:
        Design parameters; ``config.n`` must match the matrix.
    engine:
        Optional cycle engine — a ready :class:`CycleEngine` instance,
        a registered engine name, or ``None`` to build ``config.engine``
        via :func:`make_engine`.

    Example
    -------
    >>> import numpy as np
    >>> from repro.trust.matrix import TrustMatrix
    >>> from repro.core import GossipTrust, GossipTrustConfig
    >>> raw = np.array([[0, 3, 1], [2, 0, 2], [1, 1, 0]], dtype=float)
    >>> S = TrustMatrix.from_dense_raw(raw)
    >>> system = GossipTrust(S, GossipTrustConfig(n=3, alpha=0.0, seed=7))
    >>> result = system.run()
    >>> bool(result.converged)
    True
    """

    def __init__(
        self,
        trust: Union[TrustMatrix, np.ndarray, sparse.spmatrix],
        config: Optional[GossipTrustConfig] = None,
        *,
        engine: Optional[Union[CycleEngine, str]] = None,
        power_nodes: Optional[FrozenSet[int]] = None,
        rng: SeedLike = None,
    ) -> None:
        if isinstance(trust, TrustMatrix):
            self.S = trust
        elif sparse.issparse(trust):
            self.S = TrustMatrix(trust.tocsr())
        else:
            self.S = TrustMatrix(sparse.csr_matrix(np.asarray(trust, dtype=np.float64)))
        n = self.S.n
        self.config = config if config is not None else GossipTrustConfig(n=n)
        if self.config.n != n:
            raise ValidationError(
                f"config.n={self.config.n} does not match trust matrix n={n}"
            )
        streams = RngStreams(rng if rng is not None else self.config.seed)
        if engine is None or isinstance(engine, str):
            engine = make_engine(
                engine if engine is not None else self.config.engine,
                self.config,
                rng=streams,
            )
        self.engine = engine
        self.selector = PowerNodeSelector(
            n, self.config.max_power_nodes if self.config.alpha > 0 else 0
        )
        #: power nodes carried into the *current* aggregation round;
        #: fixed while cycles run, re-selected when a round completes
        self.power_nodes: FrozenSet[int] = frozenset(power_nodes or ())
        self._mixing = PretrustVector(n, self.power_nodes)

    def set_power_nodes(self, power_nodes: FrozenSet[int]) -> None:
        """Install the power-node set for the next aggregation round."""
        self.power_nodes = frozenset(power_nodes)
        self._mixing = PretrustVector(self.config.n, self.power_nodes)

    def run(
        self,
        *,
        v0: Optional[np.ndarray] = None,
        epoch: int = 0,
        raise_on_budget: bool = True,
        compute_reference: Optional[bool] = None,
        on_cycle: Optional[Callable[[CycleRecord], None]] = None,
        telemetry: Optional[CycleTelemetry] = None,
    ) -> GossipTrustResult:
        """Run one aggregation round (cycles to delta convergence).

        Power nodes stay fixed for the whole round (§3: they are
        identified "after each round of global reputation computation
        ... for the next round").  On completion the selector picks the
        next round's power nodes from the converged vector, installs
        them on this system, and reports them in the result.

        Parameters
        ----------
        v0:
            Warm-start reputation vector (normalized internally).  The
            paper initializes every round at uniform ``1/n``; a
            long-lived service instead seeds the round with the previous
            epoch's converged vector, so a near-converged network (few
            trust rows changed) re-converges in far fewer cycles —
            iterating ``V(t+1) = S^T V(t)`` from a point already near
            the stationary distribution.  ``None`` keeps the paper's
            uniform cold start.
        epoch:
            Version stamp copied into the result (see
            :class:`GossipTrustResult`); purely bookkeeping.
        raise_on_budget:
            Raise :class:`ConvergenceError` if ``max_cycles`` is
            exhausted.
        compute_reference:
            Compute the exact-aggregation oracle for error reporting
            (O(n * cycles) extra work).  ``None`` uses
            ``config.compute_reference``; ``False`` leaves
            ``aggregation_error``/``exact_reference`` as ``None`` and
            performs no call into :mod:`repro.core.aggregation`.
        on_cycle:
            Callback invoked with a
            :class:`~repro.metrics.telemetry.CycleRecord` after every
            cycle — a lightweight hook for progress display or custom
            metrics.
        telemetry:
            Recorder to append to; a fresh
            :class:`~repro.metrics.telemetry.CycleTelemetry` is created
            when omitted.  Attached to the result either way.
        """
        cfg = self.config
        n = cfg.n
        detector = CycleConvergenceDetector(cfg.delta)
        recorder = telemetry if telemetry is not None else CycleTelemetry()
        warm_started = v0 is not None
        if v0 is None:
            v = np.full(n, 1.0 / n)
        else:
            v = np.asarray(v0, dtype=np.float64).copy()
            if v.ndim != 1 or v.size != n:
                raise ValidationError(
                    f"v0 must be a length-{n} vector, got shape {v.shape}"
                )
            if np.any(v < 0) or not np.all(np.isfinite(v)):
                raise ValidationError("v0 must be finite and non-negative")
            total0 = v.sum()
            if not total0 > 0:
                raise ValidationError("v0 must carry positive reputation mass")
            v /= total0
        detector.update(v)
        cycle_results: List[GossipCycleResult] = []
        converged = False
        cycles = 0
        for cycles in range(1, cfg.max_cycles + 1):
            watch = Stopwatch()
            res = self.engine.run_cycle(self.S, v)
            wall = watch.elapsed()
            v_new = res.v_next
            if cfg.alpha > 0:
                v_new = self._mixing.mix(v_new, cfg.alpha)
            # Gossip noise can leave the vector sum slightly off 1;
            # renormalize so cycles compose as probability vectors.  A
            # non-positive sum means the cycle destroyed all reputation
            # mass (every later cycle would iterate on a zero vector),
            # so fail loudly naming the cycle instead of silently
            # skipping renormalization.
            total = v_new.sum()
            if not total > 0:
                raise ConvergenceError(
                    f"cycle {cycles} produced a non-positive reputation mass "
                    f"(sum={total!r}); gossip lost all mass — check fault "
                    f"rates and engine configuration",
                    steps=cycles,
                    residual=float(total),
                )
            v_new = v_new / total
            cycle_results.append(res)
            record = recorder.record(cycles, res, wall_time=wall)
            if on_cycle is not None:
                on_cycle(record)
            _log.debug(
                "cycle %d: %d gossip steps, gossip_error=%.3g",
                cycles,
                res.steps,
                res.gossip_error,
            )
            if detector.update(v_new):
                v = v_new
                converged = True
                break
            v = v_new
        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"GossipTrust did not converge in {cfg.max_cycles} cycles "
                f"(delta={cfg.delta})",
                steps=cfg.max_cycles,
                residual=detector.last_residual,
            )
        if compute_reference is None:
            compute_reference = cfg.compute_reference
        exact: Optional[ExactAggregation] = None
        aggregation_error: Optional[float] = None
        if compute_reference:
            exact = exact_global_reputation(
                self.S, cfg, power_nodes=self.power_nodes, raise_on_budget=False
            )
            aggregation_error = average_relative_error(v, exact.vector)
        next_power = self.selector.select(v)
        self.set_power_nodes(next_power)
        gossip_errors = [r.gossip_error for r in cycle_results]
        return GossipTrustResult(
            vector=v,
            cycles=cycles,
            converged=converged,
            total_gossip_steps=sum(r.steps for r in cycle_results),
            power_nodes=next_power,
            cycle_results=cycle_results,
            mean_gossip_error=float(np.mean(gossip_errors)) if gossip_errors else 0.0,
            aggregation_error=aggregation_error,
            exact_reference=exact,
            telemetry=recorder,
            epoch=int(epoch),
            warm_started=warm_started,
        )
