"""Exact (noise-free) reputation aggregation — the ground-truth reference.

Runs the same cycle structure as GossipTrust — Eq. 2 matrix-vector
products, greedy-factor mixing, dynamic power-node re-selection, delta
convergence — but with *exact* products instead of gossiped estimates.
The result is the "calculated" global reputation ``v_i`` of Eq. 8
against which gossiped scores ``u_i`` are measured, and doubles as the
centralized baseline for the accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Union

import numpy as np
from scipy import sparse

from repro.core.config import GossipTrustConfig
from repro.core.power_nodes import PowerNodeSelector
from repro.errors import ConvergenceError
from repro.gossip.convergence import CycleConvergenceDetector
from repro.trust.matrix import TrustMatrix
from repro.trust.pretrust import PretrustVector

__all__ = ["ExactAggregation", "exact_global_reputation"]


@dataclass
class ExactAggregation:
    """Result of an exact aggregation run."""

    #: converged global reputation vector
    vector: np.ndarray
    #: aggregation cycles executed (d in the paper)
    cycles: int
    #: whether the delta criterion fired within the cycle budget
    converged: bool
    #: power nodes selected FROM this result, for the next update round
    power_nodes: FrozenSet[int]
    #: residual (average relative error) at the last cycle
    residual: float
    #: per-cycle vectors, index 0 is V(1) (kept for convergence studies)
    trajectory: List[np.ndarray]


def exact_global_reputation(
    S: Union[TrustMatrix, sparse.spmatrix, np.ndarray],
    config: Optional[GossipTrustConfig] = None,
    *,
    power_nodes: Optional[FrozenSet[int]] = None,
    record_trajectory: bool = False,
    raise_on_budget: bool = True,
) -> ExactAggregation:
    """Iterate ``V <- (1-alpha) S^T V + alpha P`` exactly until delta.

    ``P`` is the distribution over ``power_nodes``, *fixed for the whole
    aggregation* — the paper selects power nodes "after each round of
    global reputation computation ... for the next round of reputation
    updating" (§3), i.e. between aggregations, never mid-aggregation.
    The returned ``power_nodes`` field holds the *new* selection derived
    from the converged vector, ready for the next round.  With
    ``alpha = 0`` this is plain power iteration on ``S^T`` and converges
    to the principal eigenvector.

    Parameters
    ----------
    S:
        The normalized trust matrix (any accepted form).
    config:
        Parameters (n must match S); defaults to
        ``GossipTrustConfig(n=S.n)`` with paper defaults otherwise.
    power_nodes:
        Power nodes carried over from the previous aggregation round
        (``None`` or empty: ``P`` degrades to uniform).
    record_trajectory:
        Keep every intermediate vector (memory: cycles x n).
    raise_on_budget:
        Raise :class:`ConvergenceError` when ``max_cycles`` is exhausted.
    """
    if isinstance(S, TrustMatrix):
        mat = S.sparse()
    elif sparse.issparse(S):
        mat = S.tocsr()
    else:
        mat = sparse.csr_matrix(np.asarray(S, dtype=np.float64))
    n = mat.shape[0]
    if config is None:
        config = GossipTrustConfig(n=n)
    if config.n != n:
        config = config.with_updates(n=n)

    ST = mat.T.tocsr()
    selector = PowerNodeSelector(n, config.max_power_nodes if config.alpha > 0 else 0)
    mixing = PretrustVector(n, power_nodes or ())
    detector = CycleConvergenceDetector(config.delta)
    v = np.full(n, 1.0 / n)
    detector.update(v)  # V(0) is the comparison base for cycle 1
    trajectory: List[np.ndarray] = []
    converged = False
    cycles = 0
    for cycles in range(1, config.max_cycles + 1):
        v_new = ST @ v
        if config.alpha > 0:
            v_new = mixing.mix(v_new, config.alpha)
        if record_trajectory:
            trajectory.append(v_new.copy())
        if detector.update(v_new):
            v = v_new
            converged = True
            break
        v = v_new
    if not converged and raise_on_budget:
        raise ConvergenceError(
            f"exact aggregation did not converge in {config.max_cycles} cycles "
            f"(delta={config.delta})",
            steps=config.max_cycles,
            residual=detector.last_residual,
        )
    next_power = selector.select(v)
    return ExactAggregation(
        vector=v,
        cycles=cycles,
        converged=converged,
        power_nodes=next_power,
        residual=detector.last_residual,
        trajectory=trajectory,
    )
