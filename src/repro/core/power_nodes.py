"""Dynamic power-node selection.

"GossipTrust will identify power nodes for the next round of reputation
updating" (§3); "the power nodes are dynamically chosen after each
reputation aggregation" (§2).  Power nodes are simply the most reputable
peers of the moment — the PowerTrust insight being that feedback in real
systems is power-law distributed, so a small head of nodes carries most
of the system's trust information and is worth weighting.

The selector ranks by current reputation, takes the top ``q``, and can
optionally exclude known-departed peers (a power node that left the
overlay must not keep collecting greedy mass).
"""

from __future__ import annotations

from typing import FrozenSet, Optional

import numpy as np

from repro.errors import ValidationError
from repro.trust.pretrust import PretrustVector

__all__ = ["PowerNodeSelector"]


class PowerNodeSelector:
    """Selects the top-``q`` reputation nodes as power nodes.

    Parameters
    ----------
    n:
        Total number of peers.
    max_power_nodes:
        The cap ``q`` (Table 2: 1% of n).  Zero disables selection —
        :meth:`select` then returns an empty set and the corresponding
        pretrust vector degrades to uniform.
    """

    def __init__(self, n: int, max_power_nodes: int) -> None:
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        if max_power_nodes < 0 or max_power_nodes > n:
            raise ValidationError(
                f"max_power_nodes must be in [0, {n}], got {max_power_nodes}"
            )
        self.n = int(n)
        self.q = int(max_power_nodes)
        self._current: FrozenSet[int] = frozenset()
        #: how many selection rounds have run
        self.rounds = 0
        #: how many nodes changed between the last two selections
        self.last_turnover = 0

    @property
    def current(self) -> FrozenSet[int]:
        """Power nodes from the latest selection round."""
        return self._current

    def select(
        self, reputation: np.ndarray, *, alive: Optional[np.ndarray] = None
    ) -> FrozenSet[int]:
        """Re-select power nodes from a reputation vector.

        Parameters
        ----------
        reputation:
            Current global reputation estimates, length n.
        alive:
            Optional boolean liveness mask; departed peers are never
            selected.

        Returns
        -------
        frozenset of node ids (size <= q).
        """
        v = np.asarray(reputation, dtype=np.float64)
        if v.shape != (self.n,):
            raise ValidationError(f"reputation must have shape ({self.n},)")
        if self.q == 0:
            new: FrozenSet[int] = frozenset()
        else:
            scores = v.copy()
            if alive is not None:
                mask = np.asarray(alive, dtype=bool)
                if mask.shape != (self.n,):
                    raise ValidationError(f"alive mask must have shape ({self.n},)")
                scores = np.where(mask, scores, -np.inf)
            # argsort is ascending; ties broken by lower node id for
            # determinism (stable sort on (-score, id)).
            order = np.lexsort((np.arange(self.n), -scores))
            top = [int(i) for i in order[: self.q] if np.isfinite(scores[i])]
            new = frozenset(top)
        self.last_turnover = len(new.symmetric_difference(self._current))
        self._current = new
        self.rounds += 1
        return new

    def pretrust(self) -> PretrustVector:
        """The mixing distribution ``P`` over the current power nodes."""
        return PretrustVector(self.n, self._current)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PowerNodeSelector(n={self.n}, q={self.q}, current={len(self._current)})"
