"""The GossipTrust core: cycle orchestration, power nodes, configuration.

This package ties the substrates together into the system of Fig. 1:

* :class:`~repro.core.config.GossipTrustConfig` — all design parameters
  of Table 2 with the paper's defaults.
* :class:`~repro.core.power_nodes.PowerNodeSelector` — dynamic selection
  of the top-reputation nodes after each aggregation round.
* :mod:`repro.core.aggregation` — the exact iterative reference
  (noise-free Eq. 2 with greedy-factor mixing) used as ground truth.
* :class:`~repro.core.gossiptrust.GossipTrust` — the full system: runs
  gossiped aggregation cycles until the delta criterion, re-selecting
  power nodes each round.
"""

from repro.core.aggregation import ExactAggregation, exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust, GossipTrustResult
from repro.core.power_nodes import PowerNodeSelector

__all__ = [
    "GossipTrustConfig",
    "PowerNodeSelector",
    "ExactAggregation",
    "exact_global_reputation",
    "GossipTrust",
    "GossipTrustResult",
]
