"""GossipTrust configuration — the design parameters of Table 2.

Defaults are the paper's (Table 2): n = 1000 peers, greedy factor
``alpha = 0.15``, up to ``q = 1%`` power nodes, aggregation threshold
``delta = 1e-3``, gossip threshold ``epsilon = 1e-4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.analysis.sanitizer import sanitize_enabled
from repro.errors import ConfigurationError

__all__ = ["GossipTrustConfig"]


@dataclass(frozen=True)
class GossipTrustConfig:
    """Immutable parameter set for a GossipTrust deployment.

    Attributes
    ----------
    n:
        Number of peers in the P2P network.
    alpha:
        Greedy factor — weight of the power-node distribution in the
        per-cycle mixing ``V <- (1-alpha) S^T V + alpha P``.  ``0``
        disables power-node leverage entirely.
    power_node_fraction:
        Max fraction of nodes selected as power nodes each round
        (Table 2: ``q`` = 1% of n).
    delta:
        Global aggregation convergence threshold (average relative error
        between consecutive cycle vectors).
    epsilon:
        Gossip convergence threshold within a cycle (max per-node
        estimate change per step).
    max_cycles:
        Aggregation-cycle budget (the paper proves d <= ceil(log_b delta),
        a small number; the budget is a guard, not a tuning knob).
    max_gossip_steps:
        Per-cycle gossip step budget.
    engine:
        Registered gossip-engine name driving the aggregation cycles
        (``"sync"``, ``"message"``, ``"async"``, ``"structured"``, or
        any name added via
        :func:`~repro.gossip.factory.register_engine`).
    engine_mode:
        ``"auto"``, ``"full"``, or ``"probe"`` for the vectorized engine.
    probe_columns:
        Probe width when the vectorized engine runs in probe mode.
    check_every:
        Convergence-check cadence of the vectorized engine: the O(n*p)
        estimate/residual pass runs every ``check_every`` gossip steps.
    densify_threshold:
        Density fraction at which the vectorized engine's fast kernel
        switches its state from CSR to dense buffers (0 = immediately).
    kernel:
        Step-loop kernel of the vectorized engine: ``"fast"`` (dense
        segment-sum, the default), ``"sparse"`` (the memory-bounded
        pooled-SpGEMM path for large n), or ``"legacy"`` (the reference
        implementation).
    dtype:
        Vectorized-engine buffer precision, ``"float64"`` (default) or
        ``"float32"`` (halves workspace memory; scores agree to
        ~steps * eps32 relative — see the engine docs).
    block_rows:
        Tile height of the sparse kernel's blocked estimate/residual
        pass; 0 (default) uses the ~1 MiB cache-block formula.
    shards:
        Column shard count of the sparse kernel: the probe columns
        split into this many independently stepped CSR pool triples.
        Results are shard-count invariant; the engine auto-raises the
        count when ``n * probe_columns`` would overflow the pools'
        int32 index guard.  Only meaningful with ``kernel="sparse"``.
    shard_workers:
        Worker processes stepping sparse-kernel shards concurrently.
        ``> 1`` requires a ``"shared"`` or ``"memmap"``
        ``workspace_backend`` (workers attach the pools by manifest).
        Results are identical to serial stepping.
    workspace_backend:
        Where the vectorized engine's workspace buffers physically
        live: ``"private"`` (default, ordinary heap), ``"shared"``
        (POSIX shared-memory segments other processes can attach), or
        ``"memmap"`` (file-backed maps the OS can evict).
    partner_strategy:
        How the message-level engines pick gossip partners: a name from
        the :mod:`~repro.gossip.partnering` registry (``"global"``,
        ``"neighbors"``, ``"hyparview"``, ``"brahms"``).  The default
        ``"global"`` is the omniscient-membership oracle the paper's
        analysis assumes; the partial-view protocols maintain realistic
        membership over the simulated transport.  Vectorized engines
        (``sync``/``structured``) ignore it.
    mass_restore_budget:
        Self-healing threshold on per-cycle ``mass_lost_fraction`` for
        the message-level engines; ``None`` (default) disables the
        mass-restoration guard.
    compute_reference:
        Whether :meth:`GossipTrust.run` computes the exact-aggregation
        oracle for error reporting.  The oracle costs O(n * cycles)
        dense products; production-scale runs set this False and get
        ``aggregation_error``/``exact_reference`` as ``None``.
    seed:
        Root RNG seed (None = fresh entropy).
    sanitize:
        Arm the runtime invariant sanitizer on every engine built from
        this config (push-sum mass conservation, ``w >= 0``, finiteness
        — see :mod:`repro.analysis.sanitizer`).  Defaults to the
        ``REPRO_SANITIZE`` environment flag, so a CI soak run can arm a
        whole process without touching call sites.
    """

    n: int = 1000
    alpha: float = 0.15
    power_node_fraction: float = 0.01
    delta: float = 1e-3
    epsilon: float = 1e-4
    max_cycles: int = 200
    max_gossip_steps: int = 5000
    engine: str = "sync"
    engine_mode: str = "auto"
    probe_columns: int = 64
    check_every: int = 8
    densify_threshold: float = 0.25
    kernel: str = "fast"
    dtype: str = "float64"
    block_rows: int = 0
    shards: int = 1
    shard_workers: int = 1
    workspace_backend: str = "private"
    partner_strategy: str = "global"
    mass_restore_budget: Optional[float] = None
    compute_reference: bool = True
    seed: Optional[int] = None
    sanitize: bool = field(default_factory=sanitize_enabled)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if not 0.0 <= self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1), got {self.alpha}")
        if not 0.0 <= self.power_node_fraction <= 1.0:
            raise ConfigurationError(
                f"power_node_fraction must be in [0, 1], got {self.power_node_fraction}"
            )
        if not self.delta > 0:
            raise ConfigurationError(f"delta must be > 0, got {self.delta}")
        if not self.epsilon > 0:
            raise ConfigurationError(f"epsilon must be > 0, got {self.epsilon}")
        if self.max_cycles < 1:
            raise ConfigurationError(f"max_cycles must be >= 1, got {self.max_cycles}")
        if self.max_gossip_steps < 1:
            raise ConfigurationError(
                f"max_gossip_steps must be >= 1, got {self.max_gossip_steps}"
            )
        if self.engine_mode not in ("auto", "full", "probe"):
            raise ConfigurationError(f"unknown engine_mode {self.engine_mode!r}")
        if not self.engine or not isinstance(self.engine, str):
            raise ConfigurationError(
                f"engine must be a non-empty registry name, got {self.engine!r}"
            )
        # Validate against the live registry (imported lazily: gossip
        # modules must stay importable without the core package).
        from repro.gossip.factory import engine_names

        if self.engine not in engine_names():
            known = ", ".join(engine_names())
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; registered: {known}"
            )
        if self.probe_columns < 1:
            raise ConfigurationError(
                f"probe_columns must be >= 1, got {self.probe_columns}"
            )
        if self.check_every < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {self.check_every}"
            )
        if not 0.0 <= self.densify_threshold <= 1.0:
            raise ConfigurationError(
                f"densify_threshold must be in [0, 1], got {self.densify_threshold}"
            )
        if self.kernel not in ("fast", "sparse", "legacy"):
            raise ConfigurationError(f"unknown kernel {self.kernel!r}")
        if self.dtype not in ("float64", "float32"):
            raise ConfigurationError(f"unknown dtype {self.dtype!r}")
        if self.kernel == "legacy" and self.dtype != "float64":
            raise ConfigurationError("kernel='legacy' supports only dtype='float64'")
        if self.block_rows < 0:
            raise ConfigurationError(
                f"block_rows must be >= 0, got {self.block_rows}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.shard_workers < 1:
            raise ConfigurationError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )
        if self.kernel != "sparse" and (self.shards != 1 or self.shard_workers != 1):
            raise ConfigurationError(
                "shards/shard_workers apply only to kernel='sparse' "
                f"(got kernel={self.kernel!r})"
            )
        if self.workspace_backend not in ("private", "shared", "memmap"):
            raise ConfigurationError(
                f"unknown workspace_backend {self.workspace_backend!r}"
            )
        # Same lazy-registry pattern as the engine check above.
        from repro.gossip.partnering import strategy_names

        if self.partner_strategy not in strategy_names():
            known = ", ".join(strategy_names())
            raise ConfigurationError(
                f"unknown partner_strategy {self.partner_strategy!r}; "
                f"registered: {known}"
            )
        if self.mass_restore_budget is not None and not (
            0.0 < self.mass_restore_budget < 1.0
        ):
            raise ConfigurationError(
                f"mass_restore_budget must be in (0, 1) or None, "
                f"got {self.mass_restore_budget}"
            )
        if self.shard_workers > 1 and self.workspace_backend == "private":
            raise ConfigurationError(
                "shard_workers > 1 needs workspace_backend='shared' or "
                "'memmap' (worker processes attach the pools by manifest)"
            )

    @property
    def max_power_nodes(self) -> int:
        """``q`` — the power-node count cap (at least 1 when alpha > 0)."""
        q = int(self.n * self.power_node_fraction)
        if self.alpha > 0:
            return max(1, q)
        return q

    def with_updates(self, **changes: object) -> "GossipTrustConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]
