"""Object (file-version) reputation — the §7 poisoning-defense extension.

§7: "With the help of object reputation, a client can validate the
authenticity of an object before initiating parallel file download from
multiple peers."  Peer reputation rates *who* serves; object reputation
rates *what* is served — the defense against poisoning attacks where
popular files circulate in corrupted versions.

Model: each file exists in several *versions* (one genuine, the rest
poisoned).  After every download the requester votes on the version it
received (authentic / inauthentic as experienced); votes are weighted
by the voter's current *peer* reputation, so a horde of low-reputation
liars cannot outvote a few reputable peers.  A version's object score
is the Laplace-smoothed weighted fraction of authentic votes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.types import TransactionOutcome
from repro.utils.validation import check_positive

__all__ = ["VersionScore", "ObjectReputation"]


@dataclass(frozen=True)
class VersionScore:
    """Score snapshot of one file version."""

    file_rank: int
    version: int
    score: float
    weighted_votes: float


class ObjectReputation:
    """Per-(file, version) authenticity scores from weighted votes.

    Parameters
    ----------
    n_files:
        Catalog size (1-based popularity ranks, like the catalog).
    versions_per_file:
        Version ids run ``0 .. versions_per_file - 1`` for every file.
    prior_weight:
        Laplace smoothing mass; an unvoted version scores the neutral
        ``prior`` below.
    prior:
        Prior authenticity belief for unseen versions.
    """

    def __init__(
        self,
        n_files: int,
        versions_per_file: int = 3,
        *,
        prior_weight: float = 1.0,
        prior: float = 0.5,
    ):
        if n_files < 1:
            raise ValidationError(f"n_files must be >= 1, got {n_files}")
        if versions_per_file < 1:
            raise ValidationError(
                f"versions_per_file must be >= 1, got {versions_per_file}"
            )
        check_positive("prior_weight", prior_weight)
        if not 0.0 <= prior <= 1.0:
            raise ValidationError(f"prior must be in [0, 1], got {prior}")
        self.n_files = int(n_files)
        self.versions_per_file = int(versions_per_file)
        self.prior_weight = float(prior_weight)
        self.prior = float(prior)
        # (file, version) -> [weighted authentic votes, weighted total]
        self._votes: Dict[Tuple[int, int], np.ndarray] = {}
        self.votes_cast = 0

    def _check(self, file_rank: int, version: int) -> Tuple[int, int]:
        if not 1 <= file_rank <= self.n_files:
            raise ValidationError(
                f"file_rank must be in [1, {self.n_files}], got {file_rank}"
            )
        if not 0 <= version < self.versions_per_file:
            raise ValidationError(
                f"version must be in [0, {self.versions_per_file}), got {version}"
            )
        return int(file_rank), int(version)

    # -- voting -----------------------------------------------------------

    def vote(
        self,
        file_rank: int,
        version: int,
        outcome: TransactionOutcome,
        *,
        weight: float = 1.0,
    ) -> None:
        """Record a vote on a version, weighted by the voter's reputation.

        ``weight`` is typically ``n * v_voter`` (reputation relative to
        the uniform score) so an average peer votes with weight ~1.
        """
        key = self._check(file_rank, version)
        if weight < 0:
            raise ValidationError(f"vote weight must be >= 0, got {weight}")
        tally = self._votes.setdefault(key, np.zeros(2))
        if outcome is TransactionOutcome.AUTHENTIC:
            tally[0] += weight
        tally[1] += weight
        self.votes_cast += 1

    # -- queries ------------------------------------------------------------

    def score(self, file_rank: int, version: int) -> float:
        """Smoothed authenticity score of a version in [0, 1]."""
        key = self._check(file_rank, version)
        auth, total = self._votes.get(key, (0.0, 0.0))
        return float(
            (auth + self.prior * self.prior_weight) / (total + self.prior_weight)
        )

    def version_score(self, file_rank: int, version: int) -> VersionScore:
        """Score snapshot with the accumulated vote mass."""
        key = self._check(file_rank, version)
        _auth, total = self._votes.get(key, (0.0, 0.0))
        return VersionScore(
            file_rank=int(file_rank),
            version=int(version),
            score=self.score(file_rank, version),
            weighted_votes=float(total),
        )

    def best_version(self, file_rank: int) -> int:
        """The version a client should fetch (highest score, lowest id ties)."""
        self._check(file_rank, 0)
        scores = [
            self.score(file_rank, ver) for ver in range(self.versions_per_file)
        ]
        return int(np.argmax(scores))

    def validate(self, file_rank: int, version: int, *, threshold: float = 0.5) -> bool:
        """Pre-download check: is this version believed authentic?"""
        if not 0.0 <= threshold <= 1.0:
            raise ValidationError(f"threshold must be in [0, 1], got {threshold}")
        return bool(self.score(file_rank, version) >= threshold)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ObjectReputation(files={self.n_files}, "
            f"versions={self.versions_per_file}, votes={self.votes_cast})"
        )
