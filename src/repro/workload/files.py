"""The file catalog: popularity-skewed copies placed on skewed owners.

§6.4: "There are over 100,000 files simulated in these experiments.  The
number of copies of each file is determined by a Power-law distribution
with a popularity rate phi = 1.2.  Each peer is assigned with a number
of files based on the Sarioiu distribution."

Construction: file ``f`` (1-based popularity rank) gets
``copies(f) ∝ f^-phi`` copies (at least one); each copy is placed on a
peer drawn with probability proportional to the peer's Saroiu ownership
count, without duplicating a file on one peer.  The inverted index
(file -> owner ids) is what query resolution needs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.distributions.powerlaw import powerlaw_weights
from repro.distributions.saroiu import SaroiuFileOwnership
from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["FileCatalog"]


class FileCatalog:
    """Files, their copy counts, and the file -> owners index.

    Parameters
    ----------
    n_files:
        Catalog size (paper: > 100_000).
    n_peers:
        Number of peers to place copies on.
    phi:
        Copy-count power-law exponent (paper: 1.2).
    ownership:
        Saroiu ownership model used to weight placement.
    mean_copies:
        Average copies per file (scales total placement volume).
    """

    def __init__(
        self,
        n_files: int,
        n_peers: int,
        *,
        phi: float = 1.2,
        ownership: Optional[SaroiuFileOwnership] = None,
        mean_copies: float = 5.0,
        rng: SeedLike = None,
    ):
        if n_files < 1:
            raise ValidationError(f"n_files must be >= 1, got {n_files}")
        if n_peers < 1:
            raise ValidationError(f"n_peers must be >= 1, got {n_peers}")
        if mean_copies < 1:
            raise ValidationError(f"mean_copies must be >= 1, got {mean_copies}")
        gen = as_generator(rng)
        self.n_files = int(n_files)
        self.n_peers = int(n_peers)
        self.phi = float(phi)

        # Copy counts: proportional to rank^-phi, scaled to the target
        # mean, floored at one copy so every file exists somewhere.
        weights = powerlaw_weights(self.n_files, self.phi)
        scale = mean_copies * self.n_files / weights.sum()
        self._copies = np.maximum(1, np.round(scale * weights)).astype(np.int64)
        # No file can have more copies than peers (one copy per owner).
        np.minimum(self._copies, self.n_peers, out=self._copies)

        # Placement weights: Saroiu ownership counts (free riders get 0
        # weight and thus own nothing, matching the measurement).
        model = ownership or SaroiuFileOwnership()
        counts = model.sample_counts(self.n_peers, gen).astype(np.float64)
        if counts.sum() == 0:
            counts[:] = 1.0  # degenerate draw: fall back to uniform
        placement_p = counts / counts.sum()

        # Vectorized placement: draw owners for every copy in one call
        # (with replacement), then collapse duplicates within a file.
        # Collisions shave a few copies off hot files, which is harmless
        # — only distinct owners matter for query resolution.
        sharers = np.flatnonzero(counts > 0)
        sharer_p = placement_p[sharers] / placement_p[sharers].sum()
        total = int(self._copies.sum())
        draws = gen.choice(sharers, size=total, replace=True, p=sharer_p)
        bounds = np.concatenate(([0], np.cumsum(self._copies)))
        self._owners: List[np.ndarray] = [
            np.unique(draws[bounds[f] : bounds[f + 1]]) for f in range(self.n_files)
        ]
        self._copies = np.fromiter(
            (len(o) for o in self._owners), dtype=np.int64, count=self.n_files
        )

    # -- queries ------------------------------------------------------------

    def copies(self, file_rank: int) -> int:
        """Copy count of the file with 1-based popularity ``file_rank``."""
        self._check_rank(file_rank)
        return int(self._copies[file_rank - 1])

    def owners(self, file_rank: int) -> np.ndarray:
        """Owner peer ids of a file (ascending, copy)."""
        self._check_rank(file_rank)
        return self._owners[file_rank - 1].copy()

    def owners_alive(self, file_rank: int, alive_mask: np.ndarray) -> np.ndarray:
        """Owner ids filtered by a liveness mask."""
        self._check_rank(file_rank)
        own = self._owners[file_rank - 1]
        return own[alive_mask[own]]

    def files_of(self, peer: int) -> np.ndarray:
        """1-based file ranks owned by ``peer`` (linear scan; test helper)."""
        if not 0 <= peer < self.n_peers:
            raise ValidationError(f"peer {peer} out of range [0, {self.n_peers})")
        hits = [
            f + 1 for f, own in enumerate(self._owners) if np.any(own == peer)
        ]
        return np.asarray(hits, dtype=np.int64)

    @property
    def total_copies(self) -> int:
        """Total placed copies across all files."""
        return int(sum(len(o) for o in self._owners))

    def _check_rank(self, file_rank: int) -> None:
        if not 1 <= file_rank <= self.n_files:
            raise ValidationError(
                f"file_rank must be in [1, {self.n_files}], got {file_rank}"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FileCatalog(files={self.n_files}, peers={self.n_peers}, "
            f"copies={self.total_copies})"
        )
