"""The P2P file-sharing simulation of §6.4 (Fig. 5).

Per query: a random peer asks for a file drawn from the two-segment
Zipf; the (simulated) flood returns every live owner; the selection
policy picks the download source; the download is authentic or not
according to the source's inauthentic-response rate; the requester
rates the source per its behavioral class; and "the system updates
global reputation scores at all sites after 1,000 queries".

The query success rate — fraction of queries ending in an authentic
download — is the headline output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.notrust import SelectionPolicy
from repro.core.config import GossipTrustConfig
from repro.network.flooding import FloodSearch
from repro.network.overlay import Overlay
from repro.core.gossiptrust import GossipTrust
from repro.errors import ValidationError
from repro.peers.behavior import PeerPopulation, rate_transaction, reputation_inverse_rate
from repro.trust.feedback import FeedbackLedger
from repro.trust.matrix import TrustMatrix
from repro.types import TransactionOutcome
from repro.utils.logging import get_logger
from repro.utils.rng import RngStreams, SeedLike
from repro.workload.files import FileCatalog
from repro.workload.queries import QueryStream

__all__ = ["SharingResult", "FileSharingSimulation"]

_log = get_logger("workload.filesharing")


@dataclass
class SharingResult:
    """Outcome of a file-sharing run."""

    #: fraction of queries that ended in an authentic download
    success_rate: float
    #: per-refresh-window success rates, in order
    window_success: List[float]
    #: total queries issued
    queries: int
    #: queries that found no live source
    unresolved: int
    #: reputation refreshes performed
    refreshes: int
    #: total gossip steps spent across refreshes (overhead accounting)
    gossip_steps: int

    @property
    def steady_state_success(self) -> float:
        """Mean success over the second half of the windows (warmed up)."""
        if not self.window_success:
            return self.success_rate
        half = self.window_success[len(self.window_success) // 2 :]
        return float(np.mean(half))


class FileSharingSimulation:
    """Reputation-assisted file sharing on a peer population.

    Parameters
    ----------
    population:
        Peer behavioral classes and service qualities.
    catalog:
        File catalog (owners index).
    policy:
        Download-source selection policy (GossipTrust or NoTrust).
    refresh_interval:
        Queries between global reputation refreshes (paper: 1000).
    config:
        GossipTrust parameters for the refresh aggregations (probe mode
        recommended — refresh cost is not what Fig. 5 measures).
    inauthentic_model:
        ``"class"`` — per-class rates (honest 0.05, malicious 1-quality);
        ``"reputation"`` — rate inversely proportional to current global
        reputation (§6.4's stated model; self-consistent across
        refreshes).
    overlay:
        Optional live overlay.  When given, queries are resolved by
        TTL-bounded *flooding* over it (the Gnutella primitive) instead
        of the whole-network owner index — responders are then only the
        owners reachable within ``flood_ttl`` hops, and queries can fail
        for reachability reasons.  The paper floods "over the entire
        P2P network", which the default (index) mode models exactly.
    flood_ttl:
        Hop budget for flood mode.
    """

    def __init__(
        self,
        population: PeerPopulation,
        catalog: FileCatalog,
        policy: SelectionPolicy,
        *,
        refresh_interval: int = 1000,
        config: Optional[GossipTrustConfig] = None,
        inauthentic_model: str = "class",
        use_gossip: bool = True,
        overlay: Optional["Overlay"] = None,
        flood_ttl: int = 7,
        rng: SeedLike = None,
    ):
        if catalog.n_peers != population.n:
            raise ValidationError(
                f"catalog peers ({catalog.n_peers}) != population ({population.n})"
            )
        if refresh_interval < 1:
            raise ValidationError(
                f"refresh_interval must be >= 1, got {refresh_interval}"
            )
        if inauthentic_model not in ("class", "reputation"):
            raise ValidationError(f"unknown inauthentic_model {inauthentic_model!r}")
        self.population = population
        self.catalog = catalog
        self.policy = policy
        self.refresh_interval = int(refresh_interval)
        n = population.n
        self.config = (config or GossipTrustConfig(n=n, engine_mode="probe")).with_updates(n=n)
        self.inauthentic_model = inauthentic_model
        self.use_gossip = bool(use_gossip)
        self._streams = RngStreams(rng)
        self._queries = QueryStream(n, catalog.n_files, rng=self._streams.get("queries"))
        self._outcome_rng = self._streams.get("outcomes")
        self.ledger = FeedbackLedger(n)
        self._reputation = np.full(n, 1.0 / n)
        self._alive = np.ones(n, dtype=bool)
        self._rates = self._compute_rates()
        if overlay is not None and overlay.n != n:
            raise ValidationError(
                f"overlay size ({overlay.n}) != population ({n})"
            )
        self.overlay = overlay
        self._flood = (
            FloodSearch(overlay, default_ttl=flood_ttl) if overlay is not None else None
        )
        # Power nodes persist across refreshes ("identified ... for the
        # next round of reputation updating", §3).  The carried-over set
        # anchors the greedy mixing on the previous round's most
        # reputable peers — the defense that keeps dishonest-feedback
        # blocks from capturing the ranking over successive refreshes.
        self._power_nodes: frozenset = frozenset()

    # -- rates ------------------------------------------------------------

    def _compute_rates(self) -> np.ndarray:
        if self.inauthentic_model == "reputation":
            return reputation_inverse_rate(self._reputation)
        # class mode: a peer serves inauthentic with 1 - quality
        return 1.0 - self.population.quality

    # -- main loop -----------------------------------------------------------

    def run(self, total_queries: int) -> SharingResult:
        """Issue ``total_queries`` queries and return the success report."""
        if total_queries < 1:
            raise ValidationError(f"total_queries must be >= 1, got {total_queries}")
        successes = 0
        unresolved = 0
        refreshes = 0
        gossip_steps = 0
        window_hits = 0
        window_size = 0
        windows: List[float] = []
        for q in self._queries.take(total_queries):
            window_size += 1
            owners = self._resolve(q.file_rank, q.requester)
            if owners.size == 0:
                unresolved += 1
            else:
                source = self.policy.choose(owners.tolist())
                authentic = self._outcome_rng.random() >= self._rates[source]
                outcome = (
                    TransactionOutcome.AUTHENTIC
                    if authentic
                    else TransactionOutcome.INAUTHENTIC
                )
                if authentic:
                    successes += 1
                    window_hits += 1
                reported = rate_transaction(
                    self.population, q.requester, source, outcome
                )
                self.ledger.record_transaction(q.requester, source, reported)
            if (q.index + 1) % self.refresh_interval == 0:
                gossip_steps += self._refresh()
                refreshes += 1
                windows.append(window_hits / window_size)
                window_hits = 0
                window_size = 0
        if window_size:
            windows.append(window_hits / window_size)
        return SharingResult(
            success_rate=successes / total_queries,
            window_success=windows,
            queries=total_queries,
            unresolved=unresolved,
            refreshes=refreshes,
            gossip_steps=gossip_steps,
        )

    def _resolve(self, file_rank: int, requester: int) -> np.ndarray:
        """Owners reachable for this query (index or flood mode)."""
        if self._flood is None:
            owners = self.catalog.owners_alive(file_rank, self._alive)
            return owners[owners != requester]
        if not self.overlay.is_alive(requester):
            # A departed peer issues no flood; the query goes nowhere.
            return np.empty(0, dtype=np.int64)
        owner_set = set(
            self.catalog.owners_alive(file_rank, self.overlay.alive_mask()).tolist()
        )
        result = self._flood.query(requester, match=lambda v: v in owner_set)
        return np.asarray(
            sorted(r for r in result.responders if r != requester), dtype=np.int64
        )

    def _refresh(self) -> int:
        """Recompute global scores from the ledger; returns gossip steps."""
        S = TrustMatrix.from_ledger(self.ledger)
        steps = 0
        if self.use_gossip:
            system = GossipTrust(
                S,
                self.config,
                power_nodes=self._power_nodes,
                rng=self._streams.get("refresh"),
            )
            result = system.run(raise_on_budget=False)
            self._reputation = result.vector
            self._power_nodes = result.power_nodes
            steps = result.total_gossip_steps
        else:
            # Exact refresh (fast path for NoTrust runs, which ignore it).
            from repro.core.aggregation import exact_global_reputation

            res = exact_global_reputation(
                S,
                self.config,
                power_nodes=self._power_nodes,
                raise_on_budget=False,
            )
            self._reputation = res.vector
            self._power_nodes = res.power_nodes
        self.policy.update_scores(self._reputation)
        if self.inauthentic_model == "reputation":
            self._rates = self._compute_rates()
        _log.debug("refreshed reputations (%d gossip steps)", steps)
        return steps

    @property
    def reputation(self) -> np.ndarray:
        """Latest global reputation vector (copy)."""
        return self._reputation.copy()
