"""The query stream: who asks for which file, in popularity order.

§6.4: queries are ranked by popularity with a two-segment power law
(phi = 0.63 for ranks 1-250, phi = 1.24 below), modelling measured
Gnutella query popularity.  Query rank maps to file rank directly —
popular queries ask for popular files — which is the standard coupling
and what makes popular files both well-replicated and hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.distributions.query import TwoSegmentZipf
from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Query", "QueryStream"]


@dataclass(frozen=True)
class Query:
    """One issued query."""

    #: sequence number, starting at 0
    index: int
    #: issuing peer id
    requester: int
    #: 1-based file popularity rank being requested
    file_rank: int


class QueryStream:
    """Generates the paper's query workload.

    "At each time step, a query is randomly generated at a peer and
    completely executed before the next query step."  The requester is
    uniform over peers; the file follows the two-segment Zipf.

    Parameters
    ----------
    n_peers:
        Peers that can issue queries.
    n_files:
        Catalog size (ranks 1..n_files).
    popularity:
        Optional custom popularity distribution (defaults to the paper's
        0.63/1.24 split at rank 250).
    """

    def __init__(
        self,
        n_peers: int,
        n_files: int,
        *,
        popularity: Optional[TwoSegmentZipf] = None,
        rng: SeedLike = None,
    ):
        if n_peers < 1:
            raise ValidationError(f"n_peers must be >= 1, got {n_peers}")
        if n_files < 1:
            raise ValidationError(f"n_files must be >= 1, got {n_files}")
        self.n_peers = int(n_peers)
        self.n_files = int(n_files)
        self.popularity = popularity or TwoSegmentZipf(self.n_files)
        if self.popularity.n != self.n_files:
            raise ValidationError(
                f"popularity covers {self.popularity.n} ranks, catalog has {self.n_files}"
            )
        self._rng = as_generator(rng)
        self.issued = 0

    def next_query(self) -> Query:
        """Generate the next query."""
        q = Query(
            index=self.issued,
            requester=int(self._rng.integers(self.n_peers)),
            file_rank=int(self.popularity.sample_ranks(1, self._rng)[0]),
        )
        self.issued += 1
        return q

    def take(self, count: int) -> Iterator[Query]:
        """Yield the next ``count`` queries."""
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        for _ in range(count):
            yield self.next_query()

    def __repr__(self) -> str:  # pragma: no cover
        return f"QueryStream(peers={self.n_peers}, files={self.n_files}, issued={self.issued})"
