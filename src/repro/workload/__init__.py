"""P2P file-sharing workload (§6.4).

* :mod:`repro.workload.files` — the file catalog: >=100k files with
  power-law copy counts (popularity rate phi = 1.2), placed on peers
  according to Saroiu ownership.
* :mod:`repro.workload.queries` — the query stream: two-segment Zipf
  popularity (0.63 for ranks <= 250, 1.24 below).
* :mod:`repro.workload.filesharing` — the simulation loop: query, flood,
  select source by policy, download, rate, refresh reputations every
  1000 queries; reports the query success rate.
"""

from repro.workload.files import FileCatalog
from repro.workload.filesharing import FileSharingSimulation, SharingResult
from repro.workload.object_reputation import ObjectReputation, VersionScore
from repro.workload.queries import QueryStream

__all__ = [
    "FileCatalog",
    "QueryStream",
    "FileSharingSimulation",
    "SharingResult",
    "ObjectReputation",
    "VersionScore",
]
