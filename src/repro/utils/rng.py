"""Deterministic random-number stream management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator`.  Reproducibility rules:

* A top-level experiment owns a single root seed.
* Each subsystem (topology, feedback, gossip partner choice, workload,
  threat model, ...) gets its *own named child stream*, derived with
  :class:`numpy.random.SeedSequence` spawning.  Adding a new consumer
  therefore never perturbs the draws seen by existing consumers.
* The paper reports averages over >= 10 runs with different seeds; the
  experiment harness loops root seeds ``0..repeats-1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn_streams", "RngStreams"]

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an ``int`` seed, an existing generator (returned as-is), a
    :class:`~numpy.random.SeedSequence`, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_streams(seed: SeedLike, names: Sequence[str]) -> Dict[str, np.random.Generator]:
    """Derive one independent generator per name from a single seed.

    The mapping from names to streams is order-dependent by design:
    ``names`` is treated as the canonical ordered registry for the
    calling subsystem.
    """
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream so a caller
        # passing a Generator still gets independent named streams.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    children = ss.spawn(len(names))
    return {name: np.random.default_rng(child) for name, child in zip(names, children)}


class RngStreams:
    """Lazily-spawned named RNG streams rooted at one seed.

    Example
    -------
    >>> streams = RngStreams(seed=42)
    >>> topo_rng = streams.get("topology")
    >>> feed_rng = streams.get("feedback")

    Requesting the same name twice returns the same generator instance.
    Streams for distinct names are statistically independent.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            entropy = seed.integers(0, 2**63 - 1, size=4).tolist()
            self._root = np.random.SeedSequence(entropy)
            self._seed_repr: Optional[int] = None
        elif isinstance(seed, np.random.SeedSequence):
            self._root = seed
            self._seed_repr = None
        else:
            self._root = np.random.SeedSequence(seed)
            self._seed_repr = seed
        self._streams: Dict[str, np.random.Generator] = {}
        self._spawn_count = 0

    @property
    def seed(self) -> Optional[int]:
        """The integer root seed, if one was supplied."""
        return self._seed_repr

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, spawning it on first use.

        Spawn order is the order of first requests, so components must
        request their streams deterministically (they do: stream names
        are fixed per subsystem constructor).
        """
        if name not in self._streams:
            (child,) = self._root.spawn(1)
            self._streams[name] = np.random.default_rng(child)
            self._spawn_count += 1
        return self._streams[name]

    def names(self) -> Iterable[str]:
        """Names of all streams spawned so far."""
        return tuple(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self._seed_repr!r}, spawned={sorted(self._streams)})"
