"""Process-level resource metrics.

One shared reader for the process's peak resident set size, used by the
per-cycle telemetry (:mod:`repro.metrics.telemetry`), the parallel sweep
runner (:mod:`repro.experiments.runner`), and the benchmark trajectory
writer (``tools/bench_runner.py``) so every layer reports memory in the
same unit (KiB) from the same source.
"""

from __future__ import annotations

import platform

__all__ = ["peak_rss_kib"]


def peak_rss_kib() -> float:
    """Max resident set size of this process so far, in KiB.

    Returns 0.0 on platforms without :mod:`resource` (e.g. Windows) —
    callers treat 0.0 as "unknown", never as a real measurement.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover - platform branch
        peak /= 1024.0
    return float(peak)
