"""Process-level resource metrics.

One shared reader for the process's peak resident set size, used by the
per-cycle telemetry (:mod:`repro.metrics.telemetry`), the parallel sweep
runner (:mod:`repro.experiments.runner`), and the benchmark trajectory
writer (``tools/bench_runner.py``) so every layer reports memory in the
same unit (KiB) from the same source.

Two kinds of reading:

* :func:`peak_rss_kib` — the process-*lifetime* high-water mark
  (``ru_maxrss``).  Monotone: once some phase touched 2 GiB, every
  later reading reports >= 2 GiB, so consecutive measurements of small
  workloads all inherit the same peak.
* :class:`PeakRssMeter` — a *per-interval* peak.  On Linux the kernel's
  high-water mark is reset at interval start (``/proc/self/clear_refs``,
  command ``5``) and read back from ``VmHWM``, so each interval reports
  only its own peak.  Where the reset interface is unavailable the
  meter degrades to the lifetime reader (and says so via
  :attr:`PeakRssMeter.exact`), which is an upper bound rather than a
  per-interval measurement.
"""

from __future__ import annotations

import platform

__all__ = ["peak_rss_kib", "current_rss_kib", "reset_peak_rss", "PeakRssMeter"]

_STATUS = "/proc/self/status"
_CLEAR_REFS = "/proc/self/clear_refs"


def peak_rss_kib() -> float:
    """Max resident set size of this process so far, in KiB.

    Returns 0.0 on platforms without :mod:`resource` (e.g. Windows) —
    callers treat 0.0 as "unknown", never as a real measurement.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover - platform branch
        peak /= 1024.0
    return float(peak)


def _read_status_kib(field: str) -> float:
    """A ``VmHWM``/``VmRSS``-style field from /proc/self/status, in KiB."""
    try:
        with open(_STATUS, "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field):
                    return float(line.split()[1])  # "VmHWM:  1234 kB"
    except OSError:  # pragma: no cover - no procfs
        pass
    return 0.0


def current_rss_kib() -> float:
    """Resident set size right now, in KiB (0.0 where unknown).

    Unlike :func:`peak_rss_kib` this is not monotone — it reads
    ``VmRSS``, so released pages drop back out of the figure.
    """
    return _read_status_kib("VmRSS")


def reset_peak_rss() -> bool:
    """Reset the kernel's RSS high-water mark for this process.

    Writes command ``5`` to ``/proc/self/clear_refs`` (Linux), after
    which ``VmHWM`` restarts from the *current* RSS — the mechanism
    behind per-interval peaks.  Returns False where unsupported
    (non-Linux, restricted procfs); ``ru_maxrss`` is NOT affected
    either way.
    """
    try:
        with open(_CLEAR_REFS, "w", encoding="ascii") as fh:
            fh.write("5")
        return True
    except OSError:  # pragma: no cover - non-Linux / restricted procfs
        return False


class PeakRssMeter:
    """Per-interval peak-RSS meter.

    >>> meter = PeakRssMeter()        # resets the high-water mark
    >>> ...workload...
    >>> peak = meter.read_kib()       # peak RSS of the interval, KiB

    ``read_kib`` may be called repeatedly (the interval keeps running);
    call :meth:`restart` to begin a new interval.  When the kernel
    reset interface is unavailable, :attr:`exact` is False and readings
    fall back to the process-lifetime peak — still a valid upper bound,
    no longer per-interval.
    """

    __slots__ = ("exact",)

    def __init__(self) -> None:
        #: True when per-interval resets are supported (Linux procfs)
        self.exact = reset_peak_rss()

    def restart(self) -> None:
        """Start a new measurement interval."""
        self.exact = reset_peak_rss()

    def read_kib(self) -> float:
        """Peak RSS since the last (re)start, in KiB.

        Falls back to the lifetime high-water mark when resets are
        unsupported (see :attr:`exact`).
        """
        if self.exact:
            peak = _read_status_kib("VmHWM")
            if peak > 0.0:
                return peak
        return peak_rss_kib()  # pragma: no cover - non-Linux fallback
