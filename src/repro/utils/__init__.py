"""Shared utilities: RNG stream management, validation, run logging."""

from repro.utils.rng import RngStreams, as_generator, spawn_streams
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_square_matrix,
    check_stochastic_rows,
)

__all__ = [
    "RngStreams",
    "as_generator",
    "spawn_streams",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_square_matrix",
    "check_stochastic_rows",
]
