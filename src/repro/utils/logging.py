"""Lightweight structured run logging.

The simulator and experiment harness emit progress through the standard
:mod:`logging` machinery under the ``repro`` namespace, so hosts can
route or silence it normally.  :func:`configure` is a convenience for
scripts; the library itself never calls it.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["get_logger", "configure", "timed"]

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy.

    ``get_logger("gossip.engine")`` -> logger named ``repro.gossip.engine``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(level: int = logging.INFO) -> None:
    """Install a console handler on the ``repro`` root logger (idempotent)."""
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)


@contextmanager
def timed(logger: logging.Logger, label: str) -> Iterator[None]:
    """Log wall-clock duration of a block at DEBUG level."""
    start = time.perf_counter()
    try:
        yield
    finally:
        logger.debug("%s took %.3fs", label, time.perf_counter() - start)
