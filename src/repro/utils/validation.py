"""Argument-validation helpers.

All helpers raise :class:`repro.errors.ValidationError` with a message
naming the offending parameter, so API misuse surfaces at the boundary
rather than as a NumPy broadcast error three frames deep.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_square_matrix",
    "check_stochastic_rows",
    "check_vector",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Ensure ``value`` is > 0 (or >= 0 when ``strict=False``)."""
    if strict and not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Ensure ``value`` is >= 0."""
    return check_positive(name, value, strict=False)


def check_probability(name: str, value: float) -> float:
    """Ensure ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Ensure ``value`` lies in the given (half-)open interval."""
    if low is not None:
        ok = value >= low if low_inclusive else value > low
        if not ok:
            op = ">=" if low_inclusive else ">"
            raise ValidationError(f"{name} must be {op} {low}, got {value!r}")
    if high is not None:
        ok = value <= high if high_inclusive else value < high
        if not ok:
            op = "<=" if high_inclusive else "<"
            raise ValidationError(f"{name} must be {op} {high}, got {value!r}")
    return value


def check_vector(name: str, v: np.ndarray, *, size: Optional[int] = None) -> np.ndarray:
    """Ensure ``v`` is a finite 1-D float array (optionally of given size)."""
    arr = np.asarray(v, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if size is not None and arr.shape[0] != size:
        raise ValidationError(f"{name} must have length {size}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return arr


def check_square_matrix(name: str, m: np.ndarray) -> np.ndarray:
    """Ensure ``m`` is a finite 2-D square float array and return it."""
    arr = np.asarray(m, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return arr


def check_stochastic_rows(name: str, m: np.ndarray, *, atol: float = 1e-8) -> np.ndarray:
    """Ensure ``m`` is square, entry-wise in [0, 1], with rows summing to 1."""
    arr = check_square_matrix(name, m)
    if np.any(arr < -atol) or np.any(arr > 1 + atol):
        raise ValidationError(f"{name} entries must lie in [0, 1]")
    row_sums = arr.sum(axis=1)
    bad = np.where(np.abs(row_sums - 1.0) > atol)[0]
    if bad.size:
        raise ValidationError(
            f"{name} rows must sum to 1; row {int(bad[0])} sums to {row_sums[bad[0]]!r}"
        )
    return arr
