"""Message transport over the discrete-event simulator.

Models the properties the paper's robustness claims depend on:

* per-message latency drawn from a configurable distribution,
* independent message loss with probability ``loss_rate``,
* explicit *link failures*: a failed (u, v) link drops every message
  between u and v until it heals (§7 claims tolerance to link failures —
  the gossip protocol needs no error recovery because push-sum mass that
  is lost only perturbs, never corrupts, the converged ratio when the
  self-half is kept locally),
* *network partitions*: a group assignment under which every
  cross-group message drops until the partition heals.

Fault model, stated explicitly:

* **Random loss is evaluated once, at send time.**  A message that
  survives the coin flip is delivered even if ``loss_rate`` rises while
  it is in flight — loss models the first-hop/queueing drop, not a
  per-link-segment process.
* **Link and partition state is checked at send time AND at delivery
  time.**  A message in flight when its link fails (or a partition cuts
  the pair) is dropped at its arrival instant and counted under
  ``dropped_link`` — links that go down take their in-flight traffic
  with them.
* A message to a destination that unregistered mid-flight is dropped
  at delivery (``dropped_unregistered``).

Delivery is a callback: the receiving protocol registers a handler and
the transport invokes it at the message's arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.sim.engine import Simulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["Message", "LinkFailureModel", "Transport"]


@dataclass(frozen=True)
class Message:
    """An application message in flight."""

    src: int
    dst: int
    payload: Any
    kind: str = "data"
    sent_at: float = 0.0


class LinkFailureModel:
    """Tracks failed undirected links and network partitions.

    ``fail(u, v)`` marks a single link down.  ``set_partition(groups)``
    installs a group assignment under which every *cross-group* pair is
    down (an O(1) representation of a network split — no quadratic set
    of pairwise failures).  Both compose: a link is down if explicitly
    failed or cut by the active partition.
    """

    def __init__(self) -> None:
        self._down: Set[Tuple[int, int]] = set()
        self._groups: Optional[Dict[int, int]] = None
        self.failures_injected = 0
        self.partitions_injected = 0

    @staticmethod
    def _key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u <= v else (v, u)

    def fail(self, u: int, v: int) -> None:
        """Mark link ``{u, v}`` as failed."""
        self._down.add(self._key(u, v))
        self.failures_injected += 1

    def heal(self, u: int, v: int) -> None:
        """Restore link ``{u, v}`` (no-op if it was up)."""
        self._down.discard(self._key(u, v))

    def set_partition(self, groups: Mapping[int, int]) -> None:
        """Partition the network: pairs in different groups are down.

        ``groups`` maps node id -> group id; nodes absent from the
        mapping are treated as one implicit extra group (they can reach
        each other but no explicitly grouped node of another group).
        Replaces any previous partition.
        """
        self._groups = dict(groups)
        self.partitions_injected += 1

    def clear_partition(self) -> None:
        """Heal the active partition (explicit link failures persist)."""
        self._groups = None

    @property
    def partitioned(self) -> bool:
        """Whether a partition is currently active."""
        return self._groups is not None

    def is_down(self, u: int, v: int) -> bool:
        """Whether link ``{u, v}`` is currently failed or cut."""
        if self._key(u, v) in self._down:
            return True
        if self._groups is not None:
            return self._groups.get(u, -1) != self._groups.get(v, -1)
        return False

    @property
    def down_count(self) -> int:
        """Number of explicitly failed links (partition cuts not counted)."""
        return len(self._down)


class Transport:
    """Unreliable message transport bound to a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The event kernel that drives delivery timing.
    latency:
        Mean one-way latency; actual latency is uniform in
        ``[0.5 * latency, 1.5 * latency]`` (a simple jitter model).
    loss_rate:
        Independent per-message drop probability.
    rng:
        Seed/generator for latency jitter and loss coin flips.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = 1.0,
        loss_rate: float = 0.0,
        rng: SeedLike = None,
    ) -> None:
        check_non_negative("latency", latency)
        check_probability("loss_rate", loss_rate)
        self.sim = sim
        self.latency = float(latency)
        self.loss_rate = float(loss_rate)
        self.links = LinkFailureModel()
        self._rng = as_generator(rng)
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        # Counters for overhead accounting (the paper's "light-weight
        # communication" claim is assessed with these).
        self.sent = 0
        self.delivered = 0
        self.dropped_loss = 0
        self.dropped_link = 0
        self.dropped_unregistered = 0
        self.bytes_sent = 0

    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        """Install the delivery handler for ``node`` (replaces any prior)."""
        self._handlers[node] = handler

    def unregister(self, node: int) -> None:
        """Remove ``node``'s handler; in-flight messages to it are dropped."""
        self._handlers.pop(node, None)

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the independent per-message drop probability.

        The knob fault plans ramp mid-run (see
        :mod:`repro.network.faultplan`); applies to messages sent from
        now on — in-flight messages already won their coin flip.
        """
        check_probability("loss_rate", loss_rate)
        self.loss_rate = float(loss_rate)

    def send(self, src: int, dst: int, payload: Any, *, kind: str = "data", size: int = 0) -> bool:
        """Queue a message; returns False if dropped at send time.

        Random loss is evaluated once, at send time (see the module
        docstring for the full fault model).  Link/partition state is
        checked here *and again at delivery*: a message in flight when
        its link fails is dropped on arrival and counted under
        ``dropped_link``.  A surviving message lands after jittered
        latency unless the destination unregistered meanwhile (peer
        departed during flight).
        """
        if src == dst:
            raise ValidationError("transport does not loop back; handle self-delivery locally")
        self.sent += 1
        self.bytes_sent += size
        if self.links.is_down(src, dst):
            self.dropped_link += 1
            return False
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped_loss += 1
            return False
        msg = Message(src=src, dst=dst, payload=payload, kind=kind, sent_at=self.sim.now)
        delay = self.latency * (0.5 + self._rng.random()) if self.latency > 0 else 0.0
        self.sim.call_in(delay, self._deliver, msg)
        return True

    def fail_link(self, u: int, v: int, duration: Optional[float] = None) -> None:
        """Fail link ``{u, v}``, auto-healing after ``duration`` if given."""
        self.links.fail(u, v)
        if duration is not None:
            check_non_negative("duration", duration)
            self.sim.call_in(duration, self.links.heal, u, v)

    def _deliver(self, msg: Message) -> None:
        # A link that failed (or a partition that formed) while this
        # message was in flight takes it down too — link state was
        # previously only checked at send time, silently delivering
        # through dead links.
        if self.links.is_down(msg.src, msg.dst):
            self.dropped_link += 1
            return
        handler = self._handlers.get(msg.dst)
        if handler is None:
            self.dropped_unregistered += 1
            return
        self.delivered += 1
        handler(msg)

    @property
    def drop_count(self) -> int:
        """Total messages dropped for any reason."""
        return self.dropped_loss + self.dropped_link + self.dropped_unregistered

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Transport(sent={self.sent}, delivered={self.delivered}, "
            f"dropped={self.drop_count})"
        )
