"""Message transport over the discrete-event simulator.

Models the properties the paper's robustness claims depend on:

* per-message latency drawn from a configurable distribution,
* independent message loss with probability ``loss_rate``,
* explicit *link failures*: a failed (u, v) link drops every message
  between u and v until it heals (§7 claims tolerance to link failures —
  the gossip protocol needs no error recovery because push-sum mass that
  is lost only perturbs, never corrupts, the converged ratio when the
  self-half is kept locally).

Delivery is a callback: the receiving protocol registers a handler and
the transport invokes it at the message's arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.sim.engine import Simulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["Message", "LinkFailureModel", "Transport"]


@dataclass(frozen=True)
class Message:
    """An application message in flight."""

    src: int
    dst: int
    payload: Any
    kind: str = "data"
    sent_at: float = 0.0


class LinkFailureModel:
    """Tracks failed undirected links and schedules their repair.

    ``fail(u, v, duration)`` marks the link down; if ``duration`` is
    given the transport's simulator heals it automatically.
    """

    def __init__(self) -> None:
        self._down: Set[Tuple[int, int]] = set()
        self.failures_injected = 0

    @staticmethod
    def _key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u <= v else (v, u)

    def fail(self, u: int, v: int) -> None:
        """Mark link ``{u, v}`` as failed."""
        self._down.add(self._key(u, v))
        self.failures_injected += 1

    def heal(self, u: int, v: int) -> None:
        """Restore link ``{u, v}`` (no-op if it was up)."""
        self._down.discard(self._key(u, v))

    def is_down(self, u: int, v: int) -> bool:
        """Whether link ``{u, v}`` is currently failed."""
        return self._key(u, v) in self._down

    @property
    def down_count(self) -> int:
        """Number of currently failed links."""
        return len(self._down)


class Transport:
    """Unreliable message transport bound to a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The event kernel that drives delivery timing.
    latency:
        Mean one-way latency; actual latency is uniform in
        ``[0.5 * latency, 1.5 * latency]`` (a simple jitter model).
    loss_rate:
        Independent per-message drop probability.
    rng:
        Seed/generator for latency jitter and loss coin flips.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = 1.0,
        loss_rate: float = 0.0,
        rng: SeedLike = None,
    ):
        check_non_negative("latency", latency)
        check_probability("loss_rate", loss_rate)
        self.sim = sim
        self.latency = float(latency)
        self.loss_rate = float(loss_rate)
        self.links = LinkFailureModel()
        self._rng = as_generator(rng)
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        # Counters for overhead accounting (the paper's "light-weight
        # communication" claim is assessed with these).
        self.sent = 0
        self.delivered = 0
        self.dropped_loss = 0
        self.dropped_link = 0
        self.dropped_unregistered = 0
        self.bytes_sent = 0

    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        """Install the delivery handler for ``node`` (replaces any prior)."""
        self._handlers[node] = handler

    def unregister(self, node: int) -> None:
        """Remove ``node``'s handler; in-flight messages to it are dropped."""
        self._handlers.pop(node, None)

    def send(self, src: int, dst: int, payload: Any, *, kind: str = "data", size: int = 0) -> bool:
        """Queue a message; returns False if dropped at send time.

        Loss and link failure are evaluated at send time (a failed link
        drops deterministically; random loss by coin flip).  Delivery —
        if the message survives — happens after jittered latency, and is
        also dropped if the destination unregistered meanwhile (peer
        departed during flight).
        """
        if src == dst:
            raise ValidationError("transport does not loop back; handle self-delivery locally")
        self.sent += 1
        self.bytes_sent += size
        if self.links.is_down(src, dst):
            self.dropped_link += 1
            return False
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped_loss += 1
            return False
        msg = Message(src=src, dst=dst, payload=payload, kind=kind, sent_at=self.sim.now)
        delay = self.latency * (0.5 + self._rng.random()) if self.latency > 0 else 0.0
        self.sim.call_in(delay, self._deliver, msg)
        return True

    def fail_link(self, u: int, v: int, duration: Optional[float] = None) -> None:
        """Fail link ``{u, v}``, auto-healing after ``duration`` if given."""
        self.links.fail(u, v)
        if duration is not None:
            check_non_negative("duration", duration)
            self.sim.call_in(duration, self.links.heal, u, v)

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers.get(msg.dst)
        if handler is None:
            self.dropped_unregistered += 1
            return
        self.delivered += 1
        handler(msg)

    @property
    def drop_count(self) -> int:
        """Total messages dropped for any reason."""
        return self.dropped_loss + self.dropped_link + self.dropped_unregistered

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Transport(sent={self.sent}, delivered={self.delivered}, "
            f"dropped={self.drop_count})"
        )
