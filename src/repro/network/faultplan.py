"""Scripted fault injection — declarative, seeded chaos schedules.

The fault-tolerance experiment injects each fault once, at setup.  Real
failures *arrive over time*: a rack crashes mid-cycle, a link flaps for
a minute, the network splits and later heals, loss climbs during a
congestion event and recedes.  A :class:`FaultPlan` scripts exactly
that: a list of declarative fault events, compiled onto the simulator
clock by :meth:`FaultPlan.schedule`, with every random choice (victims,
flapping links, partition assignment) drawn from the plan's own seeded
generator so a chaos run replays bit-for-bit.

Event types
-----------
:class:`CrashBurst`
    At time ``at``, a fraction (or absolute count) of live nodes leaves
    the overlay at once; optionally each victim rejoins ``rejoin_after``
    later (churn with memory of the fault, not a Poisson blur).
:class:`LinkFlap`
    ``count`` random topology links cycle down/up with period
    ``period`` for ``cycles`` cycles — the flapping-interface model.
:class:`Partition`
    At ``at``, live nodes are split into ``groups`` random groups and
    every cross-group message drops; at ``heal_at`` the partition heals.
:class:`LossRamp`
    Between ``start`` and ``end`` the transport's loss rate ramps as a
    staircase from its current value to ``peak`` and back down to the
    starting value (a congestion event, not a step function).

All events are applied through the public Simulator/Transport/Overlay
APIs; nothing here reaches into engine state.  The plan records an
event log (time, kind, detail) plus counters, which the resilience
experiment folds into its per-strategy report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.network.overlay import Overlay
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_probability

__all__ = [
    "CrashBurst",
    "LinkFlap",
    "Partition",
    "LossRamp",
    "FaultPlan",
    "named_plan",
    "plan_names",
]


@dataclass(frozen=True)
class CrashBurst:
    """A simultaneous crash of several live nodes (optionally rejoining)."""

    #: simulated time the burst fires
    at: float
    #: fraction of currently-live nodes to crash (used when count == 0)
    fraction: float = 0.0
    #: absolute victim count (overrides fraction when > 0)
    count: int = 0
    #: each victim rejoins this long after the burst (None = stays down)
    rejoin_after: Optional[float] = None


@dataclass(frozen=True)
class LinkFlap:
    """Random links cycling down/up — the flapping-interface model."""

    #: time the first down-flap fires
    start: float
    #: how many distinct random links flap
    count: int
    #: full down+up cycle length (down for period/2, up for period/2)
    period: float
    #: number of down/up cycles
    cycles: int = 2


@dataclass(frozen=True)
class Partition:
    """A network split into random groups, healed at a fixed time."""

    #: time the partition forms
    at: float
    #: time it heals
    heal_at: float
    #: number of groups the live population splits into
    groups: int = 2


@dataclass(frozen=True)
class LossRamp:
    """Loss rate ramping up to ``peak`` and back — a congestion event."""

    #: ramp start time
    start: float
    #: ramp end time (loss is back to the pre-ramp value here)
    end: float
    #: peak loss rate reached at the ramp midpoint
    peak: float
    #: staircase resolution (number of loss-rate changes per side)
    steps: int = 4


FaultEvent = Union[CrashBurst, LinkFlap, Partition, LossRamp]


class FaultPlan:
    """A seeded, declarative schedule of fault events.

    Build one from event dataclasses (or via :func:`named_plan`), then
    compile it onto a simulation with :meth:`schedule` *before* running
    the cycle.  The plan draws victims/links/groups from its own
    generator at fire time, in simulator event order, so a given
    ``(plan, seed, substrate)`` triple replays identically — the
    property the sweep runner's determinism contract needs.

    Parameters
    ----------
    events:
        The fault events, in any order (each carries its own times).
    rng:
        Seed material for every random choice the plan makes.
    min_alive:
        Crash bursts never push the live population below this floor.
    """

    def __init__(
        self,
        events: List[FaultEvent],
        *,
        rng: SeedLike = None,
        min_alive: int = 2,
    ) -> None:
        for ev in events:
            _validate_event(ev)
        if min_alive < 2:
            raise ValidationError(f"min_alive must be >= 2, got {min_alive}")
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        self._rng = as_generator(rng)
        self.min_alive = int(min_alive)
        #: chronological (time, kind, detail) records of applied faults
        self.log: List[Tuple[float, str, str]] = []
        self.crashes = 0
        self.rejoins = 0
        self.flaps = 0
        self.partitions = 0
        self.heals = 0
        self.loss_changes = 0
        self._scheduled = False

    # -- compilation -------------------------------------------------------

    def schedule(
        self,
        sim: Simulator,
        transport: Transport,
        overlay: Overlay,
        *,
        on_crash: Optional[Callable[[int], None]] = None,
        on_rejoin: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Install every event's callbacks on the simulator clock.

        ``on_crash`` / ``on_rejoin`` are notified per node after the
        overlay change is applied — the hook engines/strategies use to
        flush state or re-bootstrap membership.  A plan instance can be
        scheduled once (its log and counters are per-run).
        """
        if self._scheduled:
            raise ValidationError("this FaultPlan is already scheduled; build a new one")
        self._scheduled = True
        for ev in self.events:
            if isinstance(ev, CrashBurst):
                sim.call_at(
                    ev.at, self._fire_crash, sim, overlay, ev, on_crash, on_rejoin
                )
            elif isinstance(ev, LinkFlap):
                self._schedule_flaps(sim, transport, overlay, ev)
            elif isinstance(ev, Partition):
                sim.call_at(ev.at, self._fire_partition, transport, overlay, ev)
                sim.call_at(ev.heal_at, self._fire_heal, transport, ev)
            elif isinstance(ev, LossRamp):
                self._schedule_ramp(sim, transport, ev)

    # -- crash bursts ------------------------------------------------------

    def _fire_crash(
        self,
        sim: Simulator,
        overlay: Overlay,
        ev: CrashBurst,
        on_crash: Optional[Callable[[int], None]],
        on_rejoin: Optional[Callable[[int], None]],
    ) -> None:
        live = [int(v) for v in overlay.alive_nodes().tolist()]
        want = ev.count if ev.count > 0 else int(round(ev.fraction * len(live)))
        budget = max(0, len(live) - self.min_alive)
        k = min(want, budget)
        if k <= 0:
            return
        picks = self._rng.choice(len(live), size=k, replace=False)
        victims = sorted(live[int(i)] for i in picks)
        for node in victims:
            overlay.leave(node)
            self.crashes += 1
            if on_crash is not None:
                on_crash(node)
            if ev.rejoin_after is not None:
                sim.call_in(ev.rejoin_after, self._fire_rejoin, overlay, node, on_rejoin)
        self.log.append((sim.now, "crash", f"{k} nodes: {victims[:8]}..."))

    def _fire_rejoin(
        self,
        overlay: Overlay,
        node: int,
        on_rejoin: Optional[Callable[[int], None]],
    ) -> None:
        if overlay.is_alive(node):
            return
        overlay.join(node)
        self.rejoins += 1
        if on_rejoin is not None:
            on_rejoin(node)

    # -- link flaps --------------------------------------------------------

    def _schedule_flaps(
        self, sim: Simulator, transport: Transport, overlay: Overlay, ev: LinkFlap
    ) -> None:
        sim.call_at(ev.start, self._start_flaps, sim, transport, overlay, ev)

    def _start_flaps(
        self, sim: Simulator, transport: Transport, overlay: Overlay, ev: LinkFlap
    ) -> None:
        edges = list(overlay.live_subgraph().edges())
        if not edges:
            return
        k = min(ev.count, len(edges))
        picks = self._rng.choice(len(edges), size=k, replace=False)
        chosen = [edges[int(i)] for i in picks]
        half = ev.period / 2.0
        for cycle in range(ev.cycles):
            down_at = cycle * ev.period
            for u, v in chosen:
                sim.call_in(down_at, self._flap_down, sim, transport, int(u), int(v), half)
        self.log.append((sim.now, "flap", f"{k} links x {ev.cycles} cycles"))

    def _flap_down(
        self, sim: Simulator, transport: Transport, u: int, v: int, half: float
    ) -> None:
        transport.links.fail(u, v)
        self.flaps += 1
        sim.call_in(half, transport.links.heal, u, v)

    # -- partitions --------------------------------------------------------

    def _fire_partition(
        self, transport: Transport, overlay: Overlay, ev: Partition
    ) -> None:
        live = [int(v) for v in overlay.alive_nodes().tolist()]
        assignment = {
            node: int(self._rng.integers(ev.groups)) for node in sorted(live)
        }
        transport.links.set_partition(assignment)
        self.partitions += 1
        sizes: Dict[int, int] = {}
        for g in assignment.values():
            sizes[g] = sizes.get(g, 0) + 1
        self.log.append(
            (transport.sim.now, "partition", f"groups={sorted(sizes.values())}")
        )

    def _fire_heal(self, transport: Transport, ev: Partition) -> None:
        transport.links.clear_partition()
        self.heals += 1
        self.log.append((transport.sim.now, "heal", "partition cleared"))

    # -- loss ramps --------------------------------------------------------

    def _schedule_ramp(self, sim: Simulator, transport: Transport, ev: LossRamp) -> None:
        sim.call_at(ev.start, self._start_ramp, sim, transport, ev)

    def _start_ramp(self, sim: Simulator, transport: Transport, ev: LossRamp) -> None:
        base = transport.loss_rate
        span = ev.end - ev.start
        # Staircase up to the peak over the first half, back down over
        # the second; the final step restores the pre-ramp rate.
        points: List[Tuple[float, float]] = []
        for i in range(1, ev.steps + 1):
            t = span / 2.0 * (i / ev.steps)
            rate = base + (ev.peak - base) * (i / ev.steps)
            points.append((t, rate))
        for i in range(1, ev.steps + 1):
            t = span / 2.0 + span / 2.0 * (i / ev.steps)
            rate = ev.peak + (base - ev.peak) * (i / ev.steps)
            points.append((t, rate))
        for t, rate in points:
            sim.call_in(t, self._set_loss, transport, rate)
        self.log.append((sim.now, "loss-ramp", f"{base:g} -> {ev.peak:g} -> {base:g}"))

    def _set_loss(self, transport: Transport, rate: float) -> None:
        transport.set_loss_rate(rate)
        self.loss_changes += 1

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Applied-fault counters for experiment reports."""
        return {
            "crashes": self.crashes,
            "rejoins": self.rejoins,
            "flaps": self.flaps,
            "partitions": self.partitions,
            "heals": self.heals,
            "loss_changes": self.loss_changes,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"FaultPlan(events={len(self.events)}, scheduled={self._scheduled})"


def _validate_event(ev: FaultEvent) -> None:
    if isinstance(ev, CrashBurst):
        check_non_negative("at", ev.at)
        if ev.count == 0:
            check_probability("fraction", ev.fraction)
        elif ev.count < 0:
            raise ValidationError(f"count must be >= 0, got {ev.count}")
        if ev.rejoin_after is not None:
            check_non_negative("rejoin_after", ev.rejoin_after)
    elif isinstance(ev, LinkFlap):
        check_non_negative("start", ev.start)
        if ev.count < 1:
            raise ValidationError(f"flap count must be >= 1, got {ev.count}")
        if not ev.period > 0:
            raise ValidationError(f"flap period must be > 0, got {ev.period}")
        if ev.cycles < 1:
            raise ValidationError(f"flap cycles must be >= 1, got {ev.cycles}")
    elif isinstance(ev, Partition):
        check_non_negative("at", ev.at)
        if not ev.heal_at > ev.at:
            raise ValidationError(
                f"heal_at={ev.heal_at} must be after at={ev.at}"
            )
        if ev.groups < 2:
            raise ValidationError(f"groups must be >= 2, got {ev.groups}")
    elif isinstance(ev, LossRamp):
        check_non_negative("start", ev.start)
        if not ev.end > ev.start:
            raise ValidationError(f"end={ev.end} must be after start={ev.start}")
        check_probability("peak", ev.peak)
        if ev.steps < 1:
            raise ValidationError(f"steps must be >= 1, got {ev.steps}")
    else:  # pragma: no cover
        raise ValidationError(f"unknown fault event {ev!r}")


# -- named plans --------------------------------------------------------------

#: horizon-parameterized builders of the canonical chaos scenarios
_PLAN_BUILDERS: Dict[str, Callable[[float], List[FaultEvent]]] = {
    # A quarter of the network crashes early; half the victims return.
    "crash": lambda horizon: [
        CrashBurst(at=0.15 * horizon, fraction=0.15),
        CrashBurst(at=0.30 * horizon, fraction=0.10, rejoin_after=0.25 * horizon),
    ],
    # The network splits in two for the middle third of the run.
    "partition": lambda horizon: [
        Partition(at=0.30 * horizon, heal_at=0.60 * horizon, groups=2),
    ],
    # Loss climbs to 30% and back during the middle of the run.
    "loss_ramp": lambda horizon: [
        LossRamp(start=0.20 * horizon, end=0.70 * horizon, peak=0.30, steps=4),
    ],
    # Kitchen sink: flapping links, a crash burst with rejoin, a
    # short partition, and a mild loss ramp, overlapping.
    "combo": lambda horizon: [
        LinkFlap(start=0.10 * horizon, count=12, period=0.10 * horizon, cycles=3),
        CrashBurst(at=0.25 * horizon, fraction=0.10, rejoin_after=0.30 * horizon),
        Partition(at=0.45 * horizon, heal_at=0.60 * horizon, groups=2),
        LossRamp(start=0.30 * horizon, end=0.80 * horizon, peak=0.15, steps=3),
    ],
}


def plan_names() -> Tuple[str, ...]:
    """The canonical chaos scenario names, sorted."""
    return tuple(sorted(_PLAN_BUILDERS))


def named_plan(
    name: str,
    *,
    horizon: float,
    rng: SeedLike = None,
    min_alive: int = 2,
) -> FaultPlan:
    """Build a canonical chaos scenario scaled to a run ``horizon``.

    ``horizon`` is the simulated time the cycle is expected to span
    (e.g. ``rounds * round_interval``); all event times are fractions
    of it, so one plan shape serves quick tests and long soaks alike.
    """
    if not horizon > 0:
        raise ValidationError(f"horizon must be > 0, got {horizon}")
    try:
        builder = _PLAN_BUILDERS[name]
    except KeyError:
        known = ", ".join(plan_names())
        raise ValidationError(f"unknown fault plan {name!r}; known: {known}") from None
    return FaultPlan(builder(horizon), rng=rng, min_alive=min_alive)
