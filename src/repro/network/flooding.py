"""TTL-bounded flooding search — the unstructured query primitive.

§6.4: "After a query for a file is issued and flooded over the entire
P2P network, a list of nodes having this file is generated".  This
module implements classic Gnutella flooding: a query propagates from the
issuer to all live neighbors, decrementing a TTL per hop, with duplicate
suppression by query id.  The result is the set of responders plus
overhead counters (messages generated), which the overhead analyses use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Set

from repro.errors import ValidationError
from repro.network.overlay import Overlay

__all__ = ["FloodResult", "FloodSearch"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one flooded query."""

    #: node ids that matched the predicate and are reachable within TTL
    responders: FrozenSet[int]
    #: nodes that saw the query at least once
    reached: int
    #: total query transmissions (every edge crossing counts once)
    messages: int
    #: hop count at which the last responder was found (0 = issuer itself)
    max_hop: int


class FloodSearch:
    """Flooding engine over the live overlay.

    This is a *logical* flood — it expands the BFS frontier level by
    level rather than scheduling per-message events, because the
    experiments only need the responder set and message count.  (The
    message-level transport is exercised by the gossip engine, where
    timing genuinely matters.)
    """

    def __init__(self, overlay: Overlay, default_ttl: int = 7) -> None:
        if default_ttl < 0:
            raise ValidationError(f"default_ttl must be >= 0, got {default_ttl}")
        self.overlay = overlay
        self.default_ttl = int(default_ttl)
        self.queries_issued = 0
        self.total_messages = 0

    def query(
        self,
        source: int,
        match: Callable[[int], bool],
        ttl: int = -1,
    ) -> FloodResult:
        """Flood a query from ``source``; ``match(node)`` tests for a hit.

        Parameters
        ----------
        source:
            Issuing node (must be live).
        match:
            Predicate evaluated at every reached node (including the
            issuer — a peer can serve its own file, matching Gnutella).
        ttl:
            Hop budget; -1 uses the engine default.
        """
        if not self.overlay.is_alive(source):
            raise ValidationError(f"query source {source} is not alive")
        if ttl < 0:
            ttl = self.default_ttl
        self.queries_issued += 1

        responders: Set[int] = set()
        seen: Set[int] = {source}
        frontier: List[int] = [source]
        messages = 0
        max_hop = 0
        if match(source):
            responders.add(source)
        for hop in range(1, ttl + 1):
            next_frontier: List[int] = []
            for u in frontier:
                for v in self.overlay.neighbors(u):
                    messages += 1  # transmission happens even to seen nodes
                    if v in seen:
                        continue
                    seen.add(v)
                    next_frontier.append(v)
                    if match(v):
                        responders.add(v)
                        max_hop = hop
            if not next_frontier:
                break
            frontier = next_frontier
        self.total_messages += messages
        return FloodResult(
            responders=frozenset(responders),
            reached=len(seen),
            messages=messages,
            max_hop=max_hop,
        )
