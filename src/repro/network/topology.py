"""Overlay graph generators, implemented from scratch.

The paper evaluates on "a Gnutella-like flat unstructured network";
measured Gnutella snapshots have power-law degree distributions, so
:func:`gnutella_like` defaults to a Barabási–Albert preferential-
attachment graph.  Erdős–Rényi and Watts–Strogatz generators are
provided for sensitivity studies (gossip convergence depends on graph
conductance, and these three families bracket the interesting range).

All generators return a :class:`Topology` — an immutable undirected
simple graph over nodes ``0..n-1`` — and guarantee connectivity by
patching any stray components with random bridge edges (gossip mixing
and flooding both presuppose one component; the paper's overlays are
connected).
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "Topology",
    "random_graph",
    "powerlaw_graph",
    "small_world_graph",
    "gnutella_like",
]


class Topology:
    """An immutable undirected simple graph over nodes ``0..n-1``.

    Stores adjacency as tuples for cheap iteration and hashability of
    the overall structure; mutation happens only through the overlay
    layer, which copies adjacency into mutable sets.
    """

    __slots__ = ("_n", "_adj", "_edge_count")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]) -> None:
        if n < 1:
            raise ValidationError(f"topology must have >= 1 node, got n={n}")
        adj: List[Set[int]] = [set() for _ in range(n)]
        count = 0
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValidationError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ValidationError(f"self-loop at node {u} not allowed")
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                count += 1
        self._n = n
        self._adj: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(neigh)) for neigh in adj
        )
        self._edge_count = count

    # -- basic accessors -------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Sorted neighbor ids of ``node``."""
        return self._adj[node]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return len(self._adj[node])

    def degrees(self) -> np.ndarray:
        """Degree of every node as an int array."""
        return np.fromiter((len(a) for a in self._adj), dtype=np.int64, count=self._n)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u, neigh in enumerate(self._adj):
            for v in neigh:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adj[u]

    # -- structure queries -------------------------------------------------

    def components(self) -> List[FrozenSet[int]]:
        """Connected components via BFS, largest first."""
        seen = [False] * self._n
        comps: List[FrozenSet[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            queue = deque([start])
            seen[start] = True
            comp = [start]
            while queue:
                u = queue.popleft()
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        queue.append(v)
            comps.append(frozenset(comp))
        comps.sort(key=len, reverse=True)
        return comps

    def is_connected(self) -> bool:
        """Whether the graph has a single connected component."""
        return len(self.components()) == 1

    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distance from ``source`` to every node (-1 if unreachable)."""
        if not 0 <= source < self._n:
            raise ValidationError(f"source {source} out of range for n={self._n}")
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def diameter_estimate(self, samples: int = 8, rng: SeedLike = None) -> int:
        """Lower bound on diameter from double-sweep BFS over ``samples`` seeds."""
        gen = as_generator(rng)
        best = 0
        for _ in range(max(1, samples)):
            src = int(gen.integers(self._n))
            d1 = self.bfs_distances(src)
            far = int(np.argmax(d1))
            d2 = self.bfs_distances(far)
            best = max(best, int(d2.max()))
        return best

    def with_edges(self, extra: Iterable[Tuple[int, int]]) -> "Topology":
        """A new topology with ``extra`` edges added."""
        return Topology(self._n, list(self.edges()) + list(extra))

    def adjacency_sets(self) -> List[Set[int]]:
        """Mutable copy of adjacency (for the overlay layer)."""
        return [set(neigh) for neigh in self._adj]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Topology(n={self._n}, edges={self._edge_count})"


def _connect_components(n: int, edges: List[Tuple[int, int]], gen: np.random.Generator) -> List[Tuple[int, int]]:
    """Add random bridges so the edge list forms one component."""
    topo = Topology(n, edges)
    comps = topo.components()
    while len(comps) > 1:
        main = comps[0]
        for other in comps[1:]:
            u = int(gen.choice(sorted(main)))
            v = int(gen.choice(sorted(other)))
            edges.append((u, v))
        topo = Topology(n, edges)
        comps = topo.components()
    return edges


def random_graph(n: int, avg_degree: float = 6.0, rng: SeedLike = None) -> Topology:
    """Erdős–Rényi G(n, p) with ``p`` set to hit ``avg_degree``, made connected.

    Sampling is vectorized: we draw the upper-triangular adjacency mask
    in one call rather than looping over O(n^2) pairs.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if avg_degree < 0 or (n > 1 and avg_degree > n - 1):
        raise ValidationError(f"avg_degree must be in [0, n-1], got {avg_degree}")
    gen = as_generator(rng)
    if n == 1:
        return Topology(1, [])
    p = min(1.0, avg_degree / (n - 1))
    iu, ju = np.triu_indices(n, k=1)
    mask = gen.random(iu.shape[0]) < p
    edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
    edges = _connect_components(n, edges, gen)
    return Topology(n, edges)


def powerlaw_graph(n: int, m: int = 3, rng: SeedLike = None) -> Topology:
    """Barabási–Albert preferential attachment: each new node adds ``m`` edges.

    Uses the standard repeated-endpoint trick: attachment targets are
    drawn uniformly from the list of all edge endpoints so far, which
    realizes degree-proportional preference in O(1) per draw.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    gen = as_generator(rng)
    m = min(m, max(1, n - 1))
    if n <= m + 1:
        # Too small for attachment; return a clique.
        return Topology(n, [(u, v) for u in range(n) for v in range(u + 1, n)])
    # Seed: a connected ring over the first m+1 nodes.
    seed_nodes = m + 1
    edges: List[Tuple[int, int]] = [(i, (i + 1) % seed_nodes) for i in range(seed_nodes)]
    if seed_nodes == 2:
        edges = [(0, 1)]
    endpoints: List[int] = []
    for u, v in edges:
        endpoints.append(u)
        endpoints.append(v)
    for new in range(seed_nodes, n):
        targets: Set[int] = set()
        while len(targets) < m:
            pick = endpoints[int(gen.integers(len(endpoints)))]
            targets.add(pick)
        # Deterministic attachment order: set iteration would ride on
        # CPython's int-hash table layout, and endpoint order feeds the
        # next rounds' draws.
        for t in sorted(targets):
            edges.append((new, t))
            endpoints.append(new)
            endpoints.append(t)
    return Topology(n, edges)


def small_world_graph(n: int, k: int = 6, beta: float = 0.1, rng: SeedLike = None) -> Topology:
    """Watts–Strogatz ring lattice with rewiring probability ``beta``."""
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if k < 0 or k % 2 != 0:
        raise ValidationError(f"k must be a non-negative even integer, got {k}")
    if not 0.0 <= beta <= 1.0:
        raise ValidationError(f"beta must be in [0, 1], got {beta}")
    gen = as_generator(rng)
    if n <= k:
        return Topology(n, [(u, v) for u in range(n) for v in range(u + 1, n)])
    edge_set: Set[Tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            edge_set.add((min(u, v), max(u, v)))
    edges = sorted(edge_set)
    # Rewire the far endpoint of each lattice edge with probability beta.
    current: Set[Tuple[int, int]] = set(edges)
    for u, v in edges:
        if gen.random() >= beta:
            continue
        current.discard((u, v))
        # Pick a replacement avoiding self-loops and multi-edges.
        for _attempt in range(4 * n):
            w = int(gen.integers(n))
            cand = (min(u, w), max(u, w))
            if w != u and cand not in current:
                current.add(cand)
                break
        else:  # give up: restore the lattice edge
            current.add((u, v))
    final = _connect_components(n, sorted(current), gen)
    return Topology(n, final)


def gnutella_like(n: int, avg_degree: int = 6, rng: SeedLike = None) -> Topology:
    """The paper's default overlay: flat, unstructured, power-law degrees.

    Built as Barabási–Albert with ``m = avg_degree // 2`` (BA average
    degree is ``2m``).
    """
    m = max(1, avg_degree // 2)
    return powerlaw_graph(n, m=m, rng=rng)
