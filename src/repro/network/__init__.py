"""Peer-to-peer network substrate.

* :mod:`repro.network.topology` — from-scratch overlay graph generators
  (random, Barabási–Albert power-law, Watts–Strogatz) plus the
  Gnutella-like default used in the paper's evaluation.
* :mod:`repro.network.overlay` — live overlay state: membership,
  neighbor tables, and partner sampling for gossip.
* :mod:`repro.network.transport` — message transport on the DES with
  latency, loss, and link-failure injection.
* :mod:`repro.network.churn` — peer join/leave dynamics.
* :mod:`repro.network.flooding` — TTL-bounded flooding search (the
  unstructured query primitive).
* :mod:`repro.network.dht` — a Chord-like DHT ring used by the
  structured baselines (EigenTrust/PowerTrust) and the §7 extension.
"""

from repro.network.churn import ChurnModel
from repro.network.dht import ChordRing
from repro.network.flooding import FloodSearch
from repro.network.overlay import Overlay
from repro.network.topology import Topology, gnutella_like, powerlaw_graph, random_graph, small_world_graph
from repro.network.transport import LinkFailureModel, Message, Transport

__all__ = [
    "Topology",
    "random_graph",
    "powerlaw_graph",
    "small_world_graph",
    "gnutella_like",
    "Overlay",
    "Transport",
    "Message",
    "LinkFailureModel",
    "ChurnModel",
    "FloodSearch",
    "ChordRing",
]
