"""Transport-level reliability: per-send acks, bounded retry, suspicion.

The gossip payload itself is deliberately fire-and-forget — push-sum
tolerates proportional (x, w) loss, and *retrying* a delivered-but-
unacked half would duplicate mass and break the conservation invariant
the sanitizer arms.  What does need reliability is the *control plane*:
membership protocols (:mod:`repro.gossip.partnering`) probe peers,
request neighbor promotions, and exchange view shuffles — idempotent
messages whose occasional duplication is harmless but whose silent loss
leaves views stale and failures undetected.

:class:`ReliableTransport` wraps a :class:`~repro.network.transport.Transport`
with exactly that contract:

* every reliable send is wrapped in an envelope carrying a message id;
  the receiver acks the id back to the sender;
* a missing ack after ``ack_timeout`` triggers a resend, with the
  timeout stretched by ``backoff`` per attempt, up to ``max_retries``
  resends;
* after the last attempt times out the wrapper *gives up* and reports
  the destination to the ``on_give_up`` callback — the suspicion signal
  membership layers turn into active-view eviction and passive-view
  promotion.

The wrapper does not own transport registration (the DES engines
register one handler per node); instead the owning protocol forwards
incoming messages to :meth:`handle`, which consumes acks and reliable
envelopes and returns ``False`` for everything else.  Counters
(``retries``, ``gave_up``, ``acks_sent``) quantify the retry overhead
the resilience experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set

from repro.errors import ValidationError
from repro.network.transport import Message, Transport
from repro.utils.validation import check_positive

__all__ = ["ReliableEnvelope", "ReliableTransport"]

#: transport message kind of a reliable envelope
RELIABLE_KIND = "reliable"
#: transport message kind of an acknowledgement
ACK_KIND = "ack"


@dataclass(frozen=True)
class ReliableEnvelope:
    """Wire wrapper around a reliable payload."""

    #: wrapper-unique id acked back by the receiver
    msg_id: int
    #: the protocol's own message kind (e.g. ``"probe"``, ``"shuffle"``)
    kind: str
    #: the protocol payload, delivered to ``on_deliver`` verbatim
    payload: Any


@dataclass
class _Pending:
    """One un-acked reliable send."""

    src: int
    dst: int
    kind: str
    payload: Any
    size: int
    attempt: int = 0


class ReliableTransport:
    """Ack/retry wrapper over an unreliable :class:`Transport`.

    Parameters
    ----------
    transport:
        The underlying (lossy, failing) transport.
    ack_timeout:
        Simulated time to wait for an ack before resending; must exceed
        one round trip (2x max latency = 3x mean) or every send would
        spuriously retry.
    max_retries:
        Resend budget per message (0 = a single attempt, then give up).
    backoff:
        Multiplicative timeout stretch per attempt (attempt k waits
        ``ack_timeout * backoff**k``).
    on_deliver:
        Callback ``(msg, kind, payload)`` invoked for every reliable
        payload that arrives (``msg`` is the transport message, so
        handlers see src/dst).  Duplicate deliveries are possible when
        an ack is lost — payload semantics must be idempotent.
    on_give_up:
        Callback ``(src, dst, kind)`` invoked when a message exhausts
        its retries — the failure-suspicion signal.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        ack_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 2.0,
        on_deliver: Optional[Callable[[Message, str, Any], None]] = None,
        on_give_up: Optional[Callable[[int, int, str], None]] = None,
    ) -> None:
        min_rtt = 3.0 * transport.latency
        if ack_timeout is None:
            ack_timeout = max(2.0 * min_rtt, 1e-9)
        check_positive("ack_timeout", ack_timeout)
        if transport.latency > 0 and ack_timeout <= min_rtt:
            raise ValidationError(
                f"ack_timeout={ack_timeout} must exceed one round trip "
                f"({min_rtt}) or every send retries spuriously"
            )
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 1.0:
            raise ValidationError(f"backoff must be >= 1.0, got {backoff}")
        self.transport = transport
        self.sim = transport.sim
        self.ack_timeout = float(ack_timeout)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.on_deliver = on_deliver
        self.on_give_up = on_give_up
        self._next_id = 0
        self._pending: Dict[int, _Pending] = {}
        # -- retry-overhead accounting ----------------------------------
        self.sent = 0
        self.retries = 0
        self.acked = 0
        self.gave_up = 0
        self.acks_sent = 0
        self.duplicates = 0
        self._delivered_ids: Set[int] = set()

    # -- sending -----------------------------------------------------------

    def send(
        self, src: int, dst: int, payload: Any, *, kind: str = "data", size: int = 0
    ) -> int:
        """Send ``payload`` reliably; returns the tracking message id.

        The message is retried until acked or the retry budget runs
        out; the caller learns about the final failure only through
        ``on_give_up`` (fire-and-forget with supervision, the shape
        membership maintenance needs).
        """
        msg_id = self._next_id
        self._next_id += 1
        self._pending[msg_id] = _Pending(
            src=src, dst=dst, kind=kind, payload=payload, size=size
        )
        self.sent += 1
        self._attempt(msg_id)
        return msg_id

    def _attempt(self, msg_id: int) -> None:
        entry = self._pending.get(msg_id)
        if entry is None:
            return
        envelope = ReliableEnvelope(msg_id=msg_id, kind=entry.kind, payload=entry.payload)
        self.transport.send(
            entry.src, entry.dst, envelope, kind=RELIABLE_KIND, size=entry.size
        )
        delay = self.ack_timeout * (self.backoff ** entry.attempt)
        self.sim.call_in(delay, self._check_ack, msg_id, entry.attempt)

    def _check_ack(self, msg_id: int, attempt: int) -> None:
        entry = self._pending.get(msg_id)
        if entry is None or entry.attempt != attempt:
            return  # acked meanwhile, or a newer attempt owns the timer
        if entry.attempt >= self.max_retries:
            del self._pending[msg_id]
            self.gave_up += 1
            if self.on_give_up is not None:
                self.on_give_up(entry.src, entry.dst, entry.kind)
            return
        entry.attempt += 1
        self.retries += 1
        self._attempt(msg_id)

    # -- receiving ---------------------------------------------------------

    def handle(self, msg: Message) -> bool:
        """Consume a transport message if it belongs to this wrapper.

        Returns ``True`` for acks and reliable envelopes (handled here),
        ``False`` for anything else (the caller's own traffic).  The
        owning protocol calls this first in its transport handler.
        """
        if msg.kind == ACK_KIND:
            entry = self._pending.pop(int(msg.payload), None)
            if entry is not None:
                self.acked += 1
            return True
        if msg.kind != RELIABLE_KIND:
            return False
        envelope = msg.payload
        # Ack unconditionally — even a duplicate means the sender's ack
        # got lost and it is still waiting for one.
        self.transport.send(msg.dst, msg.src, envelope.msg_id, kind=ACK_KIND, size=8)
        self.acks_sent += 1
        if envelope.msg_id in self._delivered_ids:
            self.duplicates += 1
            return True  # retransmit of an already-delivered payload
        self._delivered_ids.add(envelope.msg_id)
        if self.on_deliver is not None:
            self.on_deliver(msg, envelope.kind, envelope.payload)
        return True

    # -- accounting --------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Reliable sends still awaiting an ack."""
        return len(self._pending)

    def overhead_messages(self) -> int:
        """Extra transport messages this wrapper caused (retries + acks)."""
        return self.retries + self.acks_sent

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ReliableTransport(sent={self.sent}, retries={self.retries}, "
            f"acked={self.acked}, gave_up={self.gave_up})"
        )
