"""Peer churn: exponential join/leave dynamics on an overlay.

The paper's design goals require GossipTrust to be "adaptive to peer
dynamics".  This model drives an :class:`~repro.network.overlay.Overlay`
with the standard M/M churn process: each live peer departs after an
exponential session time, each departed peer rejoins after an
exponential offline time.  Departure/arrival hooks let protocol layers
(e.g. the message-level gossip engine) react.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.network.overlay import Overlay
from repro.sim.engine import Simulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["ChurnModel"]


class ChurnModel:
    """Exponential session/offline churn over an overlay.

    Parameters
    ----------
    sim, overlay:
        The event kernel and overlay to drive.
    mean_session:
        Mean time a peer stays online before departing.
    mean_offline:
        Mean time a departed peer stays offline before rejoining
        (``None`` disables rejoin — pure departure churn).
    min_alive:
        Floor on the live population; departures that would go below it
        are skipped (the reputation system is meaningless on an empty
        overlay, and the paper's experiments never drain the network).
    """

    def __init__(
        self,
        sim: Simulator,
        overlay: Overlay,
        mean_session: float = 100.0,
        mean_offline: Optional[float] = 20.0,
        min_alive: int = 2,
        rng: SeedLike = None,
    ) -> None:
        check_positive("mean_session", mean_session)
        if mean_offline is not None:
            check_positive("mean_offline", mean_offline)
        self.sim = sim
        self.overlay = overlay
        self.mean_session = float(mean_session)
        self.mean_offline = None if mean_offline is None else float(mean_offline)
        self.min_alive = int(min_alive)
        self._rng = as_generator(rng)
        self.departures = 0
        self.rejoins = 0
        self._on_leave: List[Callable[[int], None]] = []
        self._on_join: List[Callable[[int], None]] = []
        self._started = False

    def on_leave(self, fn: Callable[[int], None]) -> None:
        """Register a callback invoked with the node id on each departure."""
        self._on_leave.append(fn)

    def on_join(self, fn: Callable[[int], None]) -> None:
        """Register a callback invoked with the node id on each rejoin."""
        self._on_join.append(fn)

    def start(self) -> None:
        """Schedule the initial departure timer for every live peer."""
        if self._started:
            return
        self._started = True
        for node in self.overlay.alive_nodes().tolist():
            self._schedule_departure(int(node))

    # -- internals -------------------------------------------------------

    def _schedule_departure(self, node: int) -> None:
        delay = float(self._rng.exponential(self.mean_session))
        self.sim.call_in(delay, self._depart, node)

    def _schedule_rejoin(self, node: int) -> None:
        if self.mean_offline is None:
            return
        delay = float(self._rng.exponential(self.mean_offline))
        self.sim.call_in(delay, self._rejoin, node)

    def _depart(self, node: int) -> None:
        if not self.overlay.is_alive(node):
            return  # already gone via some other path
        if self.overlay.alive_count <= self.min_alive:
            # Population floor: retry later instead of draining the net.
            self._schedule_departure(node)
            return
        self.overlay.leave(node)
        self.departures += 1
        for fn in self._on_leave:
            fn(node)
        self._schedule_rejoin(node)

    def _rejoin(self, node: int) -> None:
        if self.overlay.is_alive(node):
            return
        self.overlay.join(node)
        self.rejoins += 1
        for fn in self._on_join:
            fn(node)
        self._schedule_departure(node)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ChurnModel(session={self.mean_session}, offline={self.mean_offline}, "
            f"departures={self.departures}, rejoins={self.rejoins})"
        )
