"""Live overlay state: membership, neighbor tables, partner sampling.

An :class:`Overlay` starts from a static :class:`~repro.network.topology.Topology`
and then tracks dynamics: peers leave and rejoin (churn), and gossip
partners are sampled from the *live* population.  GossipTrust's random
partner choice ("choose a random node q", Algorithm 1 line 11) may pick
any live node, not only a direct neighbor — the paper allows "a neighbor
node or any other node" — so the overlay exposes both neighbor-restricted
and global sampling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import NetworkError, UnknownNodeError, ValidationError
from repro.network.topology import Topology
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Overlay"]


class Overlay:
    """Mutable overlay membership over a base topology.

    Parameters
    ----------
    topology:
        The initial overlay graph; all its nodes start alive.
    rng:
        Seed or generator for partner sampling and join wiring.
    """

    def __init__(self, topology: Topology, rng: SeedLike = None) -> None:
        self._topo = topology
        self._adj: List[Set[int]] = topology.adjacency_sets()
        self._alive: np.ndarray = np.ones(topology.n, dtype=bool)
        self._rng = as_generator(rng)
        self._alive_count = topology.n

    # -- membership -----------------------------------------------------

    @property
    def n(self) -> int:
        """Total node-id space (live + departed)."""
        return self._topo.n

    @property
    def alive_count(self) -> int:
        """Number of currently live nodes."""
        return self._alive_count

    def is_alive(self, node: int) -> bool:
        """Whether ``node`` is currently in the overlay."""
        self._check(node)
        return bool(self._alive[node])

    def alive_nodes(self) -> np.ndarray:
        """Array of live node ids, ascending."""
        return np.flatnonzero(self._alive)

    def alive_mask(self) -> np.ndarray:
        """Boolean liveness mask indexed by node id (copy)."""
        return self._alive.copy()

    def leave(self, node: int) -> None:
        """Remove ``node`` from the overlay (its edges become inactive)."""
        self._check(node)
        if not self._alive[node]:
            raise NetworkError(f"node {node} already left")
        self._alive[node] = False
        self._alive_count -= 1

    def join(self, node: int, wire_to: Optional[Sequence[int]] = None, degree: int = 3) -> None:
        """Re-admit ``node``; wire it to given peers or to random live ones.

        A rejoining peer keeps its old edges (to whichever endpoints are
        live) and additionally wires to ``degree`` random live peers if
        ``wire_to`` is not given — modelling bootstrap via a host cache.
        """
        self._check(node)
        if self._alive[node]:
            raise NetworkError(f"node {node} is already alive")
        self._alive[node] = True
        self._alive_count += 1
        if wire_to is None:
            live = [v for v in self.alive_nodes().tolist() if v != node]
            if live:
                k = min(degree, len(live))
                wire_to = self._rng.choice(live, size=k, replace=False).tolist()
            else:
                wire_to = []
        for peer in wire_to:
            self._check(peer)
            if peer == node:
                raise ValidationError("cannot wire a node to itself")
            if not self._alive[peer]:
                raise NetworkError(f"cannot wire to departed node {peer}")
            self._adj[node].add(peer)
            self._adj[peer].add(node)

    # -- neighbor / partner queries --------------------------------------

    def neighbors(self, node: int, *, live_only: bool = True) -> Tuple[int, ...]:
        """Neighbor ids of ``node`` (live ones only by default)."""
        self._check(node)
        if live_only:
            return tuple(sorted(v for v in self._adj[node] if self._alive[v]))
        return tuple(sorted(self._adj[node]))

    def degree(self, node: int, *, live_only: bool = True) -> int:
        """Number of (live) neighbors of ``node``."""
        return len(self.neighbors(node, live_only=live_only))

    def random_partner(self, node: int, *, neighbors_only: bool = False) -> Optional[int]:
        """Sample a gossip partner for ``node``.

        With ``neighbors_only=False`` (the paper's default semantics) the
        partner is uniform over all live nodes except ``node`` itself.
        Returns ``None`` when no candidate exists.
        """
        self._check(node)
        if neighbors_only:
            candidates = [v for v in self._adj[node] if self._alive[v]]
            if not candidates:
                return None
            return int(candidates[int(self._rng.integers(len(candidates)))])
        if self._alive_count <= 1:
            return None
        while True:
            pick = int(self._rng.integers(self.n))
            if pick != node and self._alive[pick]:
                return pick

    def random_partners(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized global partner sampling for many nodes at once.

        Used by the synchronous gossip engine: for each live node,
        samples a uniform live partner != itself.  Returns an array
        aligned with ``nodes``.
        """
        live = self.alive_nodes()
        if live.size <= 1:
            raise NetworkError("need >= 2 live nodes to gossip")
        picks = live[self._rng.integers(live.size, size=nodes.size)]
        clash = picks == nodes
        while np.any(clash):
            idx = np.flatnonzero(clash)
            picks[idx] = live[self._rng.integers(live.size, size=idx.size)]
            clash = picks == nodes
        return picks

    def live_subgraph(self) -> Topology:
        """The topology induced by live nodes (ids preserved)."""
        edges = [
            (u, v)
            for u in self.alive_nodes().tolist()
            for v in self._adj[u]
            if u < v and self._alive[v]
        ]
        return Topology(self.n, edges)

    def _check(self, node: int) -> None:
        if not 0 <= node < self._topo.n:
            raise UnknownNodeError(node)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Overlay(n={self.n}, alive={self._alive_count})"
