"""A Chord-like DHT ring.

The baselines GossipTrust is compared against (EigenTrust, PowerTrust)
"rely on the DHT mechanism to achieve scalability" (§2), and §7 notes
GossipTrust itself can be accelerated on a structured overlay.  This
module provides that substrate: consistent hashing on an ``m``-bit
identifier circle, finger tables, and O(log n) iterative lookup with hop
accounting.

Simplifications appropriate to a simulation substrate (documented, not
hidden): joins and leaves trigger a full finger-table rebuild for the
affected ring (O(n log n)) instead of running Chord's stabilization
protocol; lookups are computed synchronously and return hop counts
rather than scheduling per-hop messages.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import NetworkError, UnknownNodeError, ValidationError

__all__ = ["LookupResult", "ChordRing"]


@dataclass(frozen=True)
class LookupResult:
    """Result of a DHT lookup."""

    #: node (external id) responsible for the key
    owner: int
    #: ring hops taken from the issuing node to the owner
    hops: int
    #: path of external node ids traversed (including start and owner)
    path: Tuple[int, ...]


def _sha1_int(data: bytes, bits: int) -> int:
    """First ``bits`` bits of SHA-1(data) as an integer."""
    digest = hashlib.sha1(data).digest()
    return int.from_bytes(digest, "big") >> (160 - bits)


class ChordRing:
    """Chord identifier circle over external node ids.

    Parameters
    ----------
    nodes:
        External node ids to place on the ring (e.g. overlay indices).
    bits:
        Identifier width ``m``; the ring has ``2**m`` positions.

    Notes
    -----
    Ring ids are derived with SHA-1 so placement is deterministic across
    runs.  Hash collisions between nodes are resolved by salting with a
    collision counter (vanishingly rare at ``bits >= 32`` but handled so
    small test rings with tiny ``bits`` stay correct).
    """

    def __init__(self, nodes: Sequence[int], bits: int = 32) -> None:
        if bits < 3 or bits > 160:
            raise ValidationError(f"bits must be in [3, 160], got {bits}")
        if not nodes:
            raise ValidationError("ring needs at least one node")
        self.bits = int(bits)
        self.size = 1 << self.bits
        self._ring_of: Dict[int, int] = {}
        self._node_of: Dict[int, int] = {}
        for node in nodes:
            self._place(int(node))
        self._rebuild()
        self.lookups = 0
        self.total_hops = 0

    # -- membership ------------------------------------------------------

    def _place(self, node: int) -> None:
        if node in self._ring_of:
            raise NetworkError(f"node {node} already on ring")
        salt = 0
        while True:
            rid = _sha1_int(f"node:{node}:{salt}".encode(), self.bits)
            if rid not in self._node_of:
                break
            salt += 1
        self._ring_of[node] = rid
        self._node_of[rid] = node

    def _rebuild(self) -> None:
        """Recompute the sorted ring and every finger table."""
        self._sorted_rids: List[int] = sorted(self._node_of)
        self._fingers: Dict[int, List[int]] = {}
        for rid in self._sorted_rids:
            fingers = []
            for i in range(self.bits):
                start = (rid + (1 << i)) % self.size
                fingers.append(self._successor_rid(start))
            self._fingers[rid] = fingers

    def join(self, node: int) -> None:
        """Add ``node`` to the ring and rebuild routing state."""
        self._place(int(node))
        self._rebuild()

    def leave(self, node: int) -> None:
        """Remove ``node`` from the ring and rebuild routing state."""
        rid = self._ring_of.pop(int(node), None)
        if rid is None:
            raise UnknownNodeError(node)
        del self._node_of[rid]
        if not self._node_of:
            raise NetworkError("cannot remove the last ring node")
        self._rebuild()

    @property
    def nodes(self) -> Tuple[int, ...]:
        """External ids currently on the ring, in ring order."""
        return tuple(self._node_of[rid] for rid in self._sorted_rids)

    def ring_id(self, node: int) -> int:
        """Ring position of an external node id."""
        try:
            return self._ring_of[int(node)]
        except KeyError:
            raise UnknownNodeError(node) from None

    # -- key placement -----------------------------------------------------

    def key_id(self, key: object) -> int:
        """Ring position of an arbitrary hashable key."""
        return _sha1_int(f"key:{key!r}".encode(), self.bits)

    def _successor_rid(self, point: int) -> int:
        """First node ring-id at or clockwise after ``point``."""
        idx = bisect_left(self._sorted_rids, point)
        if idx == len(self._sorted_rids):
            idx = 0
        return self._sorted_rids[idx]

    def owner(self, key: object) -> int:
        """External id of the node responsible for ``key`` (successor rule)."""
        return self._node_of[self._successor_rid(self.key_id(key))]

    # -- routing ---------------------------------------------------------

    @staticmethod
    def _in_interval(x: int, a: int, b: int, size: int) -> bool:
        """Whether x lies in the clockwise-open interval (a, b] on the circle."""
        if a == b:
            return True  # full circle
        if a < b:
            return a < x <= b
        return x > a or x <= b

    def lookup(self, start: int, key: object) -> LookupResult:
        """Iterative Chord lookup of ``key`` starting at node ``start``.

        Each hop forwards to the closest preceding finger of the target,
        exactly as in the Chord paper; hop count is O(log n) w.h.p.
        """
        start = int(start)
        if start not in self._ring_of:
            raise UnknownNodeError(start)
        target = self.key_id(key)
        owner_rid = self._successor_rid(target)
        current = self._ring_of[start]
        path = [start]
        hops = 0
        guard = 4 * self.bits + len(self._sorted_rids)
        while current != owner_rid:
            if self._in_interval(owner_rid, current, self._fingers[current][0], self.size):
                nxt = self._fingers[current][0]  # immediate successor owns it
            else:
                nxt = self._closest_preceding(current, target)
                if nxt == current:
                    nxt = self._fingers[current][0]
            current = nxt
            hops += 1
            path.append(self._node_of[current])
            if hops > guard:  # pragma: no cover - routing invariant violated
                raise NetworkError("lookup failed to converge; ring state corrupt")
        self.lookups += 1
        self.total_hops += hops
        return LookupResult(owner=self._node_of[owner_rid], hops=hops, path=tuple(path))

    def _closest_preceding(self, current: int, target: int) -> int:
        for finger in reversed(self._fingers[current]):
            if finger != current and self._in_interval(
                finger, current, (target - 1) % self.size, self.size
            ):
                return finger
        return current

    @property
    def mean_hops(self) -> float:
        """Average hops per lookup so far (NaN before any lookup)."""
        if self.lookups == 0:
            return float("nan")
        return self.total_hops / self.lookups

    def __len__(self) -> int:
        return len(self._node_of)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ChordRing(nodes={len(self)}, bits={self.bits})"
