"""Closed-loop service simulation: ingest → aggregate → serve.

Drives a :class:`~repro.service.reputation.ReputationService` over a
synthetic power-law feedback network through a sequence of aggregation
epochs, measuring what a long-lived deployment cares about:

* sustained **ingest throughput** (feedback events absorbed per second);
* **query throughput** and **served-score staleness** (pending feedback
  events behind every answered lookup);
* the **incremental-vs-scratch** comparison — after the power-node set
  stabilizes and only a small fraction of trust rows change per epoch,
  a warm-started epoch against a from-scratch cold
  :meth:`~repro.core.gossiptrust.GossipTrust.run` on the *same* matrix
  and the *same* power-node set, both converging to the same vector.

Warm-start only pays once the mixed operator is stable: re-selecting
power nodes moves the fixed point of ``(1-α)·S^T v + α·P``, so the
simulation runs stabilization epochs until the power-node set stops
churning before it starts measuring.  This mirrors the steady state of
a real deployment, where the highest-reputation peers change rarely.

Shared by the ``serve-sim`` CLI subcommand and the ``service`` section
of ``tools/bench_runner.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.distributions.powerlaw import FeedbackCountDistribution
from repro.errors import ValidationError
from repro.gossip.convergence import average_relative_error
from repro.metrics.telemetry import Stopwatch
from repro.service.reputation import ReputationService, ServiceEpochReport
from repro.trust.feedback import FeedbackLedger
from repro.types import TransactionOutcome
from repro.utils.rng import RngStreams, SeedLike, as_generator

__all__ = [
    "ServeSimConfig",
    "ServeSimReport",
    "populate_ledger",
    "simulate_service",
]


def populate_ledger(
    ledger: FeedbackLedger,
    *,
    feedback_dist: Optional[FeedbackCountDistribution] = None,
    mean_balance: float = 100.0,
    rng: SeedLike = None,
) -> int:
    """Fill a ledger with a mature network's transaction history.

    Partner structure mirrors
    :func:`~repro.experiments.synthetic.synthetic_trust_matrix` (per-node
    feedback counts from the bounded power law, distinct uniform
    partners), but pair scores are EigenTrust *satisfaction balances* —
    integer ``sat - unsat`` counts, geometric with mean ``mean_balance``
    — rather than uniform reals.  Deep balances are the long-lived
    service's operating regime: the deeper the history, the smaller the
    relative dent of a single ±1 feedback event and the closer the
    next epoch starts to the previous fixed point.  Returns the number
    of (rater, ratee) pairs written.
    """
    n = ledger.n
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    if not mean_balance >= 1:
        raise ValidationError(f"mean_balance must be >= 1, got {mean_balance}")
    gen = as_generator(rng)
    dist = feedback_dist or FeedbackCountDistribution()
    counts = np.minimum(dist.sample_counts(n, gen), n - 1)
    pairs = 0
    for i in range(n):
        k = int(counts[i])
        partners = gen.choice(n - 1, size=k, replace=False)
        partners[partners >= i] += 1
        balances = 1 + gen.geometric(1.0 / mean_balance, size=k)
        for j, balance in zip(partners.tolist(), balances.tolist()):
            ledger.set_score(i, j, float(balance))
        pairs += k
    return pairs


@dataclass(frozen=True)
class ServeSimConfig:
    """Parameters of one service simulation."""

    #: network size
    n: int = 200
    #: measured ingest→query→aggregate epochs after stabilization
    epochs: int = 5
    #: cap on stabilization epochs waiting for the power-node set to settle
    max_warmup_epochs: int = 12
    #: feedback events streamed in per measured epoch
    events_per_epoch: int = 50
    #: fraction of rater rows those events are concentrated on
    dirty_fraction: float = 0.01
    #: score lookups served per measured epoch (staleness is sampled here)
    queries_per_epoch: int = 500
    #: probability an event is rated satisfactory
    authentic_rate: float = 0.9
    #: mean transaction balance of the bootstrap ledger (history depth)
    mean_balance: float = 100.0
    #: ``b`` of the double-buffered Bloom serving stores
    bracket_bits: int = 7
    #: root seed for network generation, event stream, and aggregation
    seed: int = 0
    #: aggregation parameters (defaults to paper parameters, oracle off)
    gossip: Optional[GossipTrustConfig] = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValidationError(f"n must be >= 2, got {self.n}")
        if self.epochs < 1:
            raise ValidationError(f"epochs must be >= 1, got {self.epochs}")
        if not 0 < self.dirty_fraction <= 1:
            raise ValidationError(
                f"dirty_fraction must be in (0, 1], got {self.dirty_fraction}"
            )
        if self.events_per_epoch < 1:
            raise ValidationError(
                f"events_per_epoch must be >= 1, got {self.events_per_epoch}"
            )
        if self.queries_per_epoch < 0:
            raise ValidationError(
                f"queries_per_epoch must be >= 0, got {self.queries_per_epoch}"
            )


@dataclass(frozen=True)
class ServeSimReport:
    """Everything one closed-loop simulation measured."""

    config: ServeSimConfig
    #: epochs burned before the power-node set stopped churning
    warmup_epochs: int
    #: whether the set actually settled within the warmup budget
    power_nodes_stable: bool
    #: per-epoch reports for the measured epochs (oldest first)
    epoch_reports: List[ServiceEpochReport] = field(default_factory=list)
    #: sustained feedback-ingest throughput (events per second)
    ingest_events_per_s: float = 0.0
    #: sustained lookup throughput against the Bloom serving store
    queries_per_s: float = 0.0
    #: mean pending-events staleness stamped on served scores
    mean_staleness_events: float = 0.0
    #: worst staleness stamped on any served score
    max_staleness_events: int = 0
    # -- incremental vs from-scratch, same matrix + same power nodes --
    #: mean cycles per measured warm epoch
    warm_cycles: float = 0.0
    #: mean gossip steps per measured warm epoch
    warm_steps: float = 0.0
    #: mean wall seconds per measured warm epoch (patch + run + rebuild)
    warm_wall_s: float = 0.0
    #: cycles a cold from-scratch run on the final matrix needed
    cold_cycles: int = 0
    #: gossip steps the cold run needed
    cold_steps: int = 0
    #: wall seconds of the cold run (aggregation only)
    cold_wall_s: float = 0.0
    #: average relative error between warm and cold converged vectors
    vector_error: float = 0.0
    #: serving-store compression ratio of the final snapshot
    store_compression: float = 0.0

    @property
    def wall_speedup(self) -> float:
        """cold wall time / warm wall time (> 1 means warm is faster)."""
        if self.warm_wall_s <= 0:
            return float("inf") if self.cold_wall_s > 0 else 1.0
        return self.cold_wall_s / self.warm_wall_s

    @property
    def step_speedup(self) -> float:
        """cold gossip steps / warm gossip steps."""
        if self.warm_steps <= 0:
            return float("inf") if self.cold_steps > 0 else 1.0
        return self.cold_steps / self.warm_steps


def _stream_events(
    service: ReputationService,
    cfg: ServeSimConfig,
    gen: np.random.Generator,
) -> float:
    """Ingest one epoch's feedback batch; returns the wall seconds spent.

    Events are concentrated on a small dirty pool of rater rows —
    ``dirty_fraction`` of the network — matching the differential
    regime where most of the trust matrix is unchanged between epochs.
    """
    n = cfg.n
    pool_size = max(1, int(round(cfg.dirty_fraction * n)))
    pool = gen.choice(n, size=pool_size, replace=False)
    raters = pool[gen.integers(0, pool_size, size=cfg.events_per_epoch)]
    ratees = gen.integers(0, n - 1, size=cfg.events_per_epoch)
    ratees[ratees >= raters] += 1
    authentic = gen.random(cfg.events_per_epoch) < cfg.authentic_rate
    watch = Stopwatch()
    for rater, ratee, ok in zip(raters.tolist(), ratees.tolist(), authentic.tolist()):
        service.ingest(
            rater,
            ratee,
            TransactionOutcome.AUTHENTIC if ok else TransactionOutcome.INAUTHENTIC,
        )
    return watch.elapsed()


def simulate_service(config: Optional[ServeSimConfig] = None) -> ServeSimReport:
    """Run the full closed loop and measure it.

    Phases:

    1. **bootstrap** — populate the ledger synthetically and run the
       cold first epoch (full matrix build, uniform start);
    2. **stabilization** — re-run epochs until the power-node set stops
       churning (the warm-start fixed point is only stationary then);
    3. **measured epochs** — per epoch: stream a concentrated feedback
       batch, serve queries (sampling staleness), re-aggregate warm;
    4. **scratch comparison** — one final warm epoch against a cold
       from-scratch :meth:`GossipTrust.run` on the identical matrix and
       power-node set, checking both converge to the same vector.
    """
    cfg = config if config is not None else ServeSimConfig()
    gen = RngStreams(cfg.seed).get("serve-sim")
    gossip_cfg = cfg.gossip or GossipTrustConfig(
        n=cfg.n, seed=cfg.seed, compute_reference=False
    )
    service = ReputationService(
        cfg.n, gossip_cfg, bracket_bits=cfg.bracket_bits, rng=cfg.seed
    )
    populate_ledger(service.ledger, mean_balance=cfg.mean_balance, rng=gen)

    # Phase 1-2: cold bootstrap, then let the power-node set settle.
    service.run_epoch()
    warmup = 1
    stable = False
    for _ in range(cfg.max_warmup_epochs):
        report = service.run_epoch()
        warmup += 1
        if report.power_node_churn == 0.0:  # noqa: GT004 -- churn is a count ratio
            stable = True
            break

    # Phase 3: measured ingest → query → aggregate epochs.
    measured: List[ServiceEpochReport] = []
    ingest_seconds = 0.0
    query_seconds = 0.0
    staleness_sum = 0
    staleness_max = 0
    queries = 0
    for _ in range(cfg.epochs):
        ingest_seconds += _stream_events(service, cfg, gen)
        if cfg.queries_per_epoch:
            nodes = gen.integers(0, cfg.n, size=cfg.queries_per_epoch)
            watch = Stopwatch()
            for node in nodes.tolist():
                served = service.lookup(node)
                staleness_sum += served.pending_events
                staleness_max = max(staleness_max, served.pending_events)
            query_seconds += watch.elapsed()
            queries += cfg.queries_per_epoch
        measured.append(service.run_epoch())

    # Phase 4: the same matrix and power-node set, warm vs from-scratch.
    # The warm side of the comparison is the *mean* measured epoch (all
    # start near the fixed point); the cold side runs on the final
    # matrix with the power nodes the final warm epoch used, so both
    # aggregate the identical operator and must meet at its fixed point.
    ingest_seconds += _stream_events(service, cfg, gen)
    power_before = service.power_nodes
    warm = service.run_epoch()
    measured.append(warm)
    matrix = service.matrix
    assert matrix is not None
    cold_system = GossipTrust(
        matrix, gossip_cfg, power_nodes=power_before, rng=gen
    )
    watch = Stopwatch()
    cold = cold_system.run(raise_on_budget=False, compute_reference=False)
    cold_wall = watch.elapsed()
    events = cfg.events_per_epoch * (cfg.epochs + 1)
    return ServeSimReport(
        config=cfg,
        warmup_epochs=warmup,
        power_nodes_stable=stable,
        epoch_reports=measured,
        ingest_events_per_s=events / ingest_seconds if ingest_seconds > 0 else 0.0,
        queries_per_s=queries / query_seconds if query_seconds > 0 else 0.0,
        mean_staleness_events=staleness_sum / queries if queries else 0.0,
        max_staleness_events=staleness_max,
        warm_cycles=float(np.mean([r.cycles for r in measured])),
        warm_steps=float(np.mean([r.gossip_steps for r in measured])),
        warm_wall_s=float(np.mean([r.wall_time_s for r in measured])),
        cold_cycles=cold.cycles,
        cold_steps=cold.total_gossip_steps,
        cold_wall_s=cold_wall,
        vector_error=average_relative_error(service.scores(), cold.vector),
        store_compression=service.stats().store.compression_ratio,
    )
