"""Long-lived reputation service: incremental re-aggregation.

:class:`ReputationService` keeps global reputation *maintained* instead
of recomputed — streaming feedback ingest, dirty-row trust-matrix
patching, warm-started aggregation epochs, and double-buffered Bloom
serving.  :func:`simulate_service` drives the closed loop over a
synthetic network for the ``serve-sim`` CLI subcommand and benchmarks.
"""

from repro.service.reputation import (
    ReputationService,
    ServedScore,
    ServiceEpochReport,
    ServiceStats,
)
from repro.service.simulate import (
    ServeSimConfig,
    ServeSimReport,
    populate_ledger,
    simulate_service,
)

__all__ = [
    "ReputationService",
    "ServedScore",
    "ServiceEpochReport",
    "ServiceStats",
    "ServeSimConfig",
    "ServeSimReport",
    "populate_ledger",
    "simulate_service",
]
