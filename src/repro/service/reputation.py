"""The long-lived reputation service: maintained, not recomputed.

The paper's cycle structure recomputes global reputation from scratch
each aggregation round.  A production deployment instead ingests a
continuous feedback stream and must keep serving scores while it
re-aggregates — the regime where differential-style aggregation (Gupta
& Singh, arXiv:1210.4301) pays off: on a near-converged network only
the *changes* need work.

:class:`ReputationService` is that service shape, one facade over four
refactored layers:

* **ingest** — feedback events land in a
  :class:`~repro.trust.feedback.FeedbackLedger` whose dirty-row
  tracking remembers exactly which raters changed;
* **delta application** — each epoch drains the dirty set and patches
  the normalized :class:`~repro.trust.matrix.TrustMatrix` via
  :meth:`~repro.trust.matrix.TrustMatrix.apply_row_deltas` (row-level
  cache invalidation, no full rebuild);
* **warm-started aggregation** —
  :meth:`~repro.core.gossiptrust.GossipTrust.run` iterates from the
  previous epoch's converged vector instead of uniform, so a
  near-converged network finishes in one or two cycles instead of ten;
* **serving** — every epoch rebuilds the *standby*
  :class:`~repro.storage.reputation_store.BloomReputationStore` of a
  double-buffered pair and swaps it in atomically, so score reads
  (:meth:`ReputationService.lookup`) never block on, and are never
  blocked by, aggregation.

Every served score carries a staleness stamp: the epoch it was
aggregated in plus the number of feedback events ingested since that
snapshot was published.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust, GossipTrustResult
from repro.errors import (
    ConvergenceError,
    InvariantViolation,
    NetworkError,
    ValidationError,
)
from repro.metrics.telemetry import Stopwatch
from repro.storage.reputation_store import BloomReputationStore, StorageReport
from repro.trust.feedback import FeedbackLedger
from repro.trust.matrix import TrustMatrix
from repro.types import TransactionOutcome
from repro.utils.rng import SeedLike

__all__ = ["ServedScore", "ServiceEpochReport", "ServiceStats", "ReputationService"]


@dataclass(frozen=True)
class ServedScore:
    """One score answered by the serving layer, with its staleness stamp."""

    #: the peer the score is about
    node: int
    #: bracket-quantized score from the Bloom serving store
    score: float
    #: aggregation epoch the serving snapshot was computed in
    epoch: int
    #: feedback events ingested since that snapshot (staleness measure)
    pending_events: int


@dataclass(frozen=True)
class ServiceEpochReport:
    """What one :meth:`ReputationService.run_epoch` call did and cost."""

    #: 1-based epoch number (matches ``GossipTrustResult.epoch``)
    epoch: int
    #: feedback events absorbed into this epoch's matrix
    events_absorbed: int
    #: trust-matrix rows patched (n on the initial full build)
    dirty_rows: int
    #: whether aggregation warm-started from the previous vector
    warm_started: bool
    #: aggregation cycles to delta convergence
    cycles: int
    #: total gossip steps across those cycles
    gossip_steps: int
    #: whether the run met the delta criterion within budget
    converged: bool
    #: fraction of the power-node set replaced at the end of the epoch
    power_node_churn: float
    #: wall-clock seconds for the whole epoch (drain + patch + run + rebuild)
    wall_time_s: float
    #: gossip-vs-exact error when the oracle ran (None otherwise)
    aggregation_error: Optional[float] = None
    #: aggregation raised and the service kept serving the stale snapshot
    failed: bool = False
    #: the attempt was skipped because a failure backoff is in effect
    skipped: bool = False
    #: stringified aggregation error when ``failed`` (None otherwise)
    error: Optional[str] = None


@dataclass(frozen=True)
class ServiceStats:
    """Cumulative service counters (cheap to read at any time)."""

    n: int
    epoch: int
    events_ingested: int
    events_pending: int
    total_cycles: int
    total_gossip_steps: int
    #: serving-store accounting for the live snapshot
    store: StorageReport


class ReputationService:
    """Long-lived reputation aggregation with incremental re-aggregation.

    Parameters
    ----------
    n:
        Number of peers.
    config:
        Aggregation parameters; defaults to paper parameters with the
        exact-reference oracle off (a service does not pay O(n·cycles)
        for error reporting on every epoch).
    bracket_bits:
        ``b`` of the Bloom serving stores (``2^b`` score brackets).
    store_error_rate:
        Per-bracket Bloom false-positive target of the serving stores.
    rng:
        Root seed material for the aggregation system (defaults to
        ``config.seed``).

    Example
    -------
    >>> from repro.service import ReputationService
    >>> from repro.types import TransactionOutcome
    >>> svc = ReputationService(4, rng=7)
    >>> for rater, ratee in [(0, 1), (1, 2), (2, 0), (3, 0)]:
    ...     svc.ingest(rater, ratee, TransactionOutcome.AUTHENTIC)
    >>> report = svc.run_epoch()
    >>> svc.lookup(0).epoch
    1
    """

    def __init__(
        self,
        n: int,
        config: Optional[GossipTrustConfig] = None,
        *,
        bracket_bits: int = 7,
        store_error_rate: float = 0.01,
        rng: SeedLike = None,
    ) -> None:
        if config is None:
            config = GossipTrustConfig(n=n, compute_reference=False)
        if config.n != n:
            raise ValidationError(f"config.n={config.n} does not match n={n}")
        self.n = int(n)
        self.config = config
        self.ledger = FeedbackLedger(n)
        self._rng: SeedLike = rng
        self._matrix: Optional[TrustMatrix] = None
        self._system: Optional[GossipTrust] = None
        self._vector: Optional[np.ndarray] = None
        self._epoch = 0
        self._pending = 0
        self._ingested = 0
        self._total_cycles = 0
        self._total_steps = 0
        self._epoch_reports: List[ServiceEpochReport] = []
        # Double-buffered serving stores: lookups read the serving
        # member while run_epoch rebuilds the standby, then the roles
        # swap — reads never see a store mid-build.
        self._stores = (
            BloomReputationStore(bracket_bits, error_rate=store_error_rate),
            BloomReputationStore(bracket_bits, error_rate=store_error_rate),
        )
        self._serving: Optional[int] = None
        # Failure backoff: consecutive aggregation failures double the
        # number of run_epoch calls skipped before the next attempt.
        self._failures = 0
        self._backoff_skip = 0

    # -- streaming ingest --------------------------------------------------

    def ingest(
        self,
        rater: int,
        ratee: int,
        outcome: TransactionOutcome,
        *,
        time: float = 0.0,
    ) -> None:
        """Record one rated transaction (EigenTrust ±1 convention)."""
        self.ledger.record_transaction(rater, ratee, outcome, time=time)
        self._pending += 1
        self._ingested += 1

    def ingest_score(self, rater: int, ratee: int, delta: float) -> None:
        """Add a raw score delta to one (rater, ratee) pair."""
        self.ledger.add_score(rater, ratee, delta)
        self._pending += 1
        self._ingested += 1

    def ingest_batch(
        self, events: Iterable[Tuple[int, int, TransactionOutcome]]
    ) -> int:
        """Record many transactions; returns the number ingested."""
        count = 0
        for rater, ratee, outcome in events:
            self.ingest(rater, ratee, outcome)
            count += 1
        return count

    # -- aggregation epochs ------------------------------------------------

    def run_epoch(
        self,
        *,
        compute_reference: Optional[bool] = None,
        raise_on_budget: bool = False,
        on_failure: str = "serve_stale",
    ) -> ServiceEpochReport:
        """Absorb pending feedback and publish a new serving snapshot.

        One epoch is: drain the ledger's dirty rows, patch the trust
        matrix (full build on the very first epoch), run warm-started
        aggregation from the previous epoch's vector, rebuild the
        standby Bloom store from the converged vector, and swap it into
        serving.  Safe to call with no pending feedback — the epoch then
        just re-converges (typically in one cycle) and republishes.

        Failure policy (``on_failure="serve_stale"``, the default): if
        aggregation raises (sanitizer violation, convergence blow-up,
        network fault), the service does **not** propagate the error —
        the previous snapshot keeps serving, lookups keep answering
        with their staleness stamp counting the unabsorbed events, and
        the epoch report comes back with ``failed=True``.  Consecutive
        failures arm an exponential backoff: the next ``2^(k-1)`` (up to
        8) ``run_epoch`` calls are skipped (``skipped=True``) before
        aggregation is attempted again.  ``on_failure="raise"`` restores
        the propagate-everything behaviour.
        """
        if on_failure not in ("serve_stale", "raise"):
            raise ValidationError(
                f"on_failure must be 'serve_stale' or 'raise', got {on_failure!r}"
            )
        watch = Stopwatch()
        if self._backoff_skip > 0 and on_failure == "serve_stale":
            self._backoff_skip -= 1
            report = ServiceEpochReport(
                epoch=self._epoch,
                events_absorbed=0,
                dirty_rows=0,
                warm_started=False,
                cycles=0,
                gossip_steps=0,
                converged=False,
                power_node_churn=0.0,
                wall_time_s=watch.elapsed(),
                skipped=True,
            )
            self._epoch_reports.append(report)
            return report
        absorbed = self._pending
        self._pending = 0
        if self._matrix is None:
            # First epoch: one full normalization of everything the
            # ledger holds; deltas start from the next epoch.
            self.ledger.clear_dirty()
            self._matrix = TrustMatrix.from_ledger(self.ledger)
            self._system = GossipTrust(
                self._matrix,
                self.config,
                rng=self._rng if self._rng is not None else self.config.seed,
            )
            dirty = self.n
        else:
            deltas = self.ledger.drain_dirty()
            if deltas:
                self._matrix.apply_row_deltas(deltas)
            dirty = len(deltas)
        assert self._system is not None
        prev_power = self._system.power_nodes
        try:
            result = self._system.run(
                v0=self._vector,
                epoch=self._epoch + 1,
                raise_on_budget=raise_on_budget,
                compute_reference=compute_reference,
            )
        except (ConvergenceError, InvariantViolation, NetworkError) as exc:
            if on_failure == "raise":
                raise
            # Serve stale: the drained deltas stay absorbed in the
            # matrix (the retry re-aggregates them); the pending count
            # is restored so staleness stamps keep counting every event
            # the serving snapshot has not seen.
            self._pending += absorbed
            self._failures += 1
            self._backoff_skip = min(2 ** (self._failures - 1), 8)
            report = ServiceEpochReport(
                epoch=self._epoch,
                events_absorbed=0,
                dirty_rows=dirty,
                warm_started=False,
                cycles=0,
                gossip_steps=0,
                converged=False,
                power_node_churn=0.0,
                wall_time_s=watch.elapsed(),
                failed=True,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._epoch_reports.append(report)
            return report
        self._failures = 0
        self._backoff_skip = 0
        self._epoch = result.epoch
        self._vector = result.vector
        self._total_cycles += result.cycles
        self._total_steps += result.total_gossip_steps
        churn = self._power_churn(prev_power, result)
        self._publish(result.vector)
        report = ServiceEpochReport(
            epoch=result.epoch,
            events_absorbed=absorbed,
            dirty_rows=dirty,
            warm_started=result.warm_started,
            cycles=result.cycles,
            gossip_steps=result.total_gossip_steps,
            converged=result.converged,
            power_node_churn=churn,
            wall_time_s=watch.elapsed(),
            aggregation_error=result.aggregation_error,
        )
        self._epoch_reports.append(report)
        return report

    @staticmethod
    def _power_churn(
        prev: frozenset, result: GossipTrustResult
    ) -> float:
        """Fraction of the power-node set replaced by this epoch."""
        new = result.power_nodes
        if not new:
            return 0.0
        return 1.0 - len(new & prev) / len(new)

    def _publish(self, vector: np.ndarray) -> None:
        """Rebuild the standby store and swap it into serving."""
        standby = 0 if self._serving != 0 else 1
        self._stores[standby].build(vector)
        self._serving = standby

    # -- serving -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epochs published so far (0 = nothing servable yet)."""
        return self._epoch

    @property
    def ready(self) -> bool:
        """Whether at least one epoch has been published."""
        return self._serving is not None

    @property
    def pending_events(self) -> int:
        """Feedback events ingested since the serving snapshot."""
        return self._pending

    @property
    def matrix(self) -> Optional[TrustMatrix]:
        """The live normalized trust matrix (None before the first epoch)."""
        return self._matrix

    @property
    def power_nodes(self) -> FrozenSet[int]:
        """Power-node set installed for the *next* aggregation round."""
        if self._system is None:
            return frozenset()
        return self._system.power_nodes

    def lookup(self, node: int) -> ServedScore:
        """Serve one (quantized) score from the live Bloom snapshot."""
        if self._serving is None:
            raise ValidationError("service has published no epoch yet")
        if not 0 <= node < self.n:
            raise ValidationError(f"node {node} out of range [0, {self.n})")
        value = self._stores[self._serving].lookup(node)
        return ServedScore(
            node=int(node),
            score=value,
            epoch=self._epoch,
            pending_events=self._pending,
        )

    def exact_score(self, node: int) -> float:
        """The un-quantized score from the last published vector."""
        if self._vector is None:
            raise ValidationError("service has published no epoch yet")
        if not 0 <= node < self.n:
            raise ValidationError(f"node {node} out of range [0, {self.n})")
        return float(self._vector[node])

    def scores(self) -> np.ndarray:
        """Copy of the last published reputation vector."""
        if self._vector is None:
            raise ValidationError("service has published no epoch yet")
        return self._vector.copy()

    def top(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` highest-reputation peers from the published vector."""
        if self._vector is None:
            raise ValidationError("service has published no epoch yet")
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        k = min(k, self.n)
        idx = np.argpartition(self._vector, -k)[-k:]
        idx = idx[np.argsort(self._vector[idx])[::-1]]
        return [(int(i), float(self._vector[i])) for i in idx]

    # -- accounting --------------------------------------------------------

    @property
    def epoch_reports(self) -> List[ServiceEpochReport]:
        """Per-epoch reports, oldest first."""
        return list(self._epoch_reports)

    def stats(self) -> ServiceStats:
        """Cumulative counters plus the live store's accounting."""
        store = (
            self._stores[self._serving].report()
            if self._serving is not None
            else BloomReputationStore().report()
        )
        return ServiceStats(
            n=self.n,
            epoch=self._epoch,
            events_ingested=self._ingested,
            events_pending=self._pending,
            total_cycles=self._total_cycles,
            total_gossip_steps=self._total_steps,
            store=store,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ReputationService(n={self.n}, epoch={self._epoch}, "
            f"pending={self._pending})"
        )
