"""GossipTrust — gossip-based reputation aggregation for unstructured P2P networks.

A full reproduction of Zhou & Hwang, *Gossip-based Reputation
Aggregation for Unstructured Peer-to-Peer Networks* (IPDPS 2007),
including the push-sum gossip protocol, power-node leverage, the
unstructured overlay and file-sharing workload it is evaluated on, and
the EigenTrust / PowerTrust / NoTrust baselines.

Quickstart
----------
>>> import numpy as np
>>> from repro import GossipTrust, GossipTrustConfig, TrustMatrix
>>> raw = np.array([[0, 4, 1], [3, 0, 1], [2, 2, 0]], dtype=float)
>>> S = TrustMatrix.from_dense_raw(raw)
>>> result = GossipTrust(S, GossipTrustConfig(n=3, alpha=0.0, seed=1)).run()
>>> result.converged
True

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
regenerators of every table and figure in the paper.
"""

from repro.core.aggregation import ExactAggregation, exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust, GossipTrustResult
from repro.core.power_nodes import PowerNodeSelector
from repro.crypto.secure_transport import SecureTransport
from repro.errors import ReproError
from repro.gossip.async_engine import AsyncMessageGossipEngine
from repro.gossip.base import CycleEngine, GossipCycleResult
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.factory import engine_names, make_engine, register_engine
from repro.gossip.message_engine import MessageGossipEngine
from repro.gossip.pushsum import push_sum, scripted_push_sum
from repro.gossip.structured import StructuredAggregationEngine
from repro.metrics.telemetry import CycleRecord, CycleTelemetry
from repro.trust.feedback import FeedbackLedger
from repro.trust.matrix import TrustMatrix
from repro.trust.qof import QofWeightedAggregation, feedback_quality
from repro.types import PeerClass, ReputationVector, TransactionOutcome
from repro.workload.object_reputation import ObjectReputation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GossipTrust",
    "GossipTrustConfig",
    "GossipTrustResult",
    "PowerNodeSelector",
    "ExactAggregation",
    "exact_global_reputation",
    "CycleEngine",
    "GossipCycleResult",
    "make_engine",
    "engine_names",
    "register_engine",
    "CycleRecord",
    "CycleTelemetry",
    "SynchronousGossipEngine",
    "MessageGossipEngine",
    "AsyncMessageGossipEngine",
    "StructuredAggregationEngine",
    "push_sum",
    "scripted_push_sum",
    "TrustMatrix",
    "FeedbackLedger",
    "ReputationVector",
    "PeerClass",
    "TransactionOutcome",
    "ReproError",
    "SecureTransport",
    "QofWeightedAggregation",
    "feedback_quality",
    "ObjectReputation",
]
