"""Shared value types used across the GossipTrust subsystems.

These are deliberately small, immutable records.  Hot numerical paths do
*not* use these objects element-wise — the vectorized engines keep state
in NumPy arrays — but protocol-level code (the message engine, the
overlay, the experiments) passes these around for clarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple

__all__ = [
    "NodeId",
    "GossipPair",
    "Triplet",
    "ReputationVector",
    "PeerClass",
    "TransactionOutcome",
]

#: Node identifier.  Nodes are indexed ``0 .. n-1`` in every engine.
NodeId = int


class PeerClass(Enum):
    """Behavioral class of a peer in a threat-model scenario."""

    HONEST = "honest"
    #: issues dishonest feedback and corrupts services, acting alone
    MALICIOUS_INDEPENDENT = "malicious_independent"
    #: member of a collusion group boosting each other's scores
    MALICIOUS_COLLUSIVE = "malicious_collusive"
    #: selected power node for the current aggregation round
    POWER = "power"


class TransactionOutcome(Enum):
    """Result of a single P2P transaction (e.g. a file download)."""

    AUTHENTIC = "authentic"
    INAUTHENTIC = "inauthentic"
    FAILED = "failed"


@dataclass(frozen=True)
class GossipPair:
    """Push-sum state ``(x, w)`` gossiped for a *single* score (Algorithm 1).

    ``x`` is the weighted score mass and ``w`` the consensus-factor mass.
    The gossiped estimate of the aggregate is ``x / w`` once ``w > 0``.
    """

    x: float
    w: float

    def halved(self) -> "GossipPair":
        """Return the half-share kept/sent in one gossip step."""
        return GossipPair(self.x * 0.5, self.w * 0.5)

    def merged(self, other: "GossipPair") -> "GossipPair":
        """Return the sum of two shares received in a step (Eqs. 3-4)."""
        return GossipPair(self.x + other.x, self.w + other.w)

    @property
    def estimate(self) -> float:
        """Current gossiped score ``beta = x / w`` (``inf``/``nan`` if w == 0)."""
        if self.w == 0.0:  # noqa: GT004 -- exact sentinel: w is 0.0 only before any mass arrives, never a rounded-down tiny value
            return float("inf") if self.x > 0 else float("nan")
        return self.x / self.w


@dataclass(frozen=True)
class Triplet:
    """One reputation-vector element ``<x_id, id, w_id>`` (Algorithm 2)."""

    x: float
    node: NodeId
    w: float

    @property
    def estimate(self) -> float:
        """Gossiped global score of ``node``."""
        if self.w == 0.0:  # noqa: GT004 -- exact sentinel: see GossipPair.estimate
            return float("inf") if self.x > 0 else float("nan")
        return self.x / self.w


@dataclass
class ReputationVector:
    """A normalized global reputation vector ``V(t)``.

    Internally a mapping ``node id -> score``; scores sum to 1 (up to
    floating-point error).  ``cycle`` records the aggregation cycle ``t``
    at which the vector was produced.
    """

    scores: Dict[NodeId, float] = field(default_factory=dict)
    cycle: int = 0

    def score(self, node: NodeId) -> float:
        """Global reputation score of ``node`` (0.0 if unknown)."""
        return self.scores.get(node, 0.0)

    def top(self, k: int) -> Tuple[NodeId, ...]:
        """The ``k`` highest-reputation node ids, best first."""
        ranked = sorted(self.scores, key=lambda nid: (-self.scores[nid], nid))
        return tuple(ranked[:k])

    def total(self) -> float:
        """Sum of all scores (should be ~1.0 for a normalized vector)."""
        return float(sum(self.scores.values()))
