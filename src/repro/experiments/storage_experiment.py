"""Storage efficiency — the Bloom-filter reputation store (§7 claim).

Sweeps the bracket width ``b`` of the bracketed Bloom store over a
realistic (power-law) reputation vector and reports, per setting, the
memory footprint against a raw score table, the quantization error, and
the misbracket rate from Bloom false positives.  The claim being
checked: order-of-magnitude compression at a relative score error small
enough not to disturb top-k peer selection.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.metrics.errors import rank_overlap
from repro.metrics.reporting import Series, TextTable
from repro.storage.reputation_store import BloomReputationStore
from repro.utils.rng import RngStreams

__all__ = ["run_storage"]


def run_storage(
    *,
    n: int = 1000,
    bracket_bits: Sequence[int] = (3, 4, 5, 6, 8),
    repeats: int = 3,
    top_k: int = 10,
) -> ExperimentResult:
    """Sweep bracket bits; report compression, error, and top-k fidelity."""
    table = TextTable(
        [
            "bracket_bits",
            "compression",
            "mean_rel_error",
            "max_rel_error",
            "misbracket_rate",
            f"top{top_k}_overlap",
        ],
        title=f"Bloom reputation store: memory vs accuracy (n={n})",
        float_fmt=".3g",
    )
    series = Series(label="mean relative error")
    comp_series = Series(label="compression ratio")
    raw = {}
    for bits in bracket_bits:
        comp, mean_err, max_err, misb, overlap = [], [], [], [], []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
            v = exact_global_reputation(S, GossipTrustConfig(n=n)).vector
            store = BloomReputationStore(bracket_bits=bits)
            store.build(v)
            report = store.report()
            comp.append(report.compression_ratio)
            mean_err.append(report.mean_relative_error)
            max_err.append(report.max_relative_error)
            misb.append(report.misbracket_rate)
            overlap.append(rank_overlap(v, store.lookup_vector(n), top_k))
        row = [
            bits,
            mean_std(comp)[0],
            mean_std(mean_err)[0],
            mean_std(max_err)[0],
            mean_std(misb)[0],
            mean_std(overlap)[0],
        ]
        table.add_row(row)
        series.add(bits, row[2])
        comp_series.add(bits, row[1])
        raw[bits] = {
            "compression": row[1],
            "mean_rel_error": row[2],
            "top_k_overlap": row[5],
        }
    return ExperimentResult(
        experiment_id="storage",
        title="Reputation storage efficiency with bracketed Bloom filters",
        tables=[table],
        series=[series, comp_series],
        data={str(k): v for k, v in raw.items()},
    )
