"""Synthetic trust-matrix generation shared by the experiments.

§6.1's base setting: a network of ``n`` nodes whose per-node feedback
counts follow the bounded power law (d_max = 200, d_avg = 20), rating
uniformly-chosen partners with random positive scores.  This produces
the "arbitrary trust matrix" on which convergence and error are
measured when no threat model is in play.

The matrix is built *streaming*: final CSR arrays are preallocated
from the sampled feedback counts and filled one row block at a time —
partner draws, within-row deduplication, scores and the Eq. 1 row
normalization all run vectorized over the block, with no Python-list
or dense intermediate anywhere.  Peak construction memory is the CSR
output plus O(block_rows * d_avg) transients, which is what lets the
n = 10^6 benchmark tier build its ~2 * 10^7-edge matrix in a few
hundred MB instead of gigabytes of list overhead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.distributions.powerlaw import FeedbackCountDistribution
from repro.errors import ValidationError
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import SeedLike, as_generator

__all__ = ["synthetic_trust_matrix"]

#: rows filled per streaming block (~1.3M draws at d_avg = 20)
_BLOCK_ROWS = 65_536


def synthetic_trust_matrix(
    n: int,
    *,
    feedback_dist: Optional[FeedbackCountDistribution] = None,
    rng: SeedLike = None,
    block_rows: int = _BLOCK_ROWS,
) -> TrustMatrix:
    """A power-law-feedback trust matrix over ``n`` honest peers.

    Each rater ``i`` draws its feedback count ``d_i`` from the bounded
    power law, rates ``d_i`` distinct uniform partners, and assigns each
    a uniform(0, 1] raw score; Eq. 1 normalization follows.

    ``block_rows`` sets the streaming granularity (rows per block); it
    changes memory traffic only, never the distribution.
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    if block_rows < 1:
        raise ValidationError(f"block_rows must be >= 1, got {block_rows}")
    gen = as_generator(rng)
    dist = feedback_dist or FeedbackCountDistribution()
    counts = np.minimum(dist.sample_counts(n, gen), n - 1)
    total = int(counts.sum())
    indptr64 = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr64[1:])
    idx_dt = np.int32 if max(n, total) < np.iinfo(np.int32).max else np.int64
    indices = np.empty(total, dtype=idx_dt)
    data = np.empty(total, dtype=np.float64)
    for lo in range(0, n, block_rows):
        hi = min(lo + block_rows, n)
        c = counts[lo:hi]
        tb = int(c.sum())
        if tb == 0:  # pragma: no cover - counts are >= 1 by construction
            continue
        rows = np.repeat(np.arange(lo, hi, dtype=np.int64), c)
        # Distinct partners per row, vectorized: draw everything at
        # once, then redraw only the within-row duplicates until none
        # remain (d_max = 200 << n, so collisions are rare and the
        # loop converges in a couple of rounds).
        cand = gen.integers(0, n - 1, size=tb)
        key = rows * (n - 1) + cand
        while True:
            order = np.argsort(key, kind="stable")
            dup = key[order][1:] == key[order][:-1]
            if not dup.any():
                break
            bad = order[1:][dup]
            cand[bad] = gen.integers(0, n - 1, size=bad.size)
            key[bad] = rows[bad] * (n - 1) + cand[bad]
        # Row-major sorted draw order; the self-exclusion shift is
        # order-preserving per row, so columns land sorted in the CSR.
        part = cand[order]
        part[part >= rows] += 1  # rows[order] == rows (keys group by row)
        s0, s1 = int(indptr64[lo]), int(indptr64[hi])
        indices[s0:s1] = part
        # uniform in (0, 1]: zero scores mean "no feedback"
        block_vals = 1.0 - gen.random(tb)
        # Eq. 1 row normalization, in place (every row sums to > 0).
        inv = 1.0 / np.add.reduceat(block_vals, indptr64[lo:hi] - s0)
        block_vals *= np.repeat(inv, c)
        data[s0:s1] = block_vals
    raw = sparse.csr_matrix(
        (data, indices, indptr64.astype(idx_dt, copy=False)), shape=(n, n)
    )
    return TrustMatrix(raw, _validated=True)
