"""Synthetic trust-matrix generation shared by the experiments.

§6.1's base setting: a network of ``n`` nodes whose per-node feedback
counts follow the bounded power law (d_max = 200, d_avg = 20), rating
uniformly-chosen partners with random positive scores.  This produces
the "arbitrary trust matrix" on which convergence and error are
measured when no threat model is in play.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.distributions.powerlaw import FeedbackCountDistribution
from repro.errors import ValidationError
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import SeedLike, as_generator

__all__ = ["synthetic_trust_matrix"]


def synthetic_trust_matrix(
    n: int,
    *,
    feedback_dist: Optional[FeedbackCountDistribution] = None,
    rng: SeedLike = None,
) -> TrustMatrix:
    """A power-law-feedback trust matrix over ``n`` honest peers.

    Each rater ``i`` draws its feedback count ``d_i`` from the bounded
    power law, rates ``d_i`` distinct uniform partners, and assigns each
    a uniform(0, 1] raw score; Eq. 1 normalization follows.
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    gen = as_generator(rng)
    dist = feedback_dist or FeedbackCountDistribution()
    counts = np.minimum(dist.sample_counts(n, gen), n - 1)
    rows = []
    cols = []
    total = int(counts.sum())
    vals = 1.0 - gen.random(total)  # uniform in (0, 1]: zero scores mean "no feedback"
    for i in range(n):
        k = int(counts[i])
        partners = gen.choice(n - 1, size=k, replace=False)
        partners[partners >= i] += 1
        rows.extend([i] * k)
        cols.extend(partners.tolist())
    raw = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))
    # Normalize rows directly (every row has >= 1 positive entry).
    sums = np.asarray(raw.sum(axis=1)).ravel()
    inv = sparse.diags(1.0 / sums)
    return TrustMatrix((inv @ raw).tocsr(), _validated=True)
