"""Structured acceleration experiment — §7's "can perform even better".

Compares, across network sizes, the per-cycle cost of the unstructured
push-sum gossip (steps to the epsilon criterion) against the
DHT-ordered deterministic all-reduce (exactly ceil(log2 n) rounds, zero
residual error).  Expected shape: the structured variant needs ~5x
fewer rounds and is exact — quantifying what the fast hashing/search of
a DHT buys, and by contrast what the unstructured protocol pays for
needing no structure.

Both sides are constructed through :func:`~repro.gossip.factory.make_engine`
and actually executed — the structured rounds are measured, not derived.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.factory import make_engine
from repro.metrics.reporting import Series, TextTable
from repro.metrics.telemetry import CycleTelemetry
from repro.utils.rng import RngStreams

__all__ = ["run_structured"]


def run_structured(
    *,
    sizes: Sequence[int] = (250, 500, 1000, 2000),
    epsilon: float = 1e-4,
    repeats: int = 3,
    engine: str = "sync",
) -> ExperimentResult:
    """Sweep n; measure per-cycle rounds for both aggregation styles.

    ``engine`` selects the unstructured baseline (any registered
    engine); the structured all-reduce is always the comparison target.
    """
    table = TextTable(
        ["n", "gossip_steps", "structured_rounds", "speedup", "gossip_error"],
        title=f"Unstructured push-sum vs DHT all-reduce (epsilon={epsilon:g})",
        float_fmt=".4g",
    )
    gossip_series = Series(label="unstructured gossip")
    struct_series = Series(label="structured all-reduce")
    raw = {}
    telemetry = CycleTelemetry()
    for n in sizes:
        steps_l, err_l, rounds_l = [], [], []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
            v = np.full(n, 1.0 / n)
            baseline = make_engine(
                engine, n=n, rng=streams,
                epsilon=epsilon, mode="probe", probe_columns=64,
            )
            res = telemetry.timed(1, baseline, S, v)
            steps_l.append(float(res.steps))
            err_l.append(res.gossip_error)
            structured = make_engine("structured", n=n, rng=streams)
            s_res = telemetry.timed(1, structured, S, v)
            rounds_l.append(float(s_res.steps))
            assert s_res.gossip_error == 0.0  # the all-reduce is exact
        rounds = mean_std(rounds_l)[0]
        g_steps = mean_std(steps_l)[0]
        table.add_row([n, g_steps, rounds, g_steps / rounds, mean_std(err_l)[0]])
        gossip_series.add(n, g_steps)
        struct_series.add(n, rounds)
        raw[n] = {"gossip_steps": g_steps, "structured_rounds": rounds}
    return ExperimentResult(
        experiment_id="structured",
        title="Per-cycle aggregation cost: unstructured gossip vs "
        "DHT-ordered all-reduce",
        tables=[table],
        series=[gossip_series, struct_series],
        data={str(k): v for k, v in raw.items()},
        notes=[
            "The structured variant is exact (zero gossip error) but "
            "requires a ring ordering every peer agrees on — the very "
            "assumption unstructured networks cannot make (§1).",
            f"baseline engine={engine!r} via make_engine.",
            telemetry.summary_line(),
        ],
    )
