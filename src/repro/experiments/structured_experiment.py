"""Structured acceleration experiment — §7's "can perform even better".

Compares, across network sizes, the per-cycle cost of the unstructured
push-sum gossip (steps to the epsilon criterion) against the
DHT-ordered deterministic all-reduce (exactly ceil(log2 n) rounds, zero
residual error).  Expected shape: the structured variant needs ~5x
fewer rounds and is exact — quantifying what the fast hashing/search of
a DHT buys, and by contrast what the unstructured protocol pays for
needing no structure.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.engine import SynchronousGossipEngine
from repro.metrics.reporting import Series, TextTable
from repro.utils.rng import RngStreams

__all__ = ["run_structured"]


def run_structured(
    *,
    sizes: Sequence[int] = (250, 500, 1000, 2000),
    epsilon: float = 1e-4,
    repeats: int = 3,
) -> ExperimentResult:
    """Sweep n; measure per-cycle rounds for both aggregation styles."""
    table = TextTable(
        ["n", "gossip_steps", "structured_rounds", "speedup", "gossip_error"],
        title=f"Unstructured push-sum vs DHT all-reduce (epsilon={epsilon:g})",
        float_fmt=".4g",
    )
    gossip_series = Series(label="unstructured gossip")
    struct_series = Series(label="structured all-reduce")
    raw = {}
    for n in sizes:
        steps_l, err_l = [], []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
            engine = SynchronousGossipEngine(
                n, epsilon=epsilon, mode="probe", probe_columns=64,
                rng=streams.get("gossip"),
            )
            v = np.full(n, 1.0 / n)
            res = engine.run_cycle(S, v)
            steps_l.append(float(res.steps))
            err_l.append(res.gossip_error)
        rounds = int(math.ceil(math.log2(n)))
        g_steps = mean_std(steps_l)[0]
        table.add_row([n, g_steps, rounds, g_steps / rounds, mean_std(err_l)[0]])
        gossip_series.add(n, g_steps)
        struct_series.add(n, rounds)
        raw[n] = {"gossip_steps": g_steps, "structured_rounds": rounds}
    return ExperimentResult(
        experiment_id="structured",
        title="Per-cycle aggregation cost: unstructured gossip vs "
        "DHT-ordered all-reduce",
        tables=[table],
        series=[gossip_series, struct_series],
        data={str(k): v for k, v in raw.items()},
        notes=[
            "The structured variant is exact (zero gossip error) but "
            "requires a ring ordering every peer agrees on — the very "
            "assumption unstructured networks cannot make (§1).",
        ],
    )
