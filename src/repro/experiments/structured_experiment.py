"""Structured acceleration experiment — §7's "can perform even better".

Compares, across network sizes, the per-cycle cost of the unstructured
push-sum gossip (steps to the epsilon criterion) against the
DHT-ordered deterministic all-reduce (exactly ceil(log2 n) rounds, zero
residual error).  Expected shape: the structured variant needs ~5x
fewer rounds and is exact — quantifying what the fast hashing/search of
a DHT buys, and by contrast what the unstructured protocol pays for
needing no structure.

Both sides are constructed through :func:`~repro.gossip.factory.make_engine`
and actually executed — the structured rounds are measured, not derived.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.runner import SweepPoint, run_sweep
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.factory import make_engine
from repro.metrics.reporting import Series, TextTable
from repro.metrics.telemetry import CycleRecord, CycleTelemetry
from repro.utils.rng import RngStreams

__all__ = ["run_structured"]


def _structured_point(
    *, seed: int, n: int, epsilon: float, engine: str
) -> Tuple[Tuple[float, float, float], List[CycleRecord]]:
    """One comparison point: unstructured cycle vs structured all-reduce.

    Returns ``((gossip_steps, gossip_error, structured_rounds), records)``.
    """
    streams = RngStreams(seed)
    S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
    v = np.full(n, 1.0 / n)
    telemetry = CycleTelemetry()
    baseline = make_engine(
        engine, n=n, rng=streams,
        epsilon=epsilon, mode="probe", probe_columns=64,
    )
    res = telemetry.timed(1, baseline, S, v)
    structured = make_engine("structured", n=n, rng=streams)
    s_res = telemetry.timed(1, structured, S, v)
    if s_res.gossip_error != 0.0:  # the all-reduce must be exact
        raise ExperimentError(
            f"structured all-reduce is not exact at n={n}, seed={seed}: "
            f"gossip_error={s_res.gossip_error!r}"
        )
    return (
        (float(res.steps), res.gossip_error, float(s_res.steps)),
        telemetry.records,
    )


def run_structured(
    *,
    sizes: Sequence[int] = (250, 500, 1000, 2000),
    epsilon: float = 1e-4,
    repeats: int = 3,
    engine: str = "sync",
    workers: int = 1,
) -> ExperimentResult:
    """Sweep n; measure per-cycle rounds for both aggregation styles.

    ``engine`` selects the unstructured baseline (any registered
    engine); the structured all-reduce is always the comparison target.
    ``workers`` fans the (n, seed) points over processes.
    """
    table = TextTable(
        ["n", "gossip_steps", "structured_rounds", "speedup", "gossip_error"],
        title=f"Unstructured push-sum vs DHT all-reduce (epsilon={epsilon:g})",
        float_fmt=".4g",
    )
    gossip_series = Series(label="unstructured gossip")
    struct_series = Series(label="structured all-reduce")
    raw = {}
    telemetry = CycleTelemetry()
    points = [
        SweepPoint(
            fn=_structured_point,
            kwargs={"n": n, "epsilon": epsilon, "engine": engine},
            seed=seed,
            label=f"n={n}/s{seed}",
        )
        for n in sizes
        for seed in seed_range(repeats)
    ]
    report = run_sweep(points, workers=workers)
    values = iter(report.values())
    for n in sizes:
        steps_l, err_l, rounds_l = [], [], []
        for _ in seed_range(repeats):
            (steps, err, rounds_v), records = next(values)
            steps_l.append(steps)
            err_l.append(err)
            rounds_l.append(rounds_v)
            telemetry.records.extend(records)
        rounds = mean_std(rounds_l)[0]
        g_steps = mean_std(steps_l)[0]
        table.add_row([n, g_steps, rounds, g_steps / rounds, mean_std(err_l)[0]])
        gossip_series.add(n, g_steps)
        struct_series.add(n, rounds)
        raw[n] = {"gossip_steps": g_steps, "structured_rounds": rounds}
    return ExperimentResult(
        experiment_id="structured",
        title="Per-cycle aggregation cost: unstructured gossip vs "
        "DHT-ordered all-reduce",
        tables=[table],
        series=[gossip_series, struct_series],
        data={str(k): v for k, v in raw.items()},
        notes=[
            "The structured variant is exact (zero gossip error) but "
            "requires a ring ordering every peer agrees on — the very "
            "assumption unstructured networks cannot make (§1).",
            f"baseline engine={engine!r} via make_engine.",
            telemetry.summary_line(),
            report.summary_line(),
        ],
    )
