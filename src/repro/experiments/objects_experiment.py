"""Object-reputation experiment — poisoning defense (§7 extension).

A poisoning attack floods popular files with corrupted versions.  We
simulate downloads of a versioned catalog (version 0 genuine, the rest
poisoned) under three version-selection policies:

* ``random`` — no object reputation: pick any offered version;
* ``votes`` — object reputation with unweighted votes;
* ``weighted`` — object reputation with votes weighted by the voter's
  peer reputation (honest peers carry more weight).

Malicious voters invert their votes (praise poison, trash the genuine
version).  Expected shape: random stays at the poisoned base rate
(~(V-1)/V); vote-driven selection converges to the genuine version;
when attackers are numerous, only the reputation-weighted variant
resists the vote spam.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.query import TwoSegmentZipf
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.metrics.reporting import Series, TextTable
from repro.types import TransactionOutcome
from repro.utils.rng import RngStreams
from repro.workload.object_reputation import ObjectReputation

__all__ = ["run_objects"]


def _simulate(
    *,
    n_peers: int,
    n_files: int,
    versions: int,
    gamma: float,
    downloads: int,
    policy: str,
    seed: int,
) -> float:
    """Return the poisoned-download rate over the second half of the run."""
    streams = RngStreams(seed)
    gen = streams.get("loop")
    malicious = np.zeros(n_peers, dtype=bool)
    m = int(round(n_peers * gamma))
    if m:
        malicious[gen.choice(n_peers, size=m, replace=False)] = True
    # Peer reputation proxy: honest peers ~uniform score, malicious low
    # (in the full system this comes from GossipTrust; here the object
    # layer is evaluated in isolation).
    peer_rep = np.where(malicious, 0.1 / n_peers, 1.0 / n_peers)
    popularity = TwoSegmentZipf(n_files)
    obj = ObjectReputation(n_files, versions)
    poisoned_late = 0
    late_count = 0
    half = downloads // 2
    for step in range(downloads):
        requester = int(gen.integers(n_peers))
        file_rank = int(popularity.sample_ranks(1, gen)[0])
        if policy == "random":
            version = int(gen.integers(versions))
        else:
            version = obj.best_version(file_rank)
        authentic = version == 0
        if step >= half:
            late_count += 1
            if not authentic:
                poisoned_late += 1
        # The requester votes on what it received.
        experienced = (
            TransactionOutcome.AUTHENTIC if authentic else TransactionOutcome.INAUTHENTIC
        )
        if malicious[requester]:
            experienced = (
                TransactionOutcome.INAUTHENTIC
                if authentic
                else TransactionOutcome.AUTHENTIC
            )
        weight = 1.0 if policy != "weighted" else float(n_peers * peer_rep[requester])
        obj.vote(file_rank, version, experienced, weight=weight)
        # Exploration: occasionally sample a random version so scores
        # exist for every version (epsilon-greedy with eps=10%).
        if policy != "random" and gen.random() < 0.1:
            probe_version = int(gen.integers(versions))
            probe_auth = probe_version == 0
            exp2 = (
                TransactionOutcome.AUTHENTIC if probe_auth else TransactionOutcome.INAUTHENTIC
            )
            if malicious[requester]:
                exp2 = (
                    TransactionOutcome.INAUTHENTIC
                    if probe_auth
                    else TransactionOutcome.AUTHENTIC
                )
            obj.vote(file_rank, probe_version, exp2, weight=weight)
    return poisoned_late / max(1, late_count)


def run_objects(
    *,
    n_peers: int = 300,
    n_files: int = 200,
    versions: int = 3,
    gammas: Sequence[float] = (0.1, 0.3, 0.5),
    downloads: int = 6000,
    repeats: int = 3,
) -> ExperimentResult:
    """Sweep attacker fraction; compare the three version policies."""
    table = TextTable(
        ["policy", "gamma", "poisoned_rate", "std"],
        title=f"Object reputation vs poisoning (V={versions}, steady-state)",
        float_fmt=".3g",
    )
    series = {p: Series(label=p) for p in ("random", "votes", "weighted")}
    raw = {}
    for gamma in gammas:
        for policy in ("random", "votes", "weighted"):
            vals = [
                _simulate(
                    n_peers=n_peers,
                    n_files=n_files,
                    versions=versions,
                    gamma=gamma,
                    downloads=downloads,
                    policy=policy,
                    seed=seed,
                )
                for seed in seed_range(repeats)
            ]
            mean, std = mean_std(vals)
            table.add_row([policy, gamma, mean, std])
            series[policy].add(gamma, mean)
            raw[f"{policy}/{gamma:g}"] = mean
    return ExperimentResult(
        experiment_id="objects",
        title="Object (version) reputation against poisoning attacks",
        tables=[table],
        series=list(series.values()),
        data=raw,
    )
