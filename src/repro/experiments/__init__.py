"""Experiment harness: one regenerator per paper table/figure.

Every module exposes a ``run_*`` function returning an
:class:`~repro.experiments.base.ExperimentResult` whose tables/series
mirror the paper artifact's rows/curves.  The registry maps experiment
ids (``table1``, ``fig3``, ``table3``, ``fig4a``, ``fig4b``, ``fig5``,
plus the extension experiments ``fault``, ``storage``, ``overhead``) to
their runners; the CLI and the benchmark suite both go through it.
"""

from repro.experiments.base import ExperimentResult, mean_std
from repro.experiments.registry import get_experiment, list_experiments, run_experiment

__all__ = [
    "ExperimentResult",
    "mean_std",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
