"""Common experiment infrastructure.

The paper reports "the average of at least 10 simulation runs with
different seeds" per data point; :func:`mean_std` and the ``seeds``
convention (root seeds ``0..repeats-1``) implement that.  Experiment
outputs are structured (:class:`ExperimentResult`) so the CLI prints
them, benches regression-check them, and tests assert on their shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.reporting import Series, TextTable

__all__ = ["ExperimentResult", "mean_std", "seed_range"]


@dataclass
class ExperimentResult:
    """Structured output of one experiment regeneration.

    Attributes
    ----------
    experiment_id:
        The registry id (``fig3``, ``table3``, ...).
    title:
        Human-readable description matching the paper artifact.
    tables:
        Rendered-on-demand text tables (Table artifacts, and tabular
        views of figures).
    series:
        Figure curves, one per plotted line.
    data:
        Raw numbers keyed by name, for programmatic assertions.
    notes:
        Free-text caveats (e.g. scaled-down parameters and why).
    """

    experiment_id: str
    title: str
    tables: List[TextTable] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: axis hints for the ASCII chart renderer ({"log_x": True, ...})
    chart_hints: Dict[str, object] = field(default_factory=dict)

    def render(self, *, chart: bool = False) -> str:
        """Full text rendering: title, notes, tables, series.

        With ``chart=True`` and at least one non-empty series, an ASCII
        line chart of the series is appended (axis scales taken from
        ``chart_hints``).
        """
        parts: List[str] = [f"== {self.experiment_id}: {self.title} =="]
        for note in self.notes:
            parts.append(f"note: {note}")
        for table in self.tables:
            parts.append(table.render())
        for series in self.series:
            parts.append(series.render())
        if chart and any(len(s) for s in self.series):
            from repro.metrics.ascii_plot import render_chart

            parts.append(
                render_chart(
                    [s for s in self.series if len(s)],
                    title=f"[chart] {self.experiment_id}",
                    log_x=bool(self.chart_hints.get("log_x", False)),
                    log_y=bool(self.chart_hints.get("log_y", False)),
                    x_label=str(self.chart_hints.get("x_label", "x")),
                    y_label=str(self.chart_hints.get("y_label", "y")),
                )
            )
        return "\n\n".join(parts)

    def series_by_label(self, label: str) -> Series:
        """Find a series by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise ExperimentError(
            f"no series labeled {label!r} in {self.experiment_id} "
            f"(have: {[s.label for s in self.series]})"
        )


def seed_range(repeats: int) -> Sequence[int]:
    """The canonical root seeds for ``repeats`` runs (0..repeats-1)."""
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    return range(repeats)


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and (population) std of per-seed measurements."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError("cannot average zero measurements")
    return float(arr.mean()), float(arr.std())
