"""Parallel experiment sweep runner — fan sweep points across processes.

Every experiment above the engine layer is a loop over independent
*sweep points* — one full measurement per ``(parameters, root seed)``
combination, each building its own :class:`~repro.utils.rng.RngStreams`
from its root seed and therefore sharing no state with any other point.
This module turns that loop shape into infrastructure:

* :class:`SweepPoint` — a declarative work item: a top-level (picklable)
  point function, its keyword parameters, and the root seed.  The
  runner calls ``fn(seed=seed, **kwargs)``; all randomness inside must
  derive from that seed via the :class:`~repro.utils.rng.RngStreams`
  convention, which is exactly what makes worker placement irrelevant
  to the results.
* :func:`run_sweep` — executes the points either inline (``workers=1``,
  byte-identical to the historical serial loops, no pickling involved)
  or fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``workers > 1``).  Submission is chunked (several points per task,
  amortizing IPC), collection is ordered (outcomes always line up with
  the input points, whatever order workers finish in).
* :class:`SweepOutcome` / :class:`SweepReport` — per-point value plus
  wall time and peak RSS, and sweep-level throughput aggregation.

Determinism contract: because a point's randomness is a pure function
of its root seed, ``run_sweep(points, workers=1)`` and
``run_sweep(points, workers=k)`` return identical ``value`` sequences
for every ``k`` (pinned by ``tests/test_experiments_runner.py``).
Telemetry convention: point functions that want per-cycle telemetry in
the experiment output build a local
:class:`~repro.metrics.telemetry.CycleTelemetry` and return its
``records`` list alongside their measurements —
:class:`~repro.metrics.telemetry.CycleRecord` is a frozen dataclass of
primitives, so it crosses the process boundary untouched.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.utils.proc import PeakRssMeter

__all__ = ["SweepPoint", "SweepOutcome", "SweepReport", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One independent sweep measurement: ``fn(seed=seed, **kwargs)``.

    Attributes
    ----------
    fn:
        A module-level callable (picklable — lambdas and closures cannot
        cross the process boundary).  It must take ``seed`` as a keyword
        argument and derive **all** of its randomness from it.
    kwargs:
        Point parameters, forwarded verbatim.  Values must be picklable
        (plain numbers, strings, tuples — not live RNGs or engines).
    seed:
        The point's root seed (the experiment convention: seeds
        ``0..repeats-1`` per parameter combination).
    label:
        Optional display/debug key (e.g. ``"n=1000/eps=1e-4/s0"``).
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any]
    seed: int
    label: str = ""

    def execute(self) -> "SweepOutcome":
        """Run this point in the current process, timing it.

        Peak RSS is metered per point (:class:`~repro.utils.proc.PeakRssMeter`
        resets the kernel high-water mark), so consecutive points in one
        worker don't all inherit the largest point's lifetime peak.
        """
        meter = PeakRssMeter()
        start = time.perf_counter()
        value = self.fn(seed=self.seed, **dict(self.kwargs))
        return SweepOutcome(
            point=self,
            value=value,
            wall_time=time.perf_counter() - start,
            peak_rss_kib=meter.read_kib(),
        )


@dataclass
class SweepOutcome:
    """One executed point: its value plus cost telemetry."""

    point: SweepPoint
    #: whatever the point function returned
    value: Any
    #: seconds spent inside the point function (in its worker process)
    wall_time: float
    #: peak RSS over this point's execution interval (KiB; per-point
    #: where the kernel supports high-water-mark resets, lifetime bound
    #: elsewhere)
    peak_rss_kib: float


@dataclass
class SweepReport:
    """Ordered outcomes of one :func:`run_sweep` call plus sweep totals."""

    outcomes: List[SweepOutcome] = field(default_factory=list)
    #: worker processes used (1 = inline serial execution)
    workers: int = 1
    #: end-to-end sweep wall time as seen by the caller (seconds)
    wall_time: float = 0.0

    def values(self) -> List[Any]:
        """The point values, in input-point order."""
        return [o.value for o in self.outcomes]

    @property
    def points_per_second(self) -> float:
        """Sweep throughput (0.0 for an empty or instantaneous sweep)."""
        if not self.outcomes or self.wall_time <= 0.0:
            return 0.0
        return len(self.outcomes) / self.wall_time

    @property
    def total_point_time(self) -> float:
        """Sum of per-point wall times (> ``wall_time`` when parallel)."""
        return sum(o.wall_time for o in self.outcomes)

    @property
    def max_peak_rss_kib(self) -> float:
        """Largest worker peak RSS observed across the sweep (KiB)."""
        return max((o.peak_rss_kib for o in self.outcomes), default=0.0)

    def summary_line(self) -> str:
        """One-line cost summary for experiment notes."""
        return (
            f"sweep: {len(self.outcomes)} points, {self.workers} worker(s), "
            f"{self.wall_time:.3f}s wall ({self.points_per_second:.2f} pts/s), "
            f"peak rss {self.max_peak_rss_kib:.0f} KiB"
        )


def _execute_chunk(chunk: Sequence[SweepPoint]) -> List[SweepOutcome]:
    """Worker task: run a chunk of points back to back (module-level so
    the executor can pickle it)."""
    return [point.execute() for point in chunk]


def _chunk(points: Sequence[SweepPoint], size: int) -> List[List[SweepPoint]]:
    return [list(points[i : i + size]) for i in range(0, len(points), size)]


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> SweepReport:
    """Execute every sweep point; return ordered outcomes and totals.

    Parameters
    ----------
    points:
        The work items, in the order results should be reported.
    workers:
        ``1`` runs the points inline in this process — the exact
        historical serial loop, no executor, no pickling.  ``> 1`` fans
        chunks of points out over a ``ProcessPoolExecutor`` with that
        many workers.  Results are identical either way (each point's
        randomness is a pure function of its seed); only wall time
        changes.
    chunk_size:
        Points per worker task.  Defaults to spreading the sweep over
        ``4 * workers`` tasks (bounded below by 1) — small enough to
        balance load, large enough to amortize submission overhead.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    points = list(points)
    start = time.perf_counter()
    if workers == 1 or len(points) <= 1:
        outcomes = [point.execute() for point in points]
        return SweepReport(
            outcomes=outcomes,
            workers=1 if workers == 1 else workers,
            wall_time=time.perf_counter() - start,
        )
    if chunk_size is None:
        chunk_size = max(1, len(points) // (4 * workers))
    elif chunk_size < 1:
        raise ExperimentError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = _chunk(points, chunk_size)
    outcomes = []
    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        # executor.map returns results in submission order regardless of
        # completion order — the ordered-collection guarantee.
        for chunk_outcomes in pool.map(_execute_chunk, chunks):
            outcomes.extend(chunk_outcomes)
    return SweepReport(
        outcomes=outcomes,
        workers=workers,
        wall_time=time.perf_counter() - start,
    )
