"""Parallel experiment sweep runner — fan sweep points across processes.

Every experiment above the engine layer is a loop over independent
*sweep points* — one full measurement per ``(parameters, root seed)``
combination, each building its own :class:`~repro.utils.rng.RngStreams`
from its root seed and therefore sharing no state with any other point.
This module turns that loop shape into infrastructure:

* :class:`SweepPoint` — a declarative work item: a top-level (picklable)
  point function, its keyword parameters, and the root seed.  The
  runner calls ``fn(seed=seed, **kwargs)``; all randomness inside must
  derive from that seed via the :class:`~repro.utils.rng.RngStreams`
  convention, which is exactly what makes worker placement irrelevant
  to the results.
* :func:`run_sweep` — executes the points either inline (``workers=1``,
  byte-identical to the historical serial loops, no pickling involved)
  or fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``workers > 1``).  Submission is chunked (several points per task,
  amortizing IPC), collection is ordered (outcomes always line up with
  the input points, whatever order workers finish in).
* :class:`SweepOutcome` / :class:`SweepReport` — per-point value plus
  wall time and peak RSS, and sweep-level throughput aggregation.
* Shared workspaces — a sweep whose points all read the same n-sized
  arrays (a trust matrix, a score vector) can publish them **once** on
  a ``"shared"``/``"memmap"`` buffer backend
  (:func:`publish_arrays`) and pass the resulting manifest spec to
  :func:`run_sweep`; every worker process then attaches the same
  physical pages in its :class:`~concurrent.futures.ProcessPoolExecutor`
  initializer (:func:`attach_shared_workspace`) instead of allocating
  or rebuilding per-process copies.  Point functions reach the mapped
  arrays through :func:`shared_workspace`; attach-vs-private results
  are bit-identical (pinned by ``tests/test_experiments_runner.py``).

Determinism contract: because a point's randomness is a pure function
of its root seed, ``run_sweep(points, workers=1)`` and
``run_sweep(points, workers=k)`` return identical ``value`` sequences
for every ``k`` (pinned by ``tests/test_experiments_runner.py``).
Telemetry convention: point functions that want per-cycle telemetry in
the experiment output build a local
:class:`~repro.metrics.telemetry.CycleTelemetry` and return its
``records`` list alongside their measurements —
:class:`~repro.metrics.telemetry.CycleRecord` is a frozen dataclass of
primitives, so it crosses the process boundary untouched.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.gossip.memory import BufferBackend, attach_array, make_backend
from repro.metrics.telemetry import Stopwatch
from repro.utils.proc import PeakRssMeter

__all__ = [
    "SweepPoint",
    "SweepOutcome",
    "SweepReport",
    "run_sweep",
    "publish_arrays",
    "attach_shared_workspace",
    "shared_workspace",
]

#: manifest spec type: ``{"backend": name, "entries": {label: entry}}``
WorkspaceSpec = Dict[str, Any]

# Per-process view of the sweep's shared workspace: label -> mapped
# array.  Filled by attach_shared_workspace (the executor initializer
# in workers, called inline for serial runs) and read by point
# functions via shared_workspace().
_SHARED_WS: Dict[str, np.ndarray] = {}
# Keepers pinning the mappings (SharedMemory handles / memmaps); they
# live until the next attach replaces them or the process exits.
_SHARED_WS_KEEPERS: List[object] = []


def publish_arrays(
    arrays: Mapping[str, np.ndarray], backend: str = "shared"
) -> Tuple[WorkspaceSpec, BufferBackend]:
    """Copy ``arrays`` onto an attachable backend; ``(spec, owner)``.

    Allocates one labelled buffer per array on a fresh ``"shared"`` or
    ``"memmap"`` backend and copies the contents in.  The returned spec
    is a picklable manifest for :func:`run_sweep`'s ``workspace_spec``
    parameter; the returned backend *owns* the segments — keep it alive
    for the duration of the sweep and ``close()`` it afterwards.
    """
    be = make_backend(backend)
    if be.name == "private":
        raise ExperimentError(
            "publish_arrays needs an attachable backend ('shared' or "
            "'memmap'); 'private' buffers have no manifest"
        )
    for label, arr in arrays.items():
        buf = be.empty(arr.shape, arr.dtype, label)
        buf[...] = arr
    return {"backend": be.name, "entries": be.manifest()}, be


def attach_shared_workspace(spec: Optional[WorkspaceSpec]) -> None:
    """Map every entry of ``spec`` into this process (executor initializer).

    Module-level and picklable so :func:`run_sweep` can hand it to a
    :class:`~concurrent.futures.ProcessPoolExecutor` as the worker
    ``initializer`` — each worker maps the parent's physical pages by
    manifest, allocating no n-sized state of its own.  ``None`` clears
    the workspace view.
    """
    _SHARED_WS.clear()
    _SHARED_WS_KEEPERS.clear()
    if not spec:
        return
    backend_name = spec["backend"]
    for label, entry in spec["entries"].items():
        arr, keeper = attach_array(backend_name, entry)
        _SHARED_WS[label] = arr
        _SHARED_WS_KEEPERS.append(keeper)


def shared_workspace() -> Mapping[str, np.ndarray]:
    """This process's view of the sweep's shared workspace (may be empty).

    Point functions treat the arrays as read-only inputs: every mapped
    label aliases the *same* physical pages in every worker, so an
    in-place write would leak across points and break the
    seed-determinism contract.
    """
    return _SHARED_WS


@dataclass(frozen=True)
class SweepPoint:
    """One independent sweep measurement: ``fn(seed=seed, **kwargs)``.

    Attributes
    ----------
    fn:
        A module-level callable (picklable — lambdas and closures cannot
        cross the process boundary).  It must take ``seed`` as a keyword
        argument and derive **all** of its randomness from it.
    kwargs:
        Point parameters, forwarded verbatim.  Values must be picklable
        (plain numbers, strings, tuples — not live RNGs or engines).
    seed:
        The point's root seed (the experiment convention: seeds
        ``0..repeats-1`` per parameter combination).
    label:
        Optional display/debug key (e.g. ``"n=1000/eps=1e-4/s0"``).
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any]
    seed: int
    label: str = ""

    def execute(self) -> "SweepOutcome":
        """Run this point in the current process, timing it.

        Peak RSS is metered per point (:class:`~repro.utils.proc.PeakRssMeter`
        resets the kernel high-water mark), so consecutive points in one
        worker don't all inherit the largest point's lifetime peak.
        """
        meter = PeakRssMeter()
        watch = Stopwatch()
        value = self.fn(seed=self.seed, **dict(self.kwargs))
        return SweepOutcome(
            point=self,
            value=value,
            wall_time=watch.elapsed(),
            peak_rss_kib=meter.read_kib(),
        )


@dataclass
class SweepOutcome:
    """One executed point: its value plus cost telemetry."""

    point: SweepPoint
    #: whatever the point function returned
    value: Any
    #: seconds spent inside the point function (in its worker process)
    wall_time: float
    #: peak RSS over this point's execution interval (KiB; per-point
    #: where the kernel supports high-water-mark resets, lifetime bound
    #: elsewhere)
    peak_rss_kib: float


@dataclass
class SweepReport:
    """Ordered outcomes of one :func:`run_sweep` call plus sweep totals."""

    outcomes: List[SweepOutcome] = field(default_factory=list)
    #: worker processes used (1 = inline serial execution)
    workers: int = 1
    #: end-to-end sweep wall time as seen by the caller (seconds)
    wall_time: float = 0.0

    def values(self) -> List[Any]:
        """The point values, in input-point order."""
        return [o.value for o in self.outcomes]

    @property
    def points_per_second(self) -> float:
        """Sweep throughput (0.0 for an empty or instantaneous sweep)."""
        if not self.outcomes or self.wall_time <= 0.0:
            return 0.0
        return len(self.outcomes) / self.wall_time

    @property
    def total_point_time(self) -> float:
        """Sum of per-point wall times (> ``wall_time`` when parallel)."""
        return sum(o.wall_time for o in self.outcomes)

    @property
    def max_peak_rss_kib(self) -> float:
        """Largest worker peak RSS observed across the sweep (KiB)."""
        return max((o.peak_rss_kib for o in self.outcomes), default=0.0)

    def summary_line(self) -> str:
        """One-line cost summary for experiment notes."""
        return (
            f"sweep: {len(self.outcomes)} points, {self.workers} worker(s), "
            f"{self.wall_time:.3f}s wall ({self.points_per_second:.2f} pts/s), "
            f"peak rss {self.max_peak_rss_kib:.0f} KiB"
        )


def _execute_chunk(chunk: Sequence[SweepPoint]) -> List[SweepOutcome]:
    """Worker task: run a chunk of points back to back (module-level so
    the executor can pickle it)."""
    return [point.execute() for point in chunk]


def _chunk(points: Sequence[SweepPoint], size: int) -> List[List[SweepPoint]]:
    return [list(points[i : i + size]) for i in range(0, len(points), size)]


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    workspace_spec: Optional[WorkspaceSpec] = None,
) -> SweepReport:
    """Execute every sweep point; return ordered outcomes and totals.

    Parameters
    ----------
    points:
        The work items, in the order results should be reported.
    workers:
        ``1`` runs the points inline in this process — the exact
        historical serial loop, no executor, no pickling.  ``> 1`` fans
        chunks of points out over a ``ProcessPoolExecutor`` with that
        many workers.  Results are identical either way (each point's
        randomness is a pure function of its seed); only wall time
        changes.
    chunk_size:
        Points per worker task.  Defaults to spreading the sweep over
        ``4 * workers`` tasks (bounded below by 1) — small enough to
        balance load, large enough to amortize submission overhead.
    workspace_spec:
        Manifest of a published shared workspace (see
        :func:`publish_arrays`).  Worker processes attach it in their
        executor initializer — one mapping of the parent's physical
        pages each, no per-process n-sized allocation; serial runs
        attach inline so point functions see the identical
        :func:`shared_workspace` view either way.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    points = list(points)
    watch = Stopwatch()
    if workers == 1 or len(points) <= 1:
        if workspace_spec is not None:
            attach_shared_workspace(workspace_spec)
        try:
            outcomes = [point.execute() for point in points]
        finally:
            if workspace_spec is not None:
                attach_shared_workspace(None)
        return SweepReport(
            outcomes=outcomes,
            workers=1 if workers == 1 else workers,
            wall_time=watch.elapsed(),
        )
    if chunk_size is None:
        chunk_size = max(1, len(points) // (4 * workers))
    elif chunk_size < 1:
        raise ExperimentError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = _chunk(points, chunk_size)
    outcomes = []
    pool_kwargs: Dict[str, Any] = {"max_workers": min(workers, len(chunks))}
    if workspace_spec is not None:
        pool_kwargs["initializer"] = attach_shared_workspace
        pool_kwargs["initargs"] = (workspace_spec,)
    with ProcessPoolExecutor(**pool_kwargs) as pool:
        # executor.map returns results in submission order regardless of
        # completion order — the ordered-collection guarantee.
        for chunk_outcomes in pool.map(_execute_chunk, chunks):
            outcomes.extend(chunk_outcomes)
    return SweepReport(
        outcomes=outcomes,
        workers=workers,
        wall_time=watch.elapsed(),
    )
