"""QoF extension experiment — the §7 dual-score suggestion, evaluated.

Measures, across malicious fractions, (a) whether QoF discriminates
honest from dishonest witnesses, judged against both the truthful and
the self-computed consensus, and (b) whether QoF-modulated voting
reduces the Eq. 8 RMS error of the attacked aggregation.

Honest summary of what we find (recorded in EXPERIMENTS.md): the
endorsement-quality signal separates witnesses cleanly when judged
against a clean consensus, and vote modulation recovers ~20% of the RMS
error under heavy attack (gamma >= 0.4) while staying neutral at
moderate attack — but the self-bootstrapped alternation inherits the
poisoned consensus and cannot fully substitute for power nodes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.metrics.errors import rms_relative_error
from repro.metrics.reporting import Series, TextTable
from repro.peers.threat_models import build_independent_scenario
from repro.trust.qof import QofWeightedAggregation, feedback_quality
from repro.utils.rng import RngStreams

__all__ = ["run_qof"]


def run_qof(
    *,
    n: int = 600,
    gammas: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    repeats: int = 3,
    rounds: int = 3,
) -> ExperimentResult:
    """Sweep the malicious fraction; compare plain vs QoF-weighted aggregation."""
    table = TextTable(
        [
            "gamma",
            "rms_plain",
            "rms_qof",
            "gap_vs_truth",
            "gap_self",
        ],
        title=f"QoF extension: RMS error and witness discrimination (n={n})",
        float_fmt=".3g",
    )
    plain_series = Series(label="plain aggregation")
    qof_series = Series(label="QoF-weighted aggregation")
    raw = {}
    for gamma in gammas:
        rms_plain, rms_qof, gap_truth, gap_self = [], [], [], []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            sc = build_independent_scenario(n, gamma, rng=streams.get("scenario"))
            cfg = GossipTrustConfig(n=n, alpha=0.0, max_cycles=80, seed=seed)
            v = exact_global_reputation(sc.S_true, cfg, raise_on_budget=False).vector
            u_plain = exact_global_reputation(
                sc.S_attacked, cfg, raise_on_budget=False
            ).vector
            result = QofWeightedAggregation(cfg, rounds=rounds).run(sc.S_attacked)
            rms_plain.append(rms_relative_error(v, u_plain, cap=10.0))
            rms_qof.append(rms_relative_error(v, result.reputation, cap=10.0))
            good = sc.population.honest_nodes()
            bad = sc.population.malicious_nodes()
            if bad.size:
                q_truth = feedback_quality(sc.S_attacked, v)
                gap_truth.append(
                    float(q_truth[good].mean() - q_truth[bad].mean())
                )
                gap_self.append(
                    float(result.qof[good].mean() - result.qof[bad].mean())
                )
        row = [
            gamma,
            mean_std(rms_plain)[0],
            mean_std(rms_qof)[0],
            mean_std(gap_truth)[0] if gap_truth else 0.0,
            mean_std(gap_self)[0] if gap_self else 0.0,
        ]
        table.add_row(row)
        plain_series.add(gamma, row[1])
        qof_series.add(gamma, row[2])
        raw[gamma] = {
            "rms_plain": row[1],
            "rms_qof": row[2],
            "gap_vs_truth": row[3],
            "gap_self": row[4],
        }
    return ExperimentResult(
        experiment_id="qof",
        title="Quality-of-feedback weighting (the §7 dual-score extension)",
        tables=[table],
        series=[plain_series, qof_series],
        data={f"{g:g}": v for g, v in raw.items()},
        notes=[
            "QoF = consensus reputation of a rater's endorsement "
            "distribution; votes weighted by QoF in the aggregation.",
            "Discrimination gaps are mean honest QoF minus mean "
            "malicious QoF (positive = witnesses separable).",
        ],
    )
