"""Fig. 4 — RMS aggregation error under malicious peers.

Fig. 4(a): independent malicious peers.  RMS error (Eq. 8) between the
truthful-feedback reputation ``v`` and the attacked-feedback reputation
``u``, as the malicious fraction gamma sweeps, for greedy factors
alpha in {0, 0.15, 0.3}.  Expected shape: error grows with gamma;
alpha = 0.15 beats alpha = 0 (paper: ~20% less error); alpha = 0.3 does
*not* improve on 0.15.

Fig. 4(b): collusive peers.  Same metric vs collusion group size, for
5% and 10% collusive populations, with and without power nodes
(alpha = 0.15 vs 0).  Expected: power nodes reduce error (paper: ~30%
less at group size > 6 under 5% colluders).

Both matrices of a scenario share one transaction stream, so the RMS
isolates the feedback attack (see peers/threat_models.py).
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.core.aggregation import exact_global_reputation
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.runner import SweepPoint, run_sweep
from repro.metrics.errors import rms_relative_error
from repro.metrics.reporting import Series, TextTable
from repro.peers.threat_models import (
    ThreatScenario,
    build_collusive_scenario,
    build_independent_scenario,
)
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngStreams

__all__ = ["run_fig4a", "run_fig4b"]

DEFAULT_GAMMAS = (0.0, 0.1, 0.2, 0.3, 0.4)
DEFAULT_ALPHAS = (0.0, 0.15, 0.3)
DEFAULT_GROUP_SIZES = (2, 4, 6, 8, 10)
DEFAULT_FRACTIONS = (0.05, 0.10)


#: winsorization cap on per-component relative errors (see
#: :func:`repro.metrics.errors.rms_relative_error`)
RMS_CAP = 10.0


def _rms_for(
    scenario: ThreatScenario, alpha: float, seed: int, *, gossip: bool
) -> float:
    """RMS error of the attacked aggregation vs the truthful reference.

    Both sides run the system's actual two-round procedure: round 1
    aggregates with no power nodes yet and selects them; round 2
    aggregates with that carried-over power set (§3: power nodes are
    identified "for the next round of reputation updating").  This is
    what makes the greedy factor a genuine trade-off — the attacked run
    selects its power nodes from *attacked* scores, so over-weighting
    them (large alpha) amplifies any selection mistake (under collusion,
    attackers do capture anchor slots), while moderate alpha damps
    dishonest-feedback noise.  The truthful side runs the identical
    procedure on the truthful matrix.

    Metric details (documented substitutions):

    * the power-anchor components of either run are excluded — they
      carry design-injected teleport mass (``alpha/q``, ~15x a typical
      score), not estimates of peer trustworthiness, and Eq. 8 on them
      measures only the anchor-set difference;
    * per-component relative errors are winsorized at ``RMS_CAP`` so
      single near-zero-score components cannot dominate a seed.

    Runs are budget-capped rather than delta-gated: with ``alpha = 0``
    an adversarial trust matrix can be near-periodic (|lambda_2| ~ 1),
    so plain power iteration oscillates and never meets delta — the very
    pathology the greedy factor regularizes away.  A capped run matches
    the paper's fixed-cycle simulation and the residual oscillation
    is negligible against attack-scale RMS.
    """
    n = scenario.n
    cfg = GossipTrustConfig(
        n=n, alpha=alpha, engine_mode="probe", seed=seed, max_cycles=60
    )

    def two_rounds_exact(
        S: TrustMatrix,
    ) -> Tuple[np.ndarray, FrozenSet[int]]:
        first = exact_global_reputation(S, cfg, raise_on_budget=False)
        second = exact_global_reputation(
            S, cfg, power_nodes=first.power_nodes, raise_on_budget=False
        )
        return second.vector, frozenset(first.power_nodes)

    v, anchors_true = two_rounds_exact(scenario.S_true)
    if gossip:
        system = GossipTrust(scenario.S_attacked, cfg)
        first = system.run(raise_on_budget=False)  # round 1 installs anchors
        anchors_att = first.power_nodes
        u = system.run(raise_on_budget=False).vector
    else:
        u, anchors_att = two_rounds_exact(scenario.S_attacked)
    mask = np.ones(n, dtype=bool)
    excluded = list(anchors_true | anchors_att)
    if excluded:
        mask[excluded] = False
    return rms_relative_error(v[mask], u[mask], cap=RMS_CAP)


def _fig4a_point(
    *, seed: int, n: int, gamma: float, alpha: float, gossip: bool = True
) -> float:
    """One Fig. 4(a) sweep point: RMS error for one attacked scenario."""
    streams = RngStreams(seed)
    scenario = build_independent_scenario(n, gamma, rng=streams.get("scenario"))
    return _rms_for(scenario, alpha, seed, gossip=gossip)


def _fig4b_point(
    *,
    seed: int,
    n: int,
    fraction: float,
    group_size: int,
    alpha: float,
    gossip: bool = True,
) -> float:
    """One Fig. 4(b) sweep point: RMS error for one collusive scenario."""
    streams = RngStreams(seed)
    scenario = build_collusive_scenario(
        n, fraction, group_size, rng=streams.get("scenario")
    )
    return _rms_for(scenario, alpha, seed, gossip=gossip)


def run_fig4a(
    *,
    n: int = 1000,
    gammas: Sequence[float] = DEFAULT_GAMMAS,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    repeats: int = 5,
    gossip: bool = True,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(a): RMS error vs fraction of independent malicious peers."""
    table = TextTable(
        ["alpha", "gamma", "rms_mean", "rms_std"],
        title=f"Fig. 4(a): RMS error, independent malicious peers (n={n})",
        float_fmt=".3g",
    )
    series = [Series(label=f"alpha={a:g}") for a in alphas]
    points = [
        SweepPoint(
            fn=_fig4a_point,
            kwargs={"n": n, "gamma": gamma, "alpha": alpha, "gossip": gossip},
            seed=seed,
            label=f"alpha={alpha:g}/gamma={gamma:g}/s{seed}",
        )
        for alpha in alphas
        for gamma in gammas
        for seed in seed_range(repeats)
    ]
    report = run_sweep(points, workers=workers)
    values = iter(report.values())
    for ai, alpha in enumerate(alphas):
        for gamma in gammas:
            vals = [next(values) for _ in seed_range(repeats)]
            mean, std = mean_std(vals)
            table.add_row([alpha, gamma, mean, std])
            series[ai].add(gamma, mean)
    return ExperimentResult(
        experiment_id="fig4a",
        title="Global aggregation errors from fake trust scores: "
        "independent malicious peers",
        tables=[table],
        series=series,
        data={
            f"alpha={a:g}": dict(zip(series[ai].x, series[ai].y))
            for ai, a in enumerate(alphas)
        },
        notes=[report.summary_line()],
    )


def run_fig4b(
    *,
    n: int = 1000,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    alphas: Sequence[float] = (0.0, 0.15),
    repeats: int = 5,
    gossip: bool = True,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(b): RMS error vs collusion group size."""
    table = TextTable(
        ["fraction", "alpha", "group_size", "rms_mean", "rms_std"],
        title=f"Fig. 4(b): RMS error, collusive peers (n={n})",
        float_fmt=".3g",
    )
    points = [
        SweepPoint(
            fn=_fig4b_point,
            kwargs={
                "n": n,
                "fraction": frac,
                "group_size": gs,
                "alpha": alpha,
                "gossip": gossip,
            },
            seed=seed,
            label=f"frac={frac:g}/alpha={alpha:g}/gs={gs}/s{seed}",
        )
        for frac in fractions
        for alpha in alphas
        for gs in group_sizes
        for seed in seed_range(repeats)
    ]
    report = run_sweep(points, workers=workers)
    values = iter(report.values())
    series = []
    for frac in fractions:
        for alpha in alphas:
            s = Series(label=f"{frac:.0%} colluders, alpha={alpha:g}")
            for gs in group_sizes:
                vals = [next(values) for _ in seed_range(repeats)]
                mean, std = mean_std(vals)
                table.add_row([frac, alpha, gs, mean, std])
                s.add(gs, mean)
            series.append(s)
    return ExperimentResult(
        experiment_id="fig4b",
        title="Global aggregation errors from fake trust scores: "
        "collusive malicious peers",
        tables=[table],
        series=series,
        data={s.label: dict(zip(s.x, s.y)) for s in series},
        notes=[report.summary_line()],
    )
