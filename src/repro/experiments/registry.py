"""Experiment registry: id -> runner.

Every runner takes keyword arguments only and returns an
:class:`~repro.experiments.base.ExperimentResult`.  ``quick=True``
shrinks a run to smoke-test scale (used by tests and the CLI's
``--quick``); full scale reproduces the paper's parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.churn_resilience import run_churn_resilience
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.fig3_gossip_steps import run_fig3
from repro.experiments.fig4_malicious import run_fig4a, run_fig4b
from repro.experiments.fig5_filesharing import run_fig5
from repro.experiments.load_experiment import run_load
from repro.experiments.objects_experiment import run_objects
from repro.experiments.overhead_comparison import run_overhead
from repro.experiments.qof_experiment import run_qof
from repro.experiments.storage_experiment import run_storage
from repro.experiments.structured_experiment import run_structured
from repro.experiments.table1_example import run_table1
from repro.experiments.table3_errors import run_table3

__all__ = ["list_experiments", "get_experiment", "run_experiment", "QUICK_OVERRIDES"]

_RUNNERS: Dict[str, Tuple[Callable[..., ExperimentResult], str]] = {
    "table1": (run_table1, "3-node worked example (Fig. 2 / Table 1)"),
    "fig3": (run_fig3, "Gossip steps vs error threshold, three network sizes"),
    "table3": (run_table3, "Gossip/aggregation errors under threshold settings"),
    "fig4a": (run_fig4a, "RMS error vs independent malicious fraction"),
    "fig4b": (run_fig4b, "RMS error vs collusion group size"),
    "fig5": (run_fig5, "Query success rate, GossipTrust vs NoTrust"),
    "fault": (run_fault_tolerance, "Gossip error under loss/link failure/churn"),
    "resilience": (
        run_churn_resilience,
        "Partner strategies under scripted crash/partition/loss chaos",
    ),
    "storage": (run_storage, "Bloom reputation store: memory vs accuracy"),
    "overhead": (run_overhead, "Messages/hops vs DHT baselines"),
    "qof": (run_qof, "Quality-of-feedback weighting (s7 extension)"),
    "objects": (run_objects, "Object/version reputation vs poisoning (s7 extension)"),
    "structured": (run_structured, "DHT all-reduce acceleration (s7 extension)"),
    "load": (run_load, "Success vs load-balance tradeoff of selection policies"),
}

#: per-experiment keyword overrides that shrink a run to smoke scale
QUICK_OVERRIDES: Dict[str, Dict[str, object]] = {
    "table1": {},
    "fig3": {"sizes": (200, 400), "epsilons": (1e-2, 1e-3), "repeats": 1, "cycles_per_point": 1},
    "table3": {"n": 150, "repeats": 1},
    "fig4a": {"n": 200, "gammas": (0.0, 0.2), "alphas": (0.0, 0.15), "repeats": 1},
    "fig4b": {"n": 200, "fractions": (0.05,), "group_sizes": (2, 6), "repeats": 1},
    "fig5": {"n": 150, "n_files": 3000, "gammas": (0.0, 0.2), "queries": 1200, "refresh_interval": 400, "repeats": 1},
    "fault": {"n": 48, "loss_rates": (0.0, 0.2), "link_failure_fractions": (0.0,), "departure_counts": (0, 4), "repeats": 1},
    "resilience": {"n": 48, "strategies": ("global", "hyparview"), "plans": ("crash",), "engines": ("message",), "repeats": 1},
    "storage": {"n": 300, "bracket_bits": (4, 6), "repeats": 1},
    "overhead": {"sizes": (100, 200), "repeats": 1},
    "qof": {"n": 200, "gammas": (0.2, 0.4), "repeats": 1},
    "objects": {"n_peers": 100, "n_files": 60, "gammas": (0.1, 0.5), "downloads": 1500, "repeats": 1},
    "structured": {"sizes": (150, 300), "repeats": 1},
    "load": {"n": 120, "n_files": 1500, "queries": 900, "refresh_interval": 300, "sharpness_values": (0.0, 1.0), "repeats": 1},
}


def list_experiments() -> Dict[str, str]:
    """Mapping of experiment id to one-line description."""
    return {eid: desc for eid, (_fn, desc) in _RUNNERS.items()}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The runner for ``experiment_id``; raises on unknown ids."""
    try:
        return _RUNNERS[experiment_id][0]
    except KeyError:
        known = ", ".join(sorted(_RUNNERS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str, *, quick: bool = False, **overrides: object
) -> ExperimentResult:
    """Run an experiment, optionally at quick (smoke) scale.

    Explicit ``overrides`` win over the quick defaults.
    """
    runner = get_experiment(experiment_id)
    kwargs: Dict[str, object] = {}
    if quick:
        kwargs.update(QUICK_OVERRIDES.get(experiment_id, {}))
    kwargs.update(overrides)
    return runner(**kwargs)
