"""Aggregation overhead — GossipTrust vs the DHT-based baselines.

§1 motivates GossipTrust by the *absence* of fast hashing/search in
unstructured networks: EigenTrust and PowerTrust assume a DHT.  This
experiment puts numbers on that trade on the same trust matrices:

* GossipTrust — messages per aggregation = n per gossip step (every
  node sends one vector per step), with payloads of n triplets;
* distributed EigenTrust — per-iteration opinion shipments to replica
  score managers, plus the one-time DHT lookup storm (hops counted on
  a real Chord routing table);
* PowerTrust — LRW row fetches over the same ring.

Also reports each system's accuracy against the centralized oracle, so
the overhead/accuracy trade is visible in one table.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.centralized import CentralizedEigenvector
from repro.baselines.eigentrust import DistributedEigenTrust
from repro.baselines.powertrust import PowerTrust
from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.metrics.errors import rms_relative_error
from repro.metrics.reporting import TextTable
from repro.utils.rng import RngStreams

__all__ = ["run_overhead"]


def run_overhead(
    *,
    sizes: Sequence[int] = (200, 500, 1000),
    repeats: int = 3,
) -> ExperimentResult:
    """Compare message overhead and accuracy across the three systems."""
    table = TextTable(
        ["n", "system", "messages", "dht_hops", "rms_vs_oracle"],
        title="Aggregation overhead: GossipTrust vs DHT-based baselines",
        float_fmt=".4g",
    )
    raw = {}
    for n in sizes:
        gt_msgs, gt_err = [], []
        et_msgs, et_hops, et_err = [], [], []
        pt_hops, pt_err = [], []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
            oracle = CentralizedEigenvector(S).compute()

            cfg = GossipTrustConfig(n=n, alpha=0.0, engine_mode="probe", seed=seed)
            res = GossipTrust(S, cfg, rng=streams.get("gossip")).run(
                raise_on_budget=False
            )
            # n messages per gossip step (each node ships one vector).
            gt_msgs.append(float(res.total_gossip_steps * n))
            gt_err.append(rms_relative_error(oracle, res.vector))

            et = DistributedEigenTrust(S, a=0.0 + 1e-9, replicas=3).compute()
            et_msgs.append(float(et.messages))
            et_hops.append(float(et.dht_hops))
            # a ~ 0: same fixed point as the oracle
            et_err.append(rms_relative_error(oracle, et.vector))

            pt = PowerTrust(S, alpha=0.15).compute()
            pt_hops.append(float(pt.dht_hops))
            pt_err.append(rms_relative_error(oracle, pt.vector))

        table.add_row([n, "GossipTrust", mean_std(gt_msgs)[0], 0, mean_std(gt_err)[0]])
        table.add_row(
            [n, "EigenTrust(DHT)", mean_std(et_msgs)[0], mean_std(et_hops)[0], mean_std(et_err)[0]]
        )
        table.add_row(
            [n, "PowerTrust(DHT)", float("nan"), mean_std(pt_hops)[0], mean_std(pt_err)[0]]
        )
        raw[n] = {
            "gossip_messages": mean_std(gt_msgs)[0],
            "eigentrust_messages": mean_std(et_msgs)[0],
        }
    return ExperimentResult(
        experiment_id="overhead",
        title="Messages and DHT hops per aggregation, with accuracy vs oracle",
        tables=[table],
        data={str(k): v for k, v in raw.items()},
        notes=[
            "PowerTrust's RMS vs the oracle is nonzero by design: the "
            "greedy factor deliberately biases the fixed point toward "
            "power nodes (same bias GossipTrust has with alpha > 0).",
        ],
    )
