"""Fig. 3 — gossip step counts vs gossip error threshold, per network size.

The paper plots, for three network configurations, the number of gossip
steps needed per aggregation cycle as the gossip error threshold
``epsilon`` sweeps from loose to tight.  Expected shape (§6.2):

* steps grow as epsilon shrinks;
* for small epsilon (<= 1e-4) the curves of different sizes nearly
  coincide — the threshold dominates;
* for large epsilon (>= 1e-2) network size dominates;
* overall O(log n + log 1/epsilon), i.e. scalable.

Any registered engine can execute the sweep (``engine=...`` /
``--engine`` on the CLI); the deterministic ``structured`` all-reduce
yields flat ``ceil(log2 n)`` curves — the contrast the §7 discussion
draws.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.runner import SweepPoint, run_sweep
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.factory import make_engine
from repro.metrics.reporting import Series, TextTable
from repro.metrics.telemetry import CycleRecord, CycleTelemetry
from repro.utils.rng import RngStreams

__all__ = ["run_fig3"]

#: paper sweep (x axis); loosest to tightest
DEFAULT_EPSILONS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
#: the three network configurations
DEFAULT_SIZES = (1000, 2000, 4000)


def _fig3_point(
    *,
    seed: int,
    n: int,
    epsilon: float,
    cycles_per_point: int = 3,
    engine: str = "sync",
    kernel: str = "fast",
    dtype: str = "float64",
    shards: int = 1,
    shard_workers: int = 1,
    workspace_backend: str = "private",
) -> Tuple[float, List[CycleRecord]]:
    """One Fig. 3 sweep point: mean steps over ``cycles_per_point`` cycles.

    Module-level and seed-pure so :func:`~repro.experiments.runner.run_sweep`
    can ship it to worker processes; returns the measurement plus the
    point's per-cycle telemetry records.  ``kernel``/``dtype`` select
    the sync engine's step-loop kernel and buffer precision, and
    ``shards``/``shard_workers``/``workspace_backend`` its sparse-kernel
    sharding (all ignored by engines that do not take them).
    """
    streams = RngStreams(seed)
    S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
    eng = make_engine(
        engine,
        n=n,
        rng=streams,
        epsilon=epsilon,
        mode="probe",
        probe_columns=64,
        max_steps=20_000,
        kernel=kernel,
        dtype=dtype,
        shards=shards,
        shard_workers=shard_workers,
        workspace_backend=workspace_backend,
    )
    v = np.full(n, 1.0 / n)
    telemetry = CycleTelemetry()
    steps = []
    for cycle in range(cycles_per_point):
        res = telemetry.timed(cycle + 1, eng, S, v)
        steps.append(float(res.steps))
        v = res.v_next / res.v_next.sum()
    return float(np.mean(steps)), telemetry.records


def run_fig3(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    repeats: int = 3,
    cycles_per_point: int = 3,
    engine: str = "sync",
    kernel: str = "fast",
    dtype: str = "float64",
    shards: int = 1,
    shard_workers: int = 1,
    workspace_backend: str = "private",
    workers: int = 1,
) -> ExperimentResult:
    """Measure mean gossip steps per cycle for each (n, epsilon).

    Per data point: build a fresh power-law trust matrix, run
    ``cycles_per_point`` gossiped aggregation cycles (probe mode for
    the vectorized engine), and average the step counts; repeat over
    ``repeats`` seeds.  ``engine`` selects any registered cycle engine.
    ``workers`` fans the sweep points over that many processes (results
    are identical to ``workers=1``; each point is a pure function of
    its seed).
    """
    table = TextTable(
        ["n", "epsilon", "steps_mean", "steps_std"],
        title="Fig. 3: gossip steps per cycle vs gossip error threshold",
        float_fmt=".4g",
    )
    series = [Series(label=f"n={n}") for n in sizes]
    raw = {}
    telemetry = CycleTelemetry()
    points = [
        SweepPoint(
            fn=_fig3_point,
            kwargs={
                "n": n,
                "epsilon": eps,
                "cycles_per_point": cycles_per_point,
                "engine": engine,
                "kernel": kernel,
                "dtype": dtype,
                "shards": shards,
                "shard_workers": shard_workers,
                "workspace_backend": workspace_backend,
            },
            seed=seed,
            label=f"n={n}/eps={eps:g}/s{seed}",
        )
        for n in sizes
        for eps in epsilons
        for seed in seed_range(repeats)
    ]
    report = run_sweep(points, workers=workers)
    values = iter(report.values())
    for si, n in enumerate(sizes):
        for eps in epsilons:
            per_seed = []
            for _ in seed_range(repeats):
                mean_steps, records = next(values)
                per_seed.append(mean_steps)
                telemetry.records.extend(records)
            mean, std = mean_std(per_seed)
            table.add_row([n, eps, mean, std])
            series[si].add(eps, mean)
            raw[(n, eps)] = (mean, std)
    return ExperimentResult(
        experiment_id="fig3",
        title="Gossip step counts of three P2P network configurations "
        "under various gossip error thresholds",
        tables=[table],
        series=series,
        data={"steps": {f"{n}/{eps:g}": raw[(n, eps)][0] for n, eps in raw}},
        notes=[
            f"engine={engine!r} via make_engine; probe-mode options apply "
            "to the vectorized engine (all columns share the mixing "
            "matrix; see gossip/engine.py) and are ignored by engines "
            "that do not take them.",
            telemetry.summary_line(),
            report.summary_line(),
        ],
        chart_hints={"log_x": True, "x_label": "epsilon", "y_label": "steps"},
    )
