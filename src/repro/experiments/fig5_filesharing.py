"""Fig. 5 — query success rate in P2P file sharing, GossipTrust vs NoTrust.

The paper's benchmark application: peers query files (two-segment Zipf
popularity), sources are selected by highest global score (GossipTrust)
or uniformly (NoTrust), malicious peers serve corrupted files and lie
in their feedback, and reputations refresh every 1000 queries.
Expected shape: GossipTrust degrades gently (~80% success at 20%
malicious); NoTrust falls sharply, roughly linearly in gamma.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.notrust import NoTrustSelector, ReputationSelector
from repro.core.config import GossipTrustConfig
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.metrics.reporting import Series, TextTable
from repro.peers.behavior import PeerPopulation
from repro.utils.rng import RngStreams
from repro.workload.files import FileCatalog
from repro.workload.filesharing import FileSharingSimulation

__all__ = ["run_fig5"]

DEFAULT_GAMMAS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40)


def run_fig5(
    *,
    n: int = 1000,
    n_files: int = 100_000,
    gammas: Sequence[float] = DEFAULT_GAMMAS,
    queries: int = 5000,
    refresh_interval: int = 1000,
    repeats: int = 3,
) -> ExperimentResult:
    """Run the file-sharing benchmark for both policies across gammas.

    Per seed the two policies share the same population and catalog, so
    the comparison is paired.
    """
    table = TextTable(
        ["policy", "gamma", "success_mean", "success_std"],
        title=f"Fig. 5: query success rate (n={n}, {queries} queries/run)",
        float_fmt=".3g",
    )
    gt_series = Series(label="GossipTrust")
    nt_series = Series(label="NoTrust")
    for gamma in gammas:
        gt_vals, nt_vals = [], []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            population = PeerPopulation.build(
                n, malicious_fraction=gamma, rng=streams.get("population")
            )
            catalog = FileCatalog(n_files, n, rng=streams.get("catalog"))
            cfg = GossipTrustConfig(n=n, engine_mode="probe", seed=seed)
            sim_gt = FileSharingSimulation(
                population,
                catalog,
                ReputationSelector(n, rng=streams.get("select-gt")),
                refresh_interval=refresh_interval,
                config=cfg,
                rng=streams.get("sim-gt"),
            )
            gt_vals.append(sim_gt.run(queries).success_rate)
            sim_nt = FileSharingSimulation(
                population,
                catalog,
                NoTrustSelector(rng=streams.get("select-nt")),
                refresh_interval=refresh_interval,
                config=cfg,
                use_gossip=False,  # NoTrust never reads the scores
                rng=streams.get("sim-nt"),
            )
            nt_vals.append(sim_nt.run(queries).success_rate)
        gt_mean, gt_std = mean_std(gt_vals)
        nt_mean, nt_std = mean_std(nt_vals)
        table.add_row(["GossipTrust", gamma, gt_mean, gt_std])
        table.add_row(["NoTrust", gamma, nt_mean, nt_std])
        gt_series.add(gamma, gt_mean)
        nt_series.add(gamma, nt_mean)
    return ExperimentResult(
        experiment_id="fig5",
        title="Query success rate of GossipTrust vs NoTrust in simulated "
        "P2P file-sharing",
        tables=[table],
        series=[gt_series, nt_series],
        data={
            "GossipTrust": dict(zip(gt_series.x, gt_series.y)),
            "NoTrust": dict(zip(nt_series.x, nt_series.y)),
        },
    )
