"""Fault tolerance — message loss, link failures, churn (§7 claims).

"The system can also tolerate link failures and peer collusions" and is
"adaptive to peer dynamics".  This experiment quantifies those claims on
the message-level engine: one gossiped aggregation cycle under

* independent message loss at rates 0..30%,
* a fraction of failed overlay links,
* mid-cycle peer departures,

reporting the gossip error and round count per condition.  The expected
shape: push-sum loses (x, w) mass *proportionally* when messages drop,
so the converged ratio degrades gracefully — errors stay orders of
magnitude below the score scale even at heavy loss.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.runner import SweepPoint, run_sweep
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.base import GossipCycleResult
from repro.gossip.factory import make_engine
from repro.metrics.reporting import Series, TextTable
from repro.metrics.telemetry import CycleRecord, CycleTelemetry
from repro.network.overlay import Overlay
from repro.network.topology import gnutella_like
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.utils.rng import RngStreams

__all__ = ["run_fault_tolerance"]

DEFAULT_LOSS_RATES = (0.0, 0.05, 0.10, 0.20, 0.30)


def _one_cycle(
    n: int,
    seed: int,
    *,
    loss_rate: float = 0.0,
    failed_link_fraction: float = 0.0,
    departures: int = 0,
    epsilon: float = 1e-4,
    engine: str = "message",
    round_interval: float = 2.0,
    telemetry: Optional[CycleTelemetry] = None,
) -> "GossipCycleResult":
    """Run one message-level cycle under the given fault injection."""
    streams = RngStreams(seed)
    S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
    sim = Simulator()
    topo = gnutella_like(n, rng=streams.get("topology"))
    overlay = Overlay(topo, rng=streams.get("overlay"))
    transport = Transport(sim, latency=1.0, loss_rate=loss_rate, rng=streams.get("net"))
    if failed_link_fraction > 0:
        gen = streams.get("failures")
        edges = list(topo.edges())
        k = int(len(edges) * failed_link_fraction)
        for idx in gen.choice(len(edges), size=k, replace=False):
            u, v = edges[int(idx)]
            transport.fail_link(u, v)
    eng = make_engine(
        engine,
        n=n,
        rng=streams,
        sim=sim,
        transport=transport,
        overlay=overlay,
        epsilon=epsilon,
        round_interval=round_interval,
        max_rounds=300,
    )
    if departures > 0:
        gen = streams.get("churn")
        victims = gen.choice(n, size=departures, replace=False)
        # Depart mid-cycle: one leave per round, starting two rounds in.
        # Scheduled in units of round_interval so changing the pacing
        # keeps churn aligned with cycle progress (hard-coded absolute
        # times would silently shift where in the cycle churn lands).
        for i, victim in enumerate(victims.tolist()):
            sim.call_in(
                round_interval * (2 + i), _leave_if_alive, overlay, int(victim)
            )
    v = np.full(n, 1.0 / n)
    if telemetry is not None:
        return telemetry.timed(1, eng, S, v)
    return eng.run_cycle(S, v)


def _leave_if_alive(overlay: Overlay, node: int) -> None:
    if overlay.is_alive(node) and overlay.alive_count > 2:
        overlay.leave(node)


#: fault axis name -> how a sweep level maps onto ``_one_cycle`` kwargs
_FAULT_AXES = {
    "loss": lambda level: {"loss_rate": float(level)},
    "link": lambda level: {"failed_link_fraction": float(level)},
    "churn": lambda level: {"departures": int(level)},
}


def _fault_point(
    *, seed: int, n: int, fault: str, level: float, engine: str
) -> Tuple[Tuple[float, float, float], List[CycleRecord]]:
    """One fault-tolerance sweep point: a single faulted cycle.

    Returns ``((gossip_error, rounds, mass_lost), records)``.
    """
    if fault not in _FAULT_AXES:
        raise ExperimentError(f"unknown fault axis {fault!r}")
    telemetry = CycleTelemetry()
    res = _one_cycle(
        n, seed, engine=engine, telemetry=telemetry, **_FAULT_AXES[fault](level)
    )
    return (
        (res.gossip_error, float(res.steps), res.mass_lost_fraction),
        telemetry.records,
    )


def run_fault_tolerance(
    *,
    n: int = 128,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    link_failure_fractions: Sequence[float] = (0.0, 0.1, 0.2),
    departure_counts: Sequence[int] = (0, 8, 16),
    repeats: int = 3,
    engine: str = "message",
    workers: int = 1,
) -> ExperimentResult:
    """Sweep the three fault axes on a message-level engine.

    ``engine`` may be ``"message"`` (synchronized rounds) or ``"async"``
    (per-node Poisson clocks) — both run real messages on the DES.
    ``workers`` fans the (fault, level, seed) points over processes.
    """
    table = TextTable(
        ["fault", "level", "gossip_error", "rounds", "mass_lost"],
        title=f"Fault tolerance of one gossiped cycle (n={n}, {engine} engine)",
        float_fmt=".3g",
    )
    loss_series = Series(label="message loss")
    link_series = Series(label="link failure")
    churn_series = Series(label="departures")
    raw = {}
    telemetry = CycleTelemetry()

    axes = [
        ("loss", loss_series, list(loss_rates)),
        ("link", link_series, list(link_failure_fractions)),
        ("churn", churn_series, list(departure_counts)),
    ]
    points = [
        SweepPoint(
            fn=_fault_point,
            kwargs={"n": n, "fault": fault, "level": level, "engine": engine},
            seed=seed,
            label=f"{fault}/{level:g}/s{seed}",
        )
        for fault, _, levels in axes
        for level in levels
        for seed in seed_range(repeats)
    ]
    report = run_sweep(points, workers=workers)
    values = iter(report.values())
    for fault, series, levels in axes:
        for level in levels:
            errs, rounds, lost = [], [], []
            for _ in seed_range(repeats):
                (err, steps, mass), records = next(values)
                errs.append(err)
                rounds.append(steps)
                lost.append(mass)
                telemetry.records.extend(records)
            m_err, _ = mean_std(errs)
            table.add_row([fault, level, m_err, mean_std(rounds)[0], mean_std(lost)[0]])
            series.add(level, m_err)
            key = f"{fault}/{level}" if fault == "churn" else f"{fault}/{level:g}"
            raw[key] = m_err

    return ExperimentResult(
        experiment_id="fault",
        title="Gossip error under message loss, link failure, and churn",
        tables=[table],
        series=[loss_series, link_series, churn_series],
        data=raw,
        notes=[
            "Gossip partners are sampled globally (the paper's default); "
            "link failures therefore thin random pairs rather than cut the flood tree.",
            f"engine={engine!r} via make_engine.",
            telemetry.summary_line(),
            report.summary_line(),
        ],
    )
