"""Churn resilience — partner strategies under scripted chaos.

The fault-tolerance experiment injects faults once at setup under the
omniscient global partner sampler.  This sweep runs the full robustness
stack instead: every partner strategy (global oracle, neighbors-only,
HyParView, Brahms) on both DES engines under scripted
:class:`~repro.network.faultplan.FaultPlan` scenarios — crash bursts
with rejoin, a mid-run partition that heals, a loss ramp — with the
engine-level mass-restoration guard armed.

Per (engine x strategy x plan) cell it reports:

* aggregation quality: gossip error vs the exact oracle, rounds to
  converge, mass lost, mass restorations fired;
* view health after the run: live nodes whose view holds no live peer
  (isolation), weakly-connected components of the live view graph, mean
  live degree;
* overhead: membership maintenance messages plus reliable-probe
  retries/acks (the price of failure detection).

The acceptance shape: errors stay within the same order of magnitude as
the global-sampling baseline, and the partial-view protocols end every
healed scenario with zero permanently-isolated live nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.runner import SweepPoint, run_sweep
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip.factory import make_engine
from repro.metrics.reporting import Series, TextTable
from repro.network.faultplan import named_plan, plan_names
from repro.network.overlay import Overlay
from repro.network.topology import gnutella_like
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.utils.rng import RngStreams

__all__ = ["run_churn_resilience"]

DEFAULT_STRATEGIES = ("global", "neighbors", "hyparview", "brahms")
DEFAULT_PLANS = ("crash", "partition", "loss_ramp")
DEFAULT_ENGINES = ("message", "async")

#: simulated-time span the named plans scale their event times to;
#: chosen so a typical cycle (40-60 rounds at interval 2) runs past the
#: last heal/rejoin event before it converges
_PLAN_HORIZON = 100.0


def _resilience_point(
    *,
    seed: int,
    n: int,
    strategy: str,
    plan: str,
    engine: str,
    mass_restore_budget: float,
) -> Tuple[float, ...]:
    """One chaos run: (engine, strategy, plan) under a fresh substrate.

    Returns a flat metric tuple (see ``_METRICS`` for the order).
    """
    streams = RngStreams(seed)
    S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
    sim = Simulator()
    topo = gnutella_like(n, rng=streams.get("topology"))
    overlay = Overlay(topo, rng=streams.get("overlay"))
    transport = Transport(sim, latency=1.0, loss_rate=0.0, rng=streams.get("net"))
    eng = make_engine(
        engine,
        n=n,
        rng=streams,
        sim=sim,
        transport=transport,
        overlay=overlay,
        partner_strategy=strategy,
        mass_restore_budget=mass_restore_budget,
        max_rounds=150,
    )
    fault_plan = named_plan(plan, horizon=_PLAN_HORIZON, rng=streams.get("faults"))
    fault_plan.schedule(
        sim,
        transport,
        overlay,
        on_rejoin=eng.partnering.node_joined,
    )
    overhead_before = transport.sent
    res = eng.run_cycle(S, np.full(n, 1.0 / n))
    health = eng.partnering.health()
    stats = eng.partnering.retry_stats()
    maintenance = (
        health.maintenance_messages + int(stats["sent"]) + int(stats["acks_sent"])
    )
    total_sent = transport.sent - overhead_before
    overhead_fraction = maintenance / total_sent if total_sent else 0.0
    return (
        float(res.gossip_error),
        float(res.steps),
        float(res.mass_lost_fraction),
        float(res.mass_restorations),
        float(health.isolated_live_nodes),
        float(health.components),
        float(health.mean_live_degree),
        float(int(stats["retries"]) + int(stats["gave_up"])),
        float(overhead_fraction),
        1.0 if res.converged else 0.0,
    )


_METRICS = (
    "error",
    "rounds",
    "mass_lost",
    "restorations",
    "isolated",
    "components",
    "live_degree",
    "retries",
    "overhead_frac",
    "converged",
)


def run_churn_resilience(
    *,
    n: int = 96,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    plans: Sequence[str] = DEFAULT_PLANS,
    engines: Sequence[str] = DEFAULT_ENGINES,
    repeats: int = 2,
    mass_restore_budget: float = 0.25,
    workers: int = 1,
    strategy: Optional[str] = None,
    plan: Optional[str] = None,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Sweep partner strategies x fault plans x DES engines.

    ``strategy`` / ``plan`` / ``engine`` restrict the corresponding axis
    to a single value (the CLI's ``--strategy`` / ``--engine`` flags);
    the plural forms set the whole axis.  ``workers`` fans the seeded
    points over processes with bit-identical results.
    """
    if strategy is not None:
        strategies = (strategy,)
    if plan is not None:
        plans = (plan,)
    if engine is not None:
        engines = (engine,)
    # A bare string from `--set plans=partition` is one axis value, not
    # a character sequence.
    if isinstance(strategies, str):
        strategies = (strategies,)
    if isinstance(plans, str):
        plans = (plans,)
    if isinstance(engines, str):
        engines = (engines,)
    for p in plans:
        if p not in plan_names():
            known = ", ".join(plan_names())
            raise ExperimentError(f"unknown fault plan {p!r}; known: {known}")

    table = TextTable(
        [
            "engine",
            "strategy",
            "plan",
            "error",
            "rounds",
            "mass_lost",
            "restores",
            "isolated",
            "components",
            "overhead",
        ],
        title=f"Churn resilience under scripted fault plans (n={n})",
        float_fmt=".3g",
    )
    cells = [
        (eng_name, strat, p)
        for eng_name in engines
        for strat in strategies
        for p in plans
    ]
    points = [
        SweepPoint(
            fn=_resilience_point,
            kwargs={
                "n": n,
                "strategy": strat,
                "plan": p,
                "engine": eng_name,
                "mass_restore_budget": mass_restore_budget,
            },
            seed=seed,
            label=f"{eng_name}/{strat}/{p}/s{seed}",
        )
        for (eng_name, strat, p) in cells
        for seed in seed_range(repeats)
    ]
    report = run_sweep(points, workers=workers)
    values = iter(report.values())

    raw: Dict[str, object] = {}
    series_by_strategy: Dict[str, Series] = {
        strat: Series(label=strat) for strat in strategies
    }
    plan_index = {p: i for i, p in enumerate(plans)}
    for eng_name, strat, p in cells:
        metric_lists: List[List[float]] = [[] for _ in _METRICS]
        for _ in seed_range(repeats):
            metrics = next(values)
            for slot, value in zip(metric_lists, metrics):
                slot.append(value)
        means = {name: mean_std(vals)[0] for name, vals in zip(_METRICS, metric_lists)}
        table.add_row(
            [
                eng_name,
                strat,
                p,
                means["error"],
                means["rounds"],
                means["mass_lost"],
                means["restorations"],
                means["isolated"],
                means["components"],
                means["overhead_frac"],
            ]
        )
        if eng_name == engines[0]:
            series_by_strategy[strat].add(plan_index[p], means["error"])
        raw[f"{eng_name}/{strat}/{p}"] = means["error"]
        raw[f"{eng_name}/{strat}/{p}/isolated"] = means["isolated"]
        raw[f"{eng_name}/{strat}/{p}/overhead"] = means["overhead_frac"]

    return ExperimentResult(
        experiment_id="resilience",
        title="Partner strategies under scripted crash/partition/loss chaos",
        tables=[table],
        series=list(series_by_strategy.values()),
        data=raw,
        notes=[
            "Fault plans are seeded schedules (network/faultplan.py) applied "
            "mid-cycle; membership strategies must detect and repair live.",
            f"mass_restore_budget={mass_restore_budget:g} arms the engines' "
            "self-healing guard (renormalize on message, restart on async).",
            "overhead = membership maintenance + reliable probes + acks, as a "
            "fraction of all transport messages.",
            f"series x-axis indexes plans in order: {', '.join(plans)}.",
            report.summary_line(),
        ],
    )
