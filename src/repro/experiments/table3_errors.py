"""Table 3 — gossip and aggregation errors under three threshold settings.

For a 1000-node network the paper tabulates, per (epsilon, delta)
setting, the number of aggregation cycles, gossip steps per cycle, the
gossip error (relative error the gossip protocol leaves in the scores)
and the aggregation error (distance between the converged gossiped
vector and the exact one).  Expected shape: tighter thresholds cost
more cycles/steps and deliver smaller errors; gossip error lands well
below epsilon; aggregation error tracks delta from below.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.metrics.reporting import TextTable
from repro.utils.rng import RngStreams

__all__ = ["run_table3", "PAPER_SETTINGS"]

#: the paper's three (epsilon, delta) convergence settings
PAPER_SETTINGS: Tuple[Tuple[float, float], ...] = (
    (1e-5, 1e-4),
    (1e-4, 1e-3),
    (1e-3, 1e-2),
)


def run_table3(
    *,
    n: int = 1000,
    settings: Sequence[Tuple[float, float]] = PAPER_SETTINGS,
    repeats: int = 3,
    alpha: float = 0.15,
    engine_mode: str = "full",
    engine: str = "sync",
) -> ExperimentResult:
    """Regenerate Table 3 on synthetic power-law trust matrices.

    ``engine_mode='full'`` runs the protocol exactly (every node holds
    every component); at n = 1000 this is the paper's configuration.
    ``engine`` selects any registered cycle engine by name; the
    aggregation-error column needs the exact oracle, so the reference
    computation stays on regardless of the config default.
    """
    table = TextTable(
        [
            "epsilon",
            "delta",
            "agg_cycles",
            "gossip_steps",
            "gossip_error",
            "agg_error",
        ],
        title=f"Table 3: errors under convergence settings (n={n})",
        float_fmt=".3g",
    )
    raw = {}
    for eps, delta in settings:
        cycles_l, steps_l, gerr_l, aerr_l = [], [], [], []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
            cfg = GossipTrustConfig(
                n=n,
                alpha=alpha,
                epsilon=eps,
                delta=delta,
                engine_mode=engine_mode,
                engine=engine,
                seed=seed,
            )
            result = GossipTrust(S, cfg, rng=streams.get("system")).run(
                raise_on_budget=False, compute_reference=True
            )
            cycles_l.append(float(result.cycles))
            steps_l.append(
                float(sum(result.steps_per_cycle)) / max(1, len(result.steps_per_cycle))
            )
            gerr_l.append(result.mean_gossip_error)
            aerr_l.append(result.aggregation_error)
        row = (
            mean_std(cycles_l)[0],
            mean_std(steps_l)[0],
            mean_std(gerr_l)[0],
            mean_std(aerr_l)[0],
        )
        table.add_row([eps, delta, row[0], row[1], row[2], row[3]])
        raw[(eps, delta)] = {
            "cycles": row[0],
            "steps": row[1],
            "gossip_error": row[2],
            "aggregation_error": row[3],
        }
    return ExperimentResult(
        experiment_id="table3",
        title="Gossip and aggregation errors under three convergence "
        "threshold settings for a 1000-node P2P network",
        tables=[table],
        data={"rows": {f"{e:g}/{d:g}": v for (e, d), v in raw.items()}},
    )
