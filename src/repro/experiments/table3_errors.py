"""Table 3 — gossip and aggregation errors under three threshold settings.

For a 1000-node network the paper tabulates, per (epsilon, delta)
setting, the number of aggregation cycles, gossip steps per cycle, the
gossip error (relative error the gossip protocol leaves in the scores)
and the aggregation error (distance between the converged gossiped
vector and the exact one).  Expected shape: tighter thresholds cost
more cycles/steps and deliver smaller errors; gossip error lands well
below epsilon; aggregation error tracks delta from below.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.config import GossipTrustConfig
from repro.core.gossiptrust import GossipTrust
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.runner import SweepPoint, run_sweep
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.metrics.reporting import TextTable
from repro.utils.rng import RngStreams

__all__ = ["run_table3", "PAPER_SETTINGS"]

#: the paper's three (epsilon, delta) convergence settings
PAPER_SETTINGS: Tuple[Tuple[float, float], ...] = (
    (1e-5, 1e-4),
    (1e-4, 1e-3),
    (1e-3, 1e-2),
)


def _table3_point(
    *,
    seed: int,
    n: int,
    epsilon: float,
    delta: float,
    alpha: float,
    engine_mode: str,
    engine: str,
) -> Tuple[float, float, float, float]:
    """One Table 3 sweep point: a full GossipTrust run for one seed.

    Returns ``(cycles, mean_steps_per_cycle, gossip_error, agg_error)``.
    """
    streams = RngStreams(seed)
    S = synthetic_trust_matrix(n, rng=streams.get("matrix"))
    cfg = GossipTrustConfig(
        n=n,
        alpha=alpha,
        epsilon=epsilon,
        delta=delta,
        engine_mode=engine_mode,
        engine=engine,
        seed=seed,
    )
    result = GossipTrust(S, cfg, rng=streams.get("system")).run(
        raise_on_budget=False, compute_reference=True
    )
    mean_steps = float(sum(result.steps_per_cycle)) / max(
        1, len(result.steps_per_cycle)
    )
    return (
        float(result.cycles),
        mean_steps,
        result.mean_gossip_error,
        result.aggregation_error,
    )


def run_table3(
    *,
    n: int = 1000,
    settings: Sequence[Tuple[float, float]] = PAPER_SETTINGS,
    repeats: int = 3,
    alpha: float = 0.15,
    engine_mode: str = "full",
    engine: str = "sync",
    workers: int = 1,
) -> ExperimentResult:
    """Regenerate Table 3 on synthetic power-law trust matrices.

    ``engine_mode='full'`` runs the protocol exactly (every node holds
    every component); at n = 1000 this is the paper's configuration.
    ``engine`` selects any registered cycle engine by name; the
    aggregation-error column needs the exact oracle, so the reference
    computation stays on regardless of the config default.  ``workers``
    fans the (setting, seed) points over processes via
    :func:`~repro.experiments.runner.run_sweep`.
    """
    table = TextTable(
        [
            "epsilon",
            "delta",
            "agg_cycles",
            "gossip_steps",
            "gossip_error",
            "agg_error",
        ],
        title=f"Table 3: errors under convergence settings (n={n})",
        float_fmt=".3g",
    )
    raw = {}
    points = [
        SweepPoint(
            fn=_table3_point,
            kwargs={
                "n": n,
                "epsilon": eps,
                "delta": delta,
                "alpha": alpha,
                "engine_mode": engine_mode,
                "engine": engine,
            },
            seed=seed,
            label=f"eps={eps:g}/delta={delta:g}/s{seed}",
        )
        for eps, delta in settings
        for seed in seed_range(repeats)
    ]
    report = run_sweep(points, workers=workers)
    values = iter(report.values())
    for eps, delta in settings:
        cycles_l, steps_l, gerr_l, aerr_l = [], [], [], []
        for _ in seed_range(repeats):
            cycles, mean_steps, gerr, aerr = next(values)
            cycles_l.append(cycles)
            steps_l.append(mean_steps)
            gerr_l.append(gerr)
            aerr_l.append(aerr)
        row = (
            mean_std(cycles_l)[0],
            mean_std(steps_l)[0],
            mean_std(gerr_l)[0],
            mean_std(aerr_l)[0],
        )
        table.add_row([eps, delta, row[0], row[1], row[2], row[3]])
        raw[(eps, delta)] = {
            "cycles": row[0],
            "steps": row[1],
            "gossip_error": row[2],
            "aggregation_error": row[3],
        }
    return ExperimentResult(
        experiment_id="table3",
        title="Gossip and aggregation errors under three convergence "
        "threshold settings for a 1000-node P2P network",
        tables=[table],
        data={"rows": {f"{e:g}/{d:g}": v for (e, d), v in raw.items()}},
        notes=[report.summary_line()],
    )
