"""Table 1 / Fig. 2 — the three-node worked example, replayed exactly.

The paper walks one gossiped aggregation of node N2's score on a
3-node network: ``v(t) = (1/2, 1/3, 1/6)``, local scores about N2
``(s_12, s_22, s_32) = (0.2, 0, 0.6)``, target ``v_2(t+1) = 0.2``
(Eq. 6 dot product).  Fig. 2's partner choices are: step 1 — N1->N3,
N2->N1, N3->N1; step 2 — a choice reaching exact consensus (N1->N3,
N2->N3, N3->N2 does).

**Fidelity note:** the paper's *printed* Table 1 is internally
inconsistent (its step-1/step-2 rows for N2 and N3 contradict both the
worked text, which states ``x_2/w_2 = 0`` and ``x_3/w_3 = inf`` after
step 1, and the claimed final consensus 0.2).  We reproduce the worked
*text*, which is the mathematically coherent account, and assert the
final consensus the paper states: all three nodes at 0.2.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.gossip.pushsum import scripted_push_sum
from repro.metrics.reporting import TextTable

__all__ = [
    "INITIAL_X",
    "INITIAL_W",
    "PARTNER_SCRIPT",
    "EXPECTED_CONSENSUS",
    "run_table1",
]

#: x_i(0) = s_i2 * v_i(t): (1/2)*0.2, (1/3)*0, (1/6)*0.6
INITIAL_X = (0.1, 0.0, 0.1)
#: w_i(0): 1 only at the subject node N2
INITIAL_W = (0.0, 1.0, 0.0)
#: step 1 partners from Fig. 2(a); step 2 partners reaching consensus
PARTNER_SCRIPT = ((2, 0, 0), (2, 2, 1))
#: v_2(t+1) per Eq. 6
EXPECTED_CONSENSUS = 0.2


def run_table1() -> ExperimentResult:
    """Replay the worked example and emit the per-step gossip table."""
    result = scripted_push_sum(
        list(INITIAL_X), list(INITIAL_W), [list(s) for s in PARTNER_SCRIPT]
    )
    table = TextTable(
        ["step", "x1", "w1", "beta1", "x2", "w2", "beta2", "x3", "w3", "beta3"],
        title="Table 1: gossiped scores per step (worked-text replay)",
        float_fmt=".3g",
    )

    def beta(x: float, w: float) -> float:
        if w == 0.0:
            return float("inf") if x > 0 else 0.0
        return x / w

    for step, (x, w) in enumerate(result.history, start=1):
        row = [step]
        for i in range(3):
            row.extend([float(x[i]), float(w[i]), beta(float(x[i]), float(w[i]))])
        table.add_row(row)

    consensus = result.estimates
    out = ExperimentResult(
        experiment_id="table1",
        title="3-node worked example (Fig. 2 / Table 1): v2(t+1) = 0.2 on all nodes",
        tables=[table],
        data={
            "consensus": consensus.tolist(),
            "expected": EXPECTED_CONSENSUS,
            "exact": bool(np.allclose(consensus, EXPECTED_CONSENSUS)),
            "mass_x": float(result.x.sum()),
            "mass_w": float(result.w.sum()),
        },
        notes=[
            "The paper's printed Table 1 contradicts its own worked text; "
            "this replay follows the text (see module docstring).",
        ],
    )
    return out
