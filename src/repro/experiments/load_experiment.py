"""Load-balance ablation: success rate vs download-load concentration.

Deterministic highest-reputation selection sends every request for a
file to the same peer — the success-maximizing policy, and the worst
possible load distribution.  This experiment sweeps the
:class:`~repro.baselines.notrust.ProportionalSelector` sharpness from
0 (NoTrust) through 1 (reputation-proportional) to the deterministic
argmax, reporting query success rate and the Gini coefficient of
per-peer download load.  Expected shape: success rises and load balance
worsens monotonically with sharpness; proportional selection buys most
of the success at a fraction of the concentration.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.baselines.notrust import NoTrustSelector, ProportionalSelector, ReputationSelector
from repro.core.config import GossipTrustConfig
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.metrics.reporting import Series, TextTable
from repro.peers.behavior import PeerPopulation
from repro.utils.rng import RngStreams
from repro.workload.files import FileCatalog
from repro.workload.filesharing import FileSharingSimulation

__all__ = ["gini", "run_load"]


def gini(loads: np.ndarray) -> float:
    """Gini coefficient of a non-negative load vector (0 = perfectly even)."""
    x = np.sort(np.asarray(loads, dtype=np.float64))
    n = x.size
    total = x.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(x)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2 * (cum.sum() / total)) / n)


class _LoadTrackingPolicy:
    """Wraps a selection policy, counting downloads served per peer."""

    def __init__(self, inner: Any, n: int) -> None:
        self.inner = inner
        self.loads = np.zeros(n, dtype=np.int64)

    def choose(self, responders: Sequence[int]) -> int:
        pick = int(self.inner.choose(responders))
        self.loads[pick] += 1
        return pick

    def update_scores(self, scores: np.ndarray) -> None:
        self.inner.update_scores(scores)


def run_load(
    *,
    n: int = 400,
    n_files: int = 8000,
    gamma: float = 0.2,
    queries: int = 4000,
    refresh_interval: int = 1000,
    sharpness_values: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    include_argmax: bool = True,
    repeats: int = 2,
) -> ExperimentResult:
    """Sweep selection sharpness; report success vs load concentration."""
    table = TextTable(
        ["policy", "success_mean", "gini_mean", "max_load_share"],
        title=f"Selection policy tradeoff (n={n}, gamma={gamma:.0%})",
        float_fmt=".3g",
    )
    success_series = Series(label="success rate")
    gini_series = Series(label="load gini")
    raw: Dict[str, Dict[str, float]] = {}

    def run_policy(
        label: str,
        make_policy: Callable[[RngStreams], Any],
        x_value: float,
    ) -> None:
        succ: List[float] = []
        ginis: List[float] = []
        shares: List[float] = []
        for seed in seed_range(repeats):
            streams = RngStreams(seed)
            population = PeerPopulation.build(
                n, malicious_fraction=gamma, rng=streams.get("population")
            )
            catalog = FileCatalog(n_files, n, rng=streams.get("catalog"))
            policy = _LoadTrackingPolicy(make_policy(streams), n)
            sim = FileSharingSimulation(
                population,
                catalog,
                policy,
                refresh_interval=refresh_interval,
                config=GossipTrustConfig(n=n, engine_mode="probe", seed=seed),
                rng=streams.get("sim"),
            )
            result = sim.run(queries)
            succ.append(result.success_rate)
            ginis.append(gini(policy.loads))
            shares.append(float(policy.loads.max()) / max(1, policy.loads.sum()))
        row = [label, mean_std(succ)[0], mean_std(ginis)[0], mean_std(shares)[0]]
        table.add_row(row)
        success_series.add(x_value, row[1])
        gini_series.add(x_value, row[2])
        raw[label] = {"success": row[1], "gini": row[2], "max_share": row[3]}

    for sharp in sharpness_values:
        if sharp == 0.0:
            run_policy(
                "notrust(s=0)",
                lambda streams: NoTrustSelector(rng=streams.get("select")),
                0.0,
            )
        else:
            run_policy(
                f"proportional(s={sharp:g})",
                lambda streams, s=sharp: ProportionalSelector(
                    n, sharpness=s, rng=streams.get("select")
                ),
                sharp,
            )
    if include_argmax:
        run_policy(
            "argmax",
            lambda streams: ReputationSelector(n, rng=streams.get("select")),
            max(sharpness_values) * 2 if sharpness_values else 8.0,
        )
    return ExperimentResult(
        experiment_id="load",
        title="Success-rate / load-balance tradeoff of selection policies",
        tables=[table],
        series=[success_series, gini_series],
        data=raw,
        notes=[
            "Gini of per-peer downloads served: 0 = even load, 1 = one "
            "peer serves everything.  The argmax point is plotted at "
            "2x the largest sharpness for chart continuity.",
        ],
    )
