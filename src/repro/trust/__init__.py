"""Local-trust substrate: feedback ledgers and the normalized trust matrix.

Implements §4.1 of the paper: raw local scores ``r_ij`` accumulated from
transactions, row normalization into the stochastic matrix
``S = (s_ij)`` (Eq. 1), and pre-trust / power-node distributions used by
the greedy-factor mixing.
"""

from repro.trust.feedback import FeedbackLedger, TransactionRecord
from repro.trust.matrix import TrustMatrix
from repro.trust.pretrust import PretrustVector, uniform_pretrust
from repro.trust.qof import QofWeightedAggregation, feedback_quality

__all__ = [
    "FeedbackLedger",
    "TransactionRecord",
    "TrustMatrix",
    "PretrustVector",
    "uniform_pretrust",
    "feedback_quality",
    "QofWeightedAggregation",
]
