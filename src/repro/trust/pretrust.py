"""Pre-trust / power-node probability distributions.

The greedy-factor mixing (§6.3, inherited from PowerTrust/EigenTrust)
biases the aggregation iteration toward a distinguished node set::

    V(t+1) = (1 - alpha) * S^T V(t) + alpha * P

where ``P`` is a probability vector supported on the power nodes (or,
in EigenTrust, the pre-trusted peers).  :class:`PretrustVector` is that
``P`` with the bookkeeping to rebuild it as power nodes change.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

import numpy as np

from repro.errors import ValidationError

__all__ = ["PretrustVector", "uniform_pretrust"]


class PretrustVector:
    """A probability vector supported on a distinguished node set.

    Parameters
    ----------
    n:
        Total number of peers.
    members:
        The distinguished (power / pre-trusted) node ids.  Mass is split
        uniformly among them.  An empty member set degrades to the
        uniform distribution over all peers — mixing then regularizes
        like PageRank's teleport rather than silently disabling alpha.
    """

    def __init__(self, n: int, members: Iterable[int] = ()) -> None:
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self.n = int(n)
        mem = frozenset(int(m) for m in members)
        for m in mem:
            if not 0 <= m < n:
                raise ValidationError(f"member {m} out of range [0, {n})")
        self._members: FrozenSet[int] = mem
        self._vector = self._build()

    def _build(self) -> np.ndarray:
        v = np.zeros(self.n)
        if self._members:
            share = 1.0 / len(self._members)
            for m in self._members:
                v[m] = share
        else:
            v[:] = 1.0 / self.n
        return v

    @property
    def members(self) -> FrozenSet[int]:
        """The distinguished node ids."""
        return self._members

    @property
    def vector(self) -> np.ndarray:
        """The probability vector ``P`` (copy)."""
        return self._vector.copy()

    def with_members(self, members: Iterable[int]) -> "PretrustVector":
        """A new vector over the same ``n`` with a different member set."""
        return PretrustVector(self.n, members)

    def mix(self, aggregated: np.ndarray, alpha: float) -> np.ndarray:
        """Apply greedy-factor mixing: ``(1-alpha)*aggregated + alpha*P``.

        ``aggregated`` must already be a probability vector (the output
        of one ``S^T V`` cycle); the result then is one too.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValidationError(f"alpha must be in [0, 1], got {alpha}")
        agg = np.asarray(aggregated, dtype=np.float64)
        if agg.shape != (self.n,):
            raise ValidationError(
                f"aggregated vector must have shape ({self.n},), got {agg.shape}"
            )
        if alpha == 0.0:  # noqa: GT004 -- exact sentinel: alpha=0.0 is the literal 'mixing disabled' flag, set by callers, never computed
            return agg.copy()
        return (1.0 - alpha) * agg + alpha * self._vector

    def __repr__(self) -> str:  # pragma: no cover
        return f"PretrustVector(n={self.n}, members={sorted(self._members)})"


def uniform_pretrust(n: int) -> PretrustVector:
    """The uniform distribution over all peers (no distinguished set)."""
    return PretrustVector(n, ())
