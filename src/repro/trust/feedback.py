"""Feedback ledger: raw local trust scores from transactions.

"After a peer completes a transaction, e.g. downloading a music file,
the peer will rate the other based on its experience" (§1).  The ledger
accumulates those ratings per (rater, ratee) pair; the trust matrix is
built from its totals.

Rating conventions follow EigenTrust, which the paper builds on: each
transaction is rated +1 (satisfactory) or -1 (unsatisfactory); the local
score is ``r_ij = max(sat_ij - unsat_ij, 0)``.  Raw real-valued scores
can also be recorded directly (the paper's threat models assign
fractional dishonest scores).

Dirty-row tracking
------------------
Every mutation marks its rater row *dirty*.  A long-lived consumer (the
:class:`~repro.service.ReputationService`) drains the dirty set between
aggregation epochs via :meth:`FeedbackLedger.drain_dirty`, receiving
row-level deltas — the current clamped score row of each mutated rater —
and feeds them to :meth:`~repro.trust.matrix.TrustMatrix.apply_row_deltas`
so the normalized matrix is patched instead of rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.types import TransactionOutcome

__all__ = ["TransactionRecord", "FeedbackLedger"]


@dataclass(frozen=True)
class TransactionRecord:
    """One rated transaction."""

    rater: int
    ratee: int
    outcome: TransactionOutcome
    rating: float
    time: float = 0.0


class FeedbackLedger:
    """Accumulates local trust scores ``r_ij`` for ``n`` peers.

    Storage is a sparse dict-of-dicts keyed by rater; memory is
    proportional to the number of distinct (rater, ratee) pairs, which
    the power-law feedback distribution keeps near ``n * d_avg``.
    """

    def __init__(self, n: int, *, keep_history: bool = False) -> None:
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._scores: Dict[int, Dict[int, float]] = {}
        self._history: Optional[List[TransactionRecord]] = [] if keep_history else None
        self.transactions = 0
        #: rater rows mutated since the last drain (see drain_dirty)
        self._dirty: Set[int] = set()

    def _check(self, rater: int, ratee: int) -> None:
        if not 0 <= rater < self.n:
            raise ValidationError(f"rater {rater} out of range [0, {self.n})")
        if not 0 <= ratee < self.n:
            raise ValidationError(f"ratee {ratee} out of range [0, {self.n})")
        if rater == ratee:
            raise ValidationError("self-rating is not allowed")

    def record_transaction(
        self,
        rater: int,
        ratee: int,
        outcome: TransactionOutcome,
        *,
        time: float = 0.0,
    ) -> None:
        """Record a +1/-1 rated transaction (EigenTrust convention).

        A satisfactory (authentic) transaction adds +1 to the pair's
        running satisfaction balance, an unsatisfactory one -1; the
        stored local score is the balance clamped at zero.
        """
        self._check(rater, ratee)
        delta = 1.0 if outcome is TransactionOutcome.AUTHENTIC else -1.0
        row = self._scores.setdefault(rater, {})
        # Store the raw balance (may be negative); EigenTrust clamps the
        # *score* at read time, but the balance itself is history-long:
        # sat - unsat over all transactions, not a running clamp.
        row[ratee] = row.get(ratee, 0.0) + delta
        self._dirty.add(rater)
        self.transactions += 1
        if self._history is not None:
            self._history.append(
                TransactionRecord(rater, ratee, outcome, delta, time)
            )

    def set_score(self, rater: int, ratee: int, score: float) -> None:
        """Directly set the raw local score ``r_ij`` (threat models use this)."""
        self._check(rater, ratee)
        if score < 0:
            raise ValidationError(f"raw local scores are non-negative, got {score}")
        row = self._scores.setdefault(rater, {})
        if score == 0.0:  # noqa: GT004 -- exact sentinel: 0.0 is the caller's literal 'erase this score' value, not an accumulated quantity
            row.pop(ratee, None)
        else:
            row[ratee] = float(score)
        self._dirty.add(rater)

    def add_score(self, rater: int, ratee: int, delta: float) -> None:
        """Add ``delta`` to the raw local score, clamping at zero."""
        self._check(rater, ratee)
        row = self._scores.setdefault(rater, {})
        new = max(0.0, row.get(ratee, 0.0) + delta)
        if new == 0.0:  # noqa: GT004 -- exact sentinel: max(0.0, ...) pins fully-decayed scores to exactly 0.0
            row.pop(ratee, None)
        else:
            row[ratee] = new
        self._dirty.add(rater)

    def score(self, rater: int, ratee: int) -> float:
        """Local score ``r_ij = max(balance, 0)`` (EigenTrust clamping)."""
        self._check(rater, ratee)
        return max(0.0, self._scores.get(rater, {}).get(ratee, 0.0))

    def row(self, rater: int) -> Dict[int, float]:
        """Copy of rater's sparse clamped score row ``{ratee: r_ij > 0}``."""
        if not 0 <= rater < self.n:
            raise ValidationError(f"rater {rater} out of range [0, {self.n})")
        return {j: v for j, v in self._scores.get(rater, {}).items() if v > 0}

    def out_degree(self, rater: int) -> int:
        """Number of peers this rater has assigned a positive score."""
        return sum(1 for v in self._scores.get(rater, {}).values() if v > 0)

    def nonzero_pairs(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(rater, ratee, r_ij)`` over all positive scores."""
        for rater, row in self._scores.items():
            for ratee, score in row.items():
                if score > 0:
                    yield (rater, ratee, score)

    # -- dirty-row delta tracking ------------------------------------------

    def dirty_rows(self) -> FrozenSet[int]:
        """Rater rows mutated since the last :meth:`drain_dirty` call."""
        return frozenset(self._dirty)

    def clear_dirty(self) -> None:
        """Forget all dirty marks without emitting deltas.

        A consumer that rebuilds its matrix from the *whole* ledger
        (e.g. the first service epoch via
        :meth:`~repro.trust.matrix.TrustMatrix.from_ledger`) calls this
        so already-absorbed mutations are not re-applied as deltas.
        """
        self._dirty.clear()

    def drain_dirty(self) -> Dict[int, Dict[int, float]]:
        """Emit row-level deltas for every dirty rater and reset the set.

        Returns ``{rater: {ratee: r_ij > 0}}`` — the *current* clamped
        score row of each rater mutated since the last drain (a row that
        decayed to all-zeros maps to an empty dict, signalling "now
        dangling").  The format feeds
        :meth:`~repro.trust.matrix.TrustMatrix.apply_row_deltas`
        directly.
        """
        deltas = {rater: self.row(rater) for rater in sorted(self._dirty)}
        self._dirty.clear()
        return deltas

    def history(self) -> Tuple[TransactionRecord, ...]:
        """Recorded transactions (empty unless ``keep_history=True``)."""
        return tuple(self._history or ())

    def __repr__(self) -> str:  # pragma: no cover
        pairs = sum(len(r) for r in self._scores.values())
        return f"FeedbackLedger(n={self.n}, pairs={pairs}, transactions={self.transactions})"
