"""The normalized trust matrix ``S`` (Eq. 1) and its construction.

``s_ij = r_ij / sum_j r_ij`` makes every row of ``S`` a probability
distribution, so ``S`` is row-stochastic and the aggregation iteration
``V(t+1) = S^T V(t)`` (Eq. 2) is a Markov-chain step whose stationary
distribution is the global reputation vector.

Dangling rows — peers that issued no (positive) feedback — would break
stochasticity.  Following EigenTrust practice (which the paper inherits),
such rows are replaced by a fallback distribution: uniform ``1/n`` by
default, or the pre-trust/power-node distribution when one is supplied.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.analysis.sanitizer import InvariantSanitizer, sanitize_enabled
from repro.errors import ValidationError
from repro.trust.feedback import FeedbackLedger
from repro.utils.validation import check_square_matrix, check_vector

__all__ = ["TrustMatrix", "rows_to_csr"]


def rows_to_csr(rows: Iterable[Dict[int, float]], n: int) -> sparse.csr_matrix:
    """Assemble an ``(n, n)`` CSR matrix from per-node sparse rows.

    The inverse of :meth:`TrustMatrix.sparse_rows` — builds the CSR
    triple directly (counts -> indptr, then one flat pass over the row
    dicts) without an intermediate COO/LIL stage, so the message-level
    engines can turn their ``{j: s_ij}`` row view into a matvec-ready
    matrix once per cycle.
    """
    rows = list(rows)
    if len(rows) != n:
        raise ValidationError(f"need one row mapping per node: {len(rows)} != {n}")
    counts = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.fromiter(
        (j for r in rows for j in r), dtype=np.int64, count=nnz
    )
    data = np.fromiter(
        (val for r in rows for val in r.values()), dtype=np.float64, count=nnz
    )
    mat = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
    mat.sort_indices()
    return mat


class TrustMatrix:
    """Row-stochastic normalized trust matrix over ``n`` peers.

    Construct via :meth:`from_ledger`, :meth:`from_raw`, or
    :meth:`from_dense_raw`.  Internally stored in CSR for fast
    ``S^T @ v`` products; a dense view is available for small systems
    and for tests.
    """

    def __init__(self, matrix: sparse.csr_matrix, *, _validated: bool = False) -> None:
        if not sparse.isspmatrix_csr(matrix):
            matrix = sparse.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"trust matrix must be square, got {matrix.shape}")
        if not _validated:
            data = matrix.data
            if data.size and (data.min() < -1e-12 or data.max() > 1 + 1e-12):
                raise ValidationError("trust matrix entries must lie in [0, 1]")
            rows = np.asarray(matrix.sum(axis=1)).ravel()
            if not np.allclose(rows, 1.0, atol=1e-8):
                bad = int(np.argmax(np.abs(rows - 1.0)))
                raise ValidationError(
                    f"trust matrix rows must sum to 1; row {bad} sums to {rows[bad]}"
                )
        elif sanitize_enabled():
            # Sanitizer soak runs re-check even the pre-validated
            # constructor path: a normalizer bug that hands over a
            # non-stochastic S with _validated=True surfaces here as a
            # structured InvariantViolation (Eq. 1 row-stochasticity).
            rows = np.asarray(matrix.sum(axis=1)).ravel()
            InvariantSanitizer().check_row_stochastic(
                rows, where="pre-validated trust matrix"
            )
        self._S = matrix
        #: lazily-built transposed CSR for the iteration (see _transpose)
        self._ST: Optional[sparse.csr_matrix] = None
        #: lazily-built per-row sparse dict view (see sparse_rows)
        self._rows: Optional[List[Dict[int, float]]] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_ledger(
        cls,
        ledger: FeedbackLedger,
        *,
        fallback: Optional[np.ndarray] = None,
    ) -> "TrustMatrix":
        """Normalize a feedback ledger into ``S`` (Eq. 1).

        ``fallback`` is the row used for peers with no positive outbound
        feedback (default: uniform ``1/n``).
        """
        n = ledger.n
        fb = cls._fallback(n, fallback)
        rows_idx: list = []
        cols_idx: list = []
        vals: list = []
        row_sums = np.zeros(n)
        entries: list = list(ledger.nonzero_pairs())
        for i, j, r in entries:
            row_sums[i] += r
        dangling = np.flatnonzero(row_sums == 0)
        for i, j, r in entries:
            rows_idx.append(i)
            cols_idx.append(j)
            vals.append(r / row_sums[i])
        S = sparse.csr_matrix(
            (vals, (rows_idx, cols_idx)), shape=(n, n), dtype=np.float64
        )
        if dangling.size:
            S = sparse.lil_matrix(S)
            for i in dangling:
                S[i, :] = fb
            S = S.tocsr()
        return cls(S, _validated=True)

    @classmethod
    def from_raw(
        cls,
        n: int,
        entries: Iterable[Tuple[int, int, float]],
        *,
        fallback: Optional[np.ndarray] = None,
    ) -> "TrustMatrix":
        """Normalize sparse raw scores ``(i, j, r_ij)`` into ``S``."""
        ledger = FeedbackLedger(n)
        for i, j, r in entries:
            ledger.set_score(i, j, r)
        return cls.from_ledger(ledger, fallback=fallback)

    @classmethod
    def from_dense_raw(
        cls, raw: np.ndarray, *, fallback: Optional[np.ndarray] = None
    ) -> "TrustMatrix":
        """Normalize a dense raw score matrix ``R`` into ``S`` (Eq. 1)."""
        R = check_square_matrix("raw trust matrix", raw)
        if np.any(R < 0):
            raise ValidationError("raw local scores must be non-negative")
        np.fill_diagonal(R, 0.0)  # self-scores are meaningless and excluded
        n = R.shape[0]
        fb = cls._fallback(n, fallback)
        sums = R.sum(axis=1, keepdims=True)
        S = np.where(sums > 0, R / np.where(sums > 0, sums, 1.0), fb)
        return cls(sparse.csr_matrix(S), _validated=True)

    @staticmethod
    def _fallback(n: int, fallback: Optional[np.ndarray]) -> np.ndarray:
        if fallback is None:
            return np.full(n, 1.0 / n)
        fb = check_vector("fallback", fallback, size=n)
        if np.any(fb < 0) or not np.isclose(fb.sum(), 1.0, atol=1e-8):
            raise ValidationError("fallback must be a probability distribution")
        return fb

    # -- accessors -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of peers."""
        return self._S.shape[0]

    @property
    def nnz(self) -> int:
        """Stored nonzeros (memory proxy)."""
        return self._S.nnz

    def dense(self) -> np.ndarray:
        """Dense copy of ``S`` (small systems / tests only)."""
        return self._S.toarray()

    def sparse(self) -> sparse.csr_matrix:
        """The underlying CSR matrix (do not mutate)."""
        return self._S

    def _transpose(self) -> sparse.csr_matrix:
        """The cached ``S^T`` in CSR form, built on first use.

        Lazy because the gossip kernels never need it (they iterate
        ``S`` itself; the exact oracle ``S^T @ v`` runs on the CSC
        *view* ``S.T`` without a copy), while an eager transpose would
        keep a second full-matrix CSR resident for the whole run —
        ~240 MiB at n = 10^6, a tenth of the large-n RSS budget.
        :meth:`aggregate` and :meth:`column` callers (the service
        layer's repeated exact cycles) still pay the O(nnz) build once.
        """
        if self._ST is None:
            self._ST = self._S.T.tocsr()
        return self._ST

    def sparse_rows(self) -> List[Dict[int, float]]:
        """Per-node sparse row view: ``rows[i] == {j: s_ij}``.

        Computed once per matrix instance and cached *on the matrix*, so
        the message-level engines can reuse it across cycles without the
        stale-cache hazards of keying an external cache on ``id(S)`` (a
        garbage-collected matrix can recycle its id).  Call
        :meth:`invalidate_cache` after mutating the underlying CSR (an
        operation the API otherwise forbids).
        """
        if self._rows is None:
            csr = self._S
            rows: List[Dict[int, float]] = []
            for i in range(self.n):
                start, end = csr.indptr[i], csr.indptr[i + 1]
                rows.append(
                    {
                        int(j): float(val)
                        for j, val in zip(csr.indices[start:end], csr.data[start:end])
                    }
                )
            self._rows = rows
        return self._rows

    def invalidate_cache(self) -> None:
        """Drop derived caches (row view, transpose) after a mutation.

        The all-or-nothing escape hatch for callers that mutated the
        underlying CSR directly.  Sanctioned in-place updates should go
        through :meth:`apply_row_deltas`, which patches the caches at
        row granularity instead of discarding them.
        """
        self._rows = None
        self._ST = None

    # -- incremental updates -------------------------------------------------

    def apply_row_deltas(
        self,
        raw_rows: Mapping[int, Mapping[int, float]],
        *,
        fallback: Optional[np.ndarray] = None,
    ) -> None:
        """Replace the given rows of ``S`` with re-normalized raw scores.

        ``raw_rows`` maps ``rater -> {ratee: r_ij > 0}`` — the row-level
        delta format emitted by
        :meth:`~repro.trust.feedback.FeedbackLedger.drain_dirty`.  Each
        row is normalized per Eq. 1 (an empty/zero row becomes the
        ``fallback`` distribution, uniform by default, exactly as in
        :meth:`from_ledger`) and spliced into the CSR in one flat pass;
        untouched rows are copied wholesale.

        Cache coherence is row-level: when the :meth:`sparse_rows` view
        has been materialized, only the changed entries are replaced —
        the other ``n - k`` row dicts survive untouched, so message-level
        engines keep their warm view.  A materialized transpose is
        refreshed from the new CSR (one O(nnz) C-level pass; the
        transpose scatters a row change across many columns, so a
        sub-row patch would not pay for itself); one never built stays
        lazy.

        Complexity: O(nnz) array copies plus O(k) Python work for ``k``
        changed rows — no re-normalization, re-validation, or row-view
        rebuild of the ``n - k`` unchanged rows.
        """
        n = self.n
        if not raw_rows:
            return
        fb = self._fallback(n, fallback)
        fb_nz = np.flatnonzero(fb > 0)
        fb_vals = fb[fb_nz]
        # Normalize every delta row first (validating as we go) so a bad
        # row cannot leave the matrix half-patched.
        norm: Dict[int, Dict[int, float]] = {}
        for i in sorted(raw_rows):
            if not 0 <= i < n:
                raise ValidationError(f"row index {i} out of range [0, {n})")
            row = raw_rows[i]
            total = 0.0
            for j, r in row.items():
                if not 0 <= j < n:
                    raise ValidationError(f"column index {j} out of range [0, {n})")
                if j == i:
                    raise ValidationError("self-scores are not allowed in row deltas")
                if r < 0:
                    raise ValidationError(f"raw local scores are non-negative, got {r}")
                total += r
            if total > 0:
                norm[int(i)] = {int(j): r / total for j, r in row.items() if r > 0}
            else:
                # Dangling row: EigenTrust fallback distribution.
                norm[int(i)] = {int(j): float(v) for j, v in zip(fb_nz, fb_vals)}

        csr = self._S
        counts = np.diff(csr.indptr).astype(np.int64)
        for i, row_dict in norm.items():
            counts[i] = len(row_dict)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        pos_old = 0
        pos_new = 0
        for i in sorted(norm):
            keep = int(csr.indptr[i]) - pos_old  # unchanged rows before i
            if keep:
                indices[pos_new : pos_new + keep] = csr.indices[pos_old : pos_old + keep]
                data[pos_new : pos_new + keep] = csr.data[pos_old : pos_old + keep]
                pos_new += keep
            row_dict = norm[i]
            cols = np.fromiter(row_dict, dtype=np.int64, count=len(row_dict))
            vals = np.fromiter(row_dict.values(), dtype=np.float64, count=len(row_dict))
            order = np.argsort(cols)
            indices[pos_new : pos_new + cols.size] = cols[order]
            data[pos_new : pos_new + cols.size] = vals[order]
            pos_new += cols.size
            pos_old = int(csr.indptr[i + 1])
        tail = int(csr.indptr[n]) - pos_old
        if tail:
            indices[pos_new : pos_new + tail] = csr.indices[pos_old:]
            data[pos_new : pos_new + tail] = csr.data[pos_old:]
        patched = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
        if sanitize_enabled():
            # Row-level re-validation: only the patched rows are checked.
            changed = np.fromiter(norm, dtype=np.int64, count=len(norm))
            sums = np.asarray(patched[changed].sum(axis=1)).ravel()
            InvariantSanitizer().check_row_stochastic(
                sums, where=f"apply_row_deltas({len(norm)} rows)"
            )
        self._S = patched
        # Keep a warm transpose warm (the service layer aggregates
        # every epoch); never materialize one that was not yet needed.
        self._ST = patched.T.tocsr() if self._ST is not None else None
        if self._rows is not None:
            for i, row_dict in norm.items():
                self._rows[i] = dict(row_dict)

    def entry(self, i: int, j: int) -> float:
        """``s_ij``."""
        return float(self._S[i, j])

    def row(self, i: int) -> np.ndarray:
        """Dense row ``i`` of ``S`` — node i's outbound normalized scores."""
        return np.asarray(self._S.getrow(i).todense()).ravel()

    def column(self, j: int) -> np.ndarray:
        """Dense column ``j`` of ``S`` — all normalized scores about node j."""
        return np.asarray(self._transpose().getrow(j).todense()).ravel()

    # -- the aggregation primitive -------------------------------------------

    def aggregate(self, v: np.ndarray) -> np.ndarray:
        """One exact aggregation cycle: ``S^T @ v`` (Eq. 2)."""
        vv = check_vector("v", v, size=self.n)
        return self._transpose() @ vv

    def spectral_gap(self) -> Tuple[float, float]:
        """(|lambda_1|, |lambda_2|) of ``S`` — controls cycle count d (§4.1).

        Uses dense eigenvalues below 800 nodes and sparse ARPACK above.
        """
        n = self.n
        if n < 800:
            eigs = np.linalg.eigvals(self.dense())
        else:
            k = min(6, n - 2)
            eigs = sparse.linalg.eigs(self._S.astype(np.float64), k=k, return_eigenvectors=False)
        mags = np.sort(np.abs(eigs))[::-1]
        lam1 = float(mags[0])
        lam2 = float(mags[1]) if mags.size > 1 else 0.0
        return lam1, lam2

    def __repr__(self) -> str:  # pragma: no cover
        return f"TrustMatrix(n={self.n}, nnz={self.nnz})"
