"""Quality-of-feedback (QoF) scoring — the paper's §7 extension.

§7: "we suggest to keep two kinds of reputation scores on each peer
node: one to measure the quality-of-service (QoS) ... and another for
quality-of-feedback (QoF) by participating peers.  We suggest
integrating these two scores together."

The QoS score is the global reputation vector GossipTrust already
computes.  The QoF score implemented here measures *how much a peer's
outbound ratings agree with the community consensus*: a rater whose
normalized row tracks the aggregated reputation of the peers it rated
is a reliable witness; a rater who praises peers the community
distrusts (the §6.1 attackers do exactly this) gets a low QoF.

The two scores integrate by vote modulation: in the aggregation
iteration each rater's walk mass counts in proportion to its QoF
(``V <- normalize(S^T (qof * V))``), so dishonest witnesses steer the
chain less.  A few alternation rounds (scores -> QoF -> scores) damp
dishonest feedback *without any power nodes* — an independent defense
axis, evaluated by the ``qof`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np
from scipy import sparse

from repro.errors import ValidationError
from repro.trust.matrix import TrustMatrix
from repro.utils.validation import check_in_range, check_vector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import GossipTrustConfig

__all__ = ["QofResult", "feedback_quality", "QofWeightedAggregation"]


def feedback_quality(
    S: TrustMatrix, reputation: np.ndarray, *, sharpness: float = 1.0
) -> np.ndarray:
    """Per-rater quality-of-feedback in [0, 1].

    The attack signature of §6.1 is *inversion*: dishonest raters praise
    peers the community distrusts and trash the ones it trusts.  After
    Eq. 1 normalization the informative part of a row is its *support*
    (whom the rater endorses at all — positive balances survive, the
    rest clamp to zero), so QoF scores the consensus reputation of the
    rater's endorsement distribution — one step of the trust walk::

        z_i   = sum_j s_ij * v_j          (endorsement quality)
        qof_i = (z_i / max_k z_k) ** sharpness

    A rater whose endorsements lead to the community's most reputable
    peers scores near 1; an inverted rater, whose endorsements lead to
    distrusted peers, scores near 0.  Raters with no outbound scores
    carry no signal and get the population-mean QoF.

    Parameters
    ----------
    S:
        The normalized trust matrix (rows are rating distributions).
    reputation:
        Current global reputation estimates (QoS scores), length n.
    sharpness:
        Exponent steering how hard poor endorsement quality is punished.
    """
    check_in_range("sharpness", sharpness, low=0.0)
    n = S.n
    v = check_vector("reputation", reputation, size=n)
    z = S.sparse() @ v  # z_i = s_i . v
    top = float(z.max())
    if top <= 0:
        return np.full(n, 1.0)
    qof = (z / top) ** sharpness
    # Raters with empty rows (z == 0 by construction) get the mean QoF
    # of the informative raters: absence of feedback is not evidence of
    # dishonesty.
    empty = np.asarray((S.sparse() != 0).sum(axis=1)).ravel() == 0
    if empty.any() and (~empty).any():
        qof[empty] = float(qof[~empty].mean())
    return qof


@dataclass
class QofResult:
    """Outcome of QoF-weighted aggregation."""

    #: final QoS (reputation) vector
    reputation: np.ndarray
    #: final per-rater QoF scores
    qof: np.ndarray
    #: QoF/aggregation alternation rounds executed
    rounds: int
    #: reputation vectors after each round (first is the unweighted one)
    trajectory: List[np.ndarray]


class QofWeightedAggregation:
    """Reputation aggregation with QoF-modulated votes.

    The integration §7 asks for: each rater's vote in the aggregation
    counts in proportion to its feedback quality.  The iteration becomes

        V(t+1) = normalize( S^T (qof ⊙ V(t)) )

    — a rater contributes ``qof_i * v_i`` of walk mass instead of
    ``v_i``, so dishonest witnesses steer the chain less without any
    noise being injected into honest rows.  QoF itself is refreshed
    against the current vector every ``refresh_every`` cycles (it is a
    fixed-point alternation: better scores -> better witness detection
    -> better scores).

    Parameters
    ----------
    config:
        Aggregation parameters; ``alpha``/power nodes compose normally.
    rounds:
        QoF refresh rounds (2-3 suffice; the alternation settles fast).
    sharpness:
        See :func:`feedback_quality`.
    min_weight:
        Floor on vote weights so no rater is erased entirely (keeps the
        chain irreducible).
    """

    def __init__(
        self,
        config: Optional["GossipTrustConfig"] = None,
        *,
        rounds: int = 3,
        sharpness: float = 2.0,
        min_weight: float = 0.05,
    ) -> None:
        if rounds < 1:
            raise ValidationError(f"rounds must be >= 1, got {rounds}")
        check_in_range("min_weight", min_weight, low=0.0, high=1.0)
        self.config = config
        self.rounds = int(rounds)
        self.sharpness = float(sharpness)
        self.min_weight = float(min_weight)

    def run(
        self, S: TrustMatrix, *, reference: Optional[np.ndarray] = None
    ) -> QofResult:
        """Run the alternation on a trust matrix.

        ``reference`` optionally seeds the first QoF computation with an
        externally trusted consensus (e.g. power-node-anchored scores
        from a previous round); by default the alternation bootstraps
        from its own round-0 aggregation.
        """
        # Imported here: repro.core depends on repro.trust, so a
        # module-level import would be circular.
        from repro.core.aggregation import exact_global_reputation
        from repro.core.config import GossipTrustConfig

        n = S.n
        cfg = self.config or GossipTrustConfig(n=n)
        if cfg.n != n:
            cfg = cfg.with_updates(n=n)
        trajectory: List[np.ndarray] = []
        v = exact_global_reputation(S, cfg, raise_on_budget=False).vector
        trajectory.append(v.copy())
        qof = np.ones(n)
        judge = reference if reference is not None else v
        for _round in range(1, self.rounds + 1):
            qof = np.maximum(
                feedback_quality(S, judge, sharpness=self.sharpness),
                self.min_weight,
            )
            v = self._weighted_fixed_point(S, qof, cfg)
            trajectory.append(v.copy())
            judge = v
        return QofResult(
            reputation=v, qof=qof, rounds=self.rounds, trajectory=trajectory
        )

    def _weighted_fixed_point(
        self, S: TrustMatrix, qof: np.ndarray, cfg: "GossipTrustConfig"
    ) -> np.ndarray:
        """Iterate ``V <- normalize(S^T (qof ⊙ V))`` to its fixed point."""
        n = S.n
        ST = S.sparse().T.tocsr()
        v = np.full(n, 1.0 / n)
        for _ in range(cfg.max_cycles):
            # Lazy smoothing keeps near-periodic chains convergent
            # without moving the fixed point (see baselines.centralized).
            v_new = 0.5 * (v + ST @ (qof * v))
            total = v_new.sum()
            if total <= 0:
                raise ValidationError("QoF weighting collapsed all walk mass")
            v_new /= total
            if float(np.abs(v_new - v).sum()) < 1e-10:
                return v_new
            v = v_new
        return v
