"""Structured-overlay aggregation — the §7 acceleration.

"With minor modifications, the system can perform even better in a
structured P2P system.  The gossip steps and reputation aggregation
process ... can be further accelerated by the fast hashing and search
mechanisms built in DHT-based overlay networks."

On a DHT the random-partner gossip can be replaced by a *deterministic
hypercube all-reduce* over the ring ordering: in round ``k`` every node
exchanges its partial vector with the node ``2^k`` positions away, so
after ``ceil(log2 n)`` rounds every node holds the exact component-wise
sum — no epsilon, no convergence detection, no halving.  The price is
exactly the structure the paper's unstructured setting lacks: a stable
ring ordering every peer agrees on.

The engine mirrors :class:`~repro.gossip.engine.SynchronousGossipEngine`'s
``run_cycle`` contract so the two plug into the same experiments.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse

from repro.errors import ValidationError
from repro.gossip.base import CycleEngine, GossipCycleResult, TrustInput, coerce_csr
from repro.network.dht import ChordRing
from repro.utils.validation import check_vector

__all__ = ["StructuredAggregationEngine"]


class StructuredAggregationEngine(CycleEngine):
    """Exact all-reduce aggregation over a Chord ring ordering.

    Parameters
    ----------
    n:
        Number of peers (all assumed live; churn on the structured
        variant would require ring stabilization, which is the paper's
        argument for gossip in the first place).
    ring_bits:
        Identifier width of the underlying ring (ordering only).
    """

    name = "structured"

    def __init__(self, n: int, *, ring_bits: int = 32) -> None:
        if n < 2:
            raise ValidationError(f"aggregation needs n >= 2 nodes, got {n}")
        self.n = int(n)
        self.ring = ChordRing(range(self.n), bits=ring_bits)
        #: ring-ordered node ids; round k pairs index i with i XOR-ish 2^k
        self._order = np.asarray(self.ring.nodes, dtype=np.int64)
        self.cycle_steps: list = []
        #: total point-to-point exchanges performed
        self.messages = 0

    @property
    def rounds_per_cycle(self) -> int:
        """Deterministic round count: ``ceil(log2 n)``."""
        return int(math.ceil(math.log2(self.n)))

    def run_cycle(
        self,
        S: TrustInput,
        v: np.ndarray,
    ) -> GossipCycleResult:
        """Aggregate ``S^T v`` exactly in ``ceil(log2 n)`` rounds.

        State per node is its partial sum vector; round ``k`` adds the
        vector of the partner ``2^k`` ring positions away (indices taken
        modulo n, which implements the standard recursive-doubling
        all-reduce up to a final correction round for non-powers of 2 —
        the correction is folded into the same round count here because
        partner distance wraps).
        """
        mat = coerce_csr(S, self.n)
        v = check_vector("v", v, size=self.n)
        exact = np.asarray(mat.T @ v).ravel()
        san = self.sanitizer
        if san is not None:
            san.begin_cycle(self.name)

        # Node i's initial partial vector is its weighted row v_i * s_i.
        # X[p] is the partial vector of the node at ring position p.
        X = np.asarray((sparse.diags(v) @ mat).todense())[self._order]
        rounds = self.rounds_per_cycle
        n = self.n
        for k in range(rounds):
            shift = 1 << k
            # Everyone receives the partner's current partial in parallel.
            X = X + np.roll(X, -shift, axis=0)
            self.messages += n
        # After ceil(log2 n) doublings each row sums a window of
        # 2^rounds >= n consecutive ring positions — wrapping means some
        # contributions are counted twice for non-powers of two, so a
        # final exact correction pass subtracts the overlap.
        window = 1 << rounds
        overlap = window - n
        if overlap > 0:
            base = np.asarray((sparse.diags(v) @ mat).todense())[self._order]
            prefix = np.cumsum(
                np.vstack([base, base]), axis=0
            )  # doubled array prefix sums
            # Node at position p double-counts positions p..p+overlap-1
            # (the wrap of its window); subtract that slice sum.
            for p in range(n):
                lo, hi = p, p + overlap
                seg = prefix[hi - 1] - (prefix[lo - 1] if lo > 0 else 0)
                X[p] -= seg
        self.cycle_steps.append(rounds)
        if san is not None:
            # The all-reduce is exact by construction: every ring
            # position's partial must match S^T v (modulo float
            # reassociation), and the window-overlap correction must
            # not have produced NaN/inf.
            san.check_finite("all-reduce partials", X, step=rounds)
            san.check_allclose(
                "per-node all-reduce result", X, exact[None, :], step=rounds
            )

        estimates = X  # every row should now equal the exact sum
        disagreement = float(np.max(np.abs(estimates - exact[None, :])))
        return GossipCycleResult(
            v_next=exact.copy(),
            exact=exact,
            steps=rounds,
            gossip_error=0.0,
            converged=True,
            mode=self.name,
            node_disagreement=disagreement,
            messages_sent=n * rounds,
        )

    def clear_stats(self) -> None:
        """Reset counters."""
        self.cycle_steps = []
        self.messages = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"StructuredAggregationEngine(n={self.n}, rounds={self.rounds_per_cycle})"
