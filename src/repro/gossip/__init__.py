"""Gossip aggregation protocols (the paper's §4-§5).

* :mod:`repro.gossip.base` — the one engine contract: the
  :class:`CycleEngine` ABC and the uniform :class:`GossipCycleResult`.
* :mod:`repro.gossip.factory` — engine registry and
  :func:`make_engine` factory (names: ``sync``, ``message``, ``async``,
  ``structured``).
* :mod:`repro.gossip.pushsum` — Algorithm 1: Kempe-style push-sum for a
  single peer's score, both a vectorized simulation and a step-scripted
  variant that replays the paper's Table 1 worked example exactly.
* :mod:`repro.gossip.vector` — Algorithm 2 node state: the reputation
  vector as ``<x, id, w>`` triplets, with halve/merge operations.
* :mod:`repro.gossip.convergence` — the epsilon (gossip-step) and delta
  (aggregation-cycle) convergence detectors.
* :mod:`repro.gossip.engine` — synchronous vectorized gossip engine for
  large sweeps (all nodes' state in NumPy arrays).
* :mod:`repro.gossip.message_engine` — message-level engine on the DES
  with latency, loss, link failure, and churn.
* :mod:`repro.gossip.async_engine` — the same protocol on per-node
  Poisson clocks (no synchronized rounds).
* :mod:`repro.gossip.structured` — §7's DHT-ordered deterministic
  all-reduce acceleration.
"""

from repro.gossip.async_engine import AsyncMessageGossipEngine
from repro.gossip.base import CycleEngine, GossipCycleResult
from repro.gossip.convergence import (
    CycleConvergenceDetector,
    StepConvergenceDetector,
    average_relative_error,
)
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.factory import (
    DEFAULT_ENGINE,
    engine_names,
    make_engine,
    register_engine,
)
from repro.gossip.message_engine import MessageGossipEngine, MessageGossipResult
from repro.gossip.pushsum import PushSumResult, push_sum, scripted_push_sum
from repro.gossip.structured import StructuredAggregationEngine
from repro.gossip.vector import TripletVector

__all__ = [
    "push_sum",
    "scripted_push_sum",
    "PushSumResult",
    "TripletVector",
    "StepConvergenceDetector",
    "CycleConvergenceDetector",
    "average_relative_error",
    "CycleEngine",
    "GossipCycleResult",
    "DEFAULT_ENGINE",
    "engine_names",
    "make_engine",
    "register_engine",
    "SynchronousGossipEngine",
    "MessageGossipEngine",
    "MessageGossipResult",
    "AsyncMessageGossipEngine",
    "StructuredAggregationEngine",
]
