"""Gossip aggregation protocols (the paper's §4-§5).

* :mod:`repro.gossip.pushsum` — Algorithm 1: Kempe-style push-sum for a
  single peer's score, both a vectorized simulation and a step-scripted
  variant that replays the paper's Table 1 worked example exactly.
* :mod:`repro.gossip.vector` — Algorithm 2 node state: the reputation
  vector as ``<x, id, w>`` triplets, with halve/merge operations.
* :mod:`repro.gossip.convergence` — the epsilon (gossip-step) and delta
  (aggregation-cycle) convergence detectors.
* :mod:`repro.gossip.engine` — synchronous vectorized gossip engine for
  large sweeps (all nodes' state in NumPy arrays).
* :mod:`repro.gossip.message_engine` — message-level engine on the DES
  with latency, loss, link failure, and churn.
"""

from repro.gossip.async_engine import AsyncMessageGossipEngine
from repro.gossip.convergence import (
    CycleConvergenceDetector,
    StepConvergenceDetector,
    average_relative_error,
)
from repro.gossip.engine import GossipCycleResult, SynchronousGossipEngine
from repro.gossip.message_engine import MessageGossipEngine, MessageGossipResult
from repro.gossip.pushsum import PushSumResult, push_sum, scripted_push_sum
from repro.gossip.structured import StructuredAggregationEngine
from repro.gossip.vector import TripletVector

__all__ = [
    "push_sum",
    "scripted_push_sum",
    "PushSumResult",
    "TripletVector",
    "StepConvergenceDetector",
    "CycleConvergenceDetector",
    "average_relative_error",
    "SynchronousGossipEngine",
    "GossipCycleResult",
    "MessageGossipEngine",
    "MessageGossipResult",
    "AsyncMessageGossipEngine",
    "StructuredAggregationEngine",
]
