"""Partner selection strategies — from global oracle to partial views.

The paper's Algorithm 1 says "choose a random node q — a neighbor node
or any other node".  Until now every DES engine hard-coded the strongest
reading (uniform over *all* live nodes, an omniscient membership
oracle).  Real unstructured overlays run on **partial views**: each
node knows a handful of peers, maintained by a membership protocol that
must itself survive churn, loss, and partitions.  This module lifts
partner choice into a strategy interface and provides four
implementations:

====================  ======================================================
``"global"``          :class:`GlobalSampler` — uniform over all live nodes
                      (the historical default, bit-identical to the old
                      engine behaviour).
``"neighbors"``       :class:`NeighborSampler` — uniform over live overlay
                      neighbors (the paper's weakest reading).
``"hyparview"``       :class:`HyParViewMembership` — small active view for
                      gossip, larger passive view for repair; reactive
                      eviction + promotion on suspected failures
                      (Leitão et al., HyParView).
``"brahms"``          :class:`BrahmsMembership` — push/pull view exchange
                      blended with min-wise history samplers
                      (Bortnikov et al., Brahms).
====================  ======================================================

The membership strategies run *over the real transport*: join, shuffle,
push/pull, and probe messages ride the same lossy links as the gossip
payload, and failure detection is end-to-end (a reliable probe through
:class:`~repro.network.reliability.ReliableTransport` that exhausts its
retries).  Views may therefore contain dead peers — ``partner`` can
return one, the gossip half sent to it is lost, and the next probe
evicts it.  That is the degradation-and-repair loop the
``churn_resilience`` experiment measures.

Determinism: every draw comes from the strategy's own generator
(``rng``), consumed in simulator event order, so a seeded run replays
bit-for-bit across processes (the sweep-runner contract).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.errors import ConfigurationError, NetworkError, ValidationError
from repro.network.overlay import Overlay
from repro.network.reliability import ReliableTransport
from repro.network.transport import Message, Transport
from repro.sim.engine import Simulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = [
    "ViewHealth",
    "PartnerStrategy",
    "GlobalSampler",
    "NeighborSampler",
    "HyParViewMembership",
    "BrahmsMembership",
    "strategy_names",
    "register_strategy",
    "make_strategy",
]

_U64 = (1 << 64) - 1


def _mix64(seed: int, x: int) -> int:
    """Deterministic 64-bit mix (splitmix64 finalizer) for min-wise sampling.

    Python's builtin ``hash`` is salted per process; this is stable
    across processes, which the sweep runner's bit-determinism needs.
    """
    z = (seed + 0x9E3779B97F4A7C15 * (x + 1)) & _U64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64
    return (z ^ (z >> 31)) & _U64


@dataclass(frozen=True)
class ViewHealth:
    """Snapshot of membership-layer health over the live population.

    ``mean_live_degree`` is the mean, over live nodes, of live peers in
    the node's partner view; ``isolated_live_nodes`` counts live nodes
    whose view holds no live peer at all (they can gossip with nobody);
    ``components`` is the number of weakly-connected components of the
    live view graph (1 = no eclipse/partition at the membership layer).
    """

    strategy: str
    live_nodes: int
    mean_live_degree: float
    isolated_live_nodes: int
    components: int
    evictions: int = 0
    promotions: int = 0
    rejoins: int = 0
    maintenance_messages: int = 0
    retries: int = 0
    gave_up: int = 0


def _components(live: Sequence[int], edges: Mapping[int, Sequence[int]]) -> int:
    """Weakly-connected components of the live view graph (union-find)."""
    parent: Dict[int, int] = {v: v for v in live}

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    live_set = set(live)
    for u in live:
        for v in edges.get(u, ()):
            if v in live_set:
                ra, rb = find(u), find(v)
                if ra != rb:
                    parent[ra] = rb
    return len({find(v) for v in live}) if live else 0


class PartnerStrategy(ABC):
    """How a node picks its gossip partner (and learns who exists).

    Lifecycle: construct (pure parameters + RNG), :meth:`bind` to the
    simulation substrate (once, done by the engine), :meth:`start` /
    :meth:`stop` around each aggregation cycle (membership maintenance
    timers run only in between).  During a cycle the engine calls
    :meth:`partner` per live node per round and forwards every
    non-gossip transport message to :meth:`on_message`.
    """

    #: registry name (``"global"``, ``"neighbors"``, ``"hyparview"``, ``"brahms"``)
    name: ClassVar[str] = ""

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = as_generator(rng)
        self.sim: Optional[Simulator] = None
        self.transport: Optional[Transport] = None
        self.overlay: Optional[Overlay] = None
        self._running = False
        # -- uniform health counters ------------------------------------
        self.evictions = 0
        self.promotions = 0
        self.rejoins = 0
        self.maintenance_messages = 0

    # -- lifecycle ---------------------------------------------------------

    def bind(self, sim: Simulator, transport: Transport, overlay: Overlay) -> None:
        """Attach to the simulation substrate (idempotent per substrate)."""
        if self.overlay is not None and self.overlay is not overlay:
            raise ValidationError(
                f"strategy {self.name!r} is already bound to another overlay"
            )
        self.sim = sim
        self.transport = transport
        self.overlay = overlay
        self._after_bind()

    def _after_bind(self) -> None:
        """Hook for subclasses to build initial views."""

    def start(self) -> None:
        """Begin maintenance (no-op for oracle strategies)."""
        self._running = True

    def stop(self) -> None:
        """Suspend maintenance timers."""
        self._running = False

    # -- the partner contract ---------------------------------------------

    @abstractmethod
    def partner(self, node: int) -> Optional[int]:
        """The gossip partner ``node`` sends its half-vector to.

        May return a departed peer (partial views go stale) — the
        engine's send then loses its mass, which is exactly the fault
        the membership layer later detects and repairs.  ``None`` means
        the node currently knows nobody.
        """

    @abstractmethod
    def view(self, node: int) -> Tuple[int, ...]:
        """The peer ids ``node`` currently draws partners from."""

    def on_message(self, msg: Message) -> bool:
        """Consume a membership/control message; ``False`` if not ours."""
        return False

    def node_joined(self, node: int) -> None:
        """Notify that ``node`` (re)joined the overlay — trigger (re)bootstrap."""

    # -- health ------------------------------------------------------------

    def retry_stats(self) -> Mapping[str, int]:
        """Reliability-wrapper counters (all zero for oracle strategies)."""
        return {"sent": 0, "retries": 0, "acked": 0, "gave_up": 0, "acks_sent": 0}

    def health(self) -> ViewHealth:
        """Compute the live-view health snapshot (O(live * view size))."""
        overlay = self._require_overlay()
        live = [int(v) for v in overlay.alive_nodes().tolist()]
        edges: Dict[int, Tuple[int, ...]] = {v: self.view(v) for v in live}
        live_set = set(live)
        degrees = [sum(1 for p in edges[v] if p in live_set) for v in live]
        stats = self.retry_stats()
        return ViewHealth(
            strategy=self.name,
            live_nodes=len(live),
            mean_live_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
            isolated_live_nodes=sum(1 for d in degrees if d == 0),
            components=_components(live, edges),
            evictions=self.evictions,
            promotions=self.promotions,
            rejoins=self.rejoins,
            maintenance_messages=self.maintenance_messages,
            retries=int(stats.get("retries", 0)),
            gave_up=int(stats.get("gave_up", 0)),
        )

    def _require_overlay(self) -> Overlay:
        if self.overlay is None:
            raise NetworkError(f"strategy {self.name!r} is not bound; call bind()")
        return self.overlay

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class GlobalSampler(PartnerStrategy):
    """Uniform over all live nodes — the omniscient-membership oracle.

    Delegates to :meth:`Overlay.random_partner`, consuming the overlay's
    own RNG stream, so engines built without an explicit strategy behave
    bit-for-bit as before this interface existed.
    """

    name = "global"

    def partner(self, node: int) -> Optional[int]:
        return self._require_overlay().random_partner(node)

    def view(self, node: int) -> Tuple[int, ...]:
        overlay = self._require_overlay()
        return tuple(
            int(v) for v in overlay.alive_nodes().tolist() if int(v) != node
        )

    def health(self) -> ViewHealth:
        # Closed form: every live node sees every other live node.
        overlay = self._require_overlay()
        alive = overlay.alive_count
        return ViewHealth(
            strategy=self.name,
            live_nodes=alive,
            mean_live_degree=float(max(alive - 1, 0)),
            isolated_live_nodes=alive if alive == 1 else 0,
            components=1 if alive > 0 else 0,
        )


class NeighborSampler(PartnerStrategy):
    """Uniform over live overlay neighbors — the paper's weakest reading."""

    name = "neighbors"

    def partner(self, node: int) -> Optional[int]:
        return self._require_overlay().random_partner(node, neighbors_only=True)

    def view(self, node: int) -> Tuple[int, ...]:
        return self._require_overlay().neighbors(node, live_only=False)


class HyParViewMembership(PartnerStrategy):
    """HyParView-style hybrid partial views with reactive repair.

    Each node keeps a small **active view** (its gossip partners) and a
    larger **passive view** (repair candidates).  Maintenance, every
    ``interval`` of simulated time per live node:

    * a reliable *probe* to one random active peer; exhausted retries
      mark the peer suspected — it is evicted and a passive peer is
      promoted via a reliable *neighbor* request (the receiver links
      back, keeping active views roughly symmetric);
    * an unreliable *shuffle* with one random active peer: both sides
      exchange samples of their views and merge them into their passive
      views — the diffusion process that keeps repair candidates fresh.

    A node that exhausts both views re-bootstraps through ``join`` (host
    cache model: one random live contact), whose receiver links the
    joiner and floods a TTL-limited *forward-join* so others learn of
    it.  :meth:`node_joined` triggers the same path after churn rejoin.
    """

    name = "hyparview"

    #: control-message kinds carried reliably (probe/neighbor/join)
    _RELIABLE_KINDS = ("probe", "neighbor", "join")

    def __init__(
        self,
        *,
        active_size: int = 5,
        passive_size: int = 12,
        interval: float = 4.0,
        shuffle_sample: int = 4,
        forward_join_ttl: int = 2,
        ack_timeout: Optional[float] = None,
        max_retries: int = 2,
        rng: SeedLike = None,
    ) -> None:
        super().__init__(rng)
        if active_size < 1:
            raise ValidationError(f"active_size must be >= 1, got {active_size}")
        if passive_size < 1:
            raise ValidationError(f"passive_size must be >= 1, got {passive_size}")
        check_positive("interval", interval)
        self.active_size = int(active_size)
        self.passive_size = int(passive_size)
        self.interval = float(interval)
        self.shuffle_sample = int(shuffle_sample)
        self.forward_join_ttl = int(forward_join_ttl)
        self._ack_timeout = ack_timeout
        self._max_retries = int(max_retries)
        self.active: Dict[int, Set[int]] = {}
        self.passive: Dict[int, Set[int]] = {}
        self._reliable: Optional[ReliableTransport] = None

    # -- lifecycle ---------------------------------------------------------

    def _after_bind(self) -> None:
        assert self.transport is not None and self.overlay is not None
        self._reliable = ReliableTransport(
            self.transport,
            ack_timeout=self._ack_timeout,
            max_retries=self._max_retries,
            on_deliver=self._on_reliable,
            on_give_up=self._on_give_up,
        )
        overlay = self.overlay
        n = overlay.n
        self.active = {v: set() for v in range(n)}
        self.passive = {v: set() for v in range(n)}
        live = [int(v) for v in overlay.alive_nodes().tolist()]
        live_set = set(live)
        for node in live:
            neigh = [v for v in overlay.neighbors(node, live_only=True)]
            self._rng.shuffle(neigh)
            self.active[node] = set(neigh[: self.active_size])
            rest = [v for v in live if v != node and v not in self.active[node]]
            if rest:
                k = min(self.passive_size, len(rest))
                picks = self._rng.choice(len(rest), size=k, replace=False)
                self.passive[node] = {rest[int(i)] for i in picks}
        # Active gossip links are bidirectional: mirror the edges so a
        # low-degree node is still reachable.
        for node in live:
            for peer in list(self.active[node]):
                if peer in live_set:
                    self.active[peer].add(node)
                    self.passive[peer].discard(node)

    def start(self) -> None:
        was_running = self._running
        super().start()
        if not was_running:
            assert self.sim is not None
            self.sim.call_in(self.interval, self._tick)

    # -- partner contract --------------------------------------------------

    def partner(self, node: int) -> Optional[int]:
        candidates = sorted(self.active.get(node, ()))
        if not candidates:
            return None
        return int(candidates[int(self._rng.integers(len(candidates)))])

    def view(self, node: int) -> Tuple[int, ...]:
        return tuple(sorted(self.active.get(node, ())))

    def retry_stats(self) -> Mapping[str, int]:
        r = self._reliable
        if r is None:
            return super().retry_stats()
        return {
            "sent": r.sent,
            "retries": r.retries,
            "acked": r.acked,
            "gave_up": r.gave_up,
            "acks_sent": r.acks_sent,
        }

    # -- maintenance -------------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        assert self.sim is not None and self.overlay is not None
        assert self._reliable is not None
        for node in [int(v) for v in self.overlay.alive_nodes().tolist()]:
            active = sorted(self.active[node])
            if not active:
                self._rebootstrap(node)
                continue
            probe_to = int(active[int(self._rng.integers(len(active)))])
            self._reliable.send(node, probe_to, None, kind="probe", size=8)
            shuffle_to = int(active[int(self._rng.integers(len(active)))])
            self._send_shuffle(node, shuffle_to)
        self.sim.call_in(self.interval, self._tick)

    def _sample_ids(self, node: int) -> Tuple[int, ...]:
        pool = sorted((self.active[node] | self.passive[node]) - {node})
        if not pool:
            return (node,)
        k = min(self.shuffle_sample, len(pool))
        picks = self._rng.choice(len(pool), size=k, replace=False)
        return tuple(sorted({node, *(pool[int(i)] for i in picks)}))

    def _send_shuffle(self, node: int, peer: int) -> None:
        assert self.transport is not None
        sample = self._sample_ids(node)
        self.transport.send(node, peer, sample, kind="shuffle", size=8 * len(sample))
        self.maintenance_messages += 1

    def _merge_passive(self, node: int, ids: Sequence[int]) -> None:
        passive = self.passive[node]
        for peer in ids:
            if peer == node or peer in self.active[node]:
                continue
            passive.add(peer)
        while len(passive) > self.passive_size:
            victims = sorted(passive)
            passive.discard(victims[int(self._rng.integers(len(victims)))])

    def _add_active(self, node: int, peer: int) -> None:
        """Link ``peer`` into ``node``'s active view, demoting overflow."""
        if peer == node:
            return
        self.active[node].add(peer)
        self.passive[node].discard(peer)
        while len(self.active[node]) > self.active_size:
            others = sorted(self.active[node] - {peer})
            if not others:
                break
            demoted = others[int(self._rng.integers(len(others)))]
            self.active[node].discard(demoted)
            self._merge_passive(node, (demoted,))

    def _rebootstrap(self, node: int) -> None:
        """Active view drained: re-enter through the host-cache model."""
        assert self.overlay is not None and self._reliable is not None
        passive = sorted(self.passive[node])
        if passive:
            target = passive[int(self._rng.integers(len(passive)))]
            self._promote(node, target)
            return
        live = [int(v) for v in self.overlay.alive_nodes().tolist() if int(v) != node]
        if not live:
            return
        contact = live[int(self._rng.integers(len(live)))]
        self._reliable.send(node, contact, None, kind="join", size=8)
        self.rejoins += 1

    def _promote(self, node: int, peer: int) -> None:
        """Promote a passive peer into the active view (optimistically)."""
        assert self._reliable is not None
        self.passive[node].discard(peer)
        self._add_active(node, peer)
        self.promotions += 1
        self._reliable.send(node, peer, None, kind="neighbor", size=8)

    def _suspect(self, node: int, peer: int) -> None:
        """Evict a suspected-dead active peer, promote a replacement."""
        if peer in self.active.get(node, ()):
            self.active[node].discard(peer)
            self.evictions += 1
        self.passive.get(node, set()).discard(peer)
        if len(self.active[node]) < self.active_size:
            if not self.passive[node] and not self.active[node]:
                self._rebootstrap(node)
            else:
                self._promote_from_passive(node)

    def _promote_from_passive(self, node: int) -> None:
        passive = sorted(self.passive[node])
        if not passive:
            return
        self._promote(node, passive[int(self._rng.integers(len(passive)))])

    # -- message handling --------------------------------------------------

    def on_message(self, msg: Message) -> bool:
        assert self.overlay is not None
        if self._reliable is not None and msg.kind in ("ack", "reliable"):
            if not self.overlay.is_alive(msg.dst):
                return True  # delivered to a departed peer: ignored
            return self._reliable.handle(msg)
        if msg.kind == "shuffle":
            if self.overlay.is_alive(msg.dst):
                self._merge_passive(msg.dst, msg.payload)
                reply = self._sample_ids(msg.dst)
                assert self.transport is not None
                self.transport.send(
                    msg.dst, msg.src, reply, kind="shuffle-reply", size=8 * len(reply)
                )
                self.maintenance_messages += 1
            return True
        if msg.kind == "shuffle-reply":
            if self.overlay.is_alive(msg.dst):
                self._merge_passive(msg.dst, msg.payload)
            return True
        if msg.kind == "forward-join":
            if self.overlay.is_alive(msg.dst):
                joiner, ttl = msg.payload
                if ttl > 0 and joiner != msg.dst:
                    self._merge_passive(msg.dst, (joiner,))
                    if len(self.active[msg.dst]) < self.active_size:
                        self._add_active(msg.dst, joiner)
                        self._add_active(joiner, msg.dst)
            return True
        return False

    def _on_reliable(self, msg: Message, kind: str, payload: Any) -> None:
        assert self.overlay is not None
        node = msg.dst
        if kind == "probe":
            return  # the ack is the point
        if kind == "neighbor":
            self._add_active(node, msg.src)
            return
        if kind == "join":
            assert self.transport is not None
            self._add_active(node, msg.src)
            self._add_active(msg.src, node)
            for peer in sorted(self.active[node] - {msg.src}):
                self.transport.send(
                    node,
                    peer,
                    (msg.src, self.forward_join_ttl),
                    kind="forward-join",
                    size=16,
                )
                self.maintenance_messages += 1

    def _on_give_up(self, src: int, dst: int, kind: str) -> None:
        assert self.overlay is not None
        if not self.overlay.is_alive(src):
            return  # the suspecting node itself departed meanwhile
        self._suspect(src, dst)

    def node_joined(self, node: int) -> None:
        """Churn rejoin: reset this node's views and re-enter via join."""
        self.active[node] = set()
        self.passive[node] = set()
        self._rebootstrap(node)


class BrahmsMembership(PartnerStrategy):
    """Brahms-style push/pull view maintenance with history samplers.

    Each node keeps a view of ``view_size`` peers.  Every ``interval``
    it *pushes* its id to ``alpha``·l random view members and *pulls*
    the views of ``beta``·l others; at the next tick the view is
    recomputed as a blend of pushed ids, pulled ids, and the outputs of
    ``sampler_slots`` min-wise **history samplers** — uniform samples
    over every id ever observed, the component that resists targeted
    flooding (a pushed-id majority cannot take over the γ share).  One
    sampler output is probed (reliably) per tick; a failed probe resets
    the slot so dead history cannot pin the view to the past.

    A node whose push/pull round yields nothing two ticks in a row
    re-bootstraps through the host-cache model, so crashes of an entire
    view cannot isolate a live node permanently.
    """

    name = "brahms"

    def __init__(
        self,
        *,
        view_size: int = 8,
        alpha: float = 0.45,
        beta: float = 0.45,
        interval: float = 4.0,
        sampler_slots: int = 8,
        ack_timeout: Optional[float] = None,
        max_retries: int = 2,
        rng: SeedLike = None,
    ) -> None:
        super().__init__(rng)
        if view_size < 2:
            raise ValidationError(f"view_size must be >= 2, got {view_size}")
        if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0 or alpha + beta >= 1.0:
            raise ValidationError(
                f"need 0 < alpha, beta and alpha + beta < 1 "
                f"(the remainder is the history share), got {alpha}, {beta}"
            )
        check_positive("interval", interval)
        if sampler_slots < 1:
            raise ValidationError(f"sampler_slots must be >= 1, got {sampler_slots}")
        self.view_size = int(view_size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.interval = float(interval)
        self.sampler_slots = int(sampler_slots)
        self._ack_timeout = ack_timeout
        self._max_retries = int(max_retries)
        self.views: Dict[int, List[int]] = {}
        self._push_buf: Dict[int, Set[int]] = {}
        self._pull_buf: Dict[int, Set[int]] = {}
        self._dry_ticks: Dict[int, int] = {}
        # per node: list of (seed, best_priority, best_id or None)
        self._samplers: Dict[int, List[List[int]]] = {}
        self._reliable: Optional[ReliableTransport] = None

    # -- lifecycle ---------------------------------------------------------

    def _after_bind(self) -> None:
        assert self.transport is not None and self.overlay is not None
        self._reliable = ReliableTransport(
            self.transport,
            ack_timeout=self._ack_timeout,
            max_retries=self._max_retries,
            on_deliver=self._on_reliable,
            on_give_up=self._on_give_up,
        )
        overlay = self.overlay
        n = overlay.n
        live = [int(v) for v in overlay.alive_nodes().tolist()]
        self.views = {v: [] for v in range(n)}
        self._push_buf = {v: set() for v in range(n)}
        self._pull_buf = {v: set() for v in range(n)}
        self._dry_ticks = {v: 0 for v in range(n)}
        self._samplers = {
            v: [
                [int(self._rng.integers(1 << 62)), (1 << 64), -1]
                for _ in range(self.sampler_slots)
            ]
            for v in range(n)
        }
        for node in live:
            others = [v for v in live if v != node]
            if not others:
                continue
            k = min(self.view_size, len(others))
            picks = self._rng.choice(len(others), size=k, replace=False)
            self.views[node] = sorted(others[int(i)] for i in picks)
            for peer in self.views[node]:
                self._observe(node, peer)

    def start(self) -> None:
        was_running = self._running
        super().start()
        if not was_running:
            assert self.sim is not None
            self.sim.call_in(self.interval, self._tick)

    # -- partner contract --------------------------------------------------

    def partner(self, node: int) -> Optional[int]:
        view = self.views.get(node, [])
        if not view:
            return None
        return int(view[int(self._rng.integers(len(view)))])

    def view(self, node: int) -> Tuple[int, ...]:
        return tuple(self.views.get(node, ()))

    def retry_stats(self) -> Mapping[str, int]:
        r = self._reliable
        if r is None:
            return super().retry_stats()
        return {
            "sent": r.sent,
            "retries": r.retries,
            "acked": r.acked,
            "gave_up": r.gave_up,
            "acks_sent": r.acks_sent,
        }

    # -- the sampler -------------------------------------------------------

    def _observe(self, node: int, peer: int) -> None:
        """Feed one observed id through every min-wise sampler slot."""
        for slot in self._samplers[node]:
            priority = _mix64(slot[0], peer)
            if priority < slot[1]:
                slot[1] = priority
                slot[2] = peer

    def _sampler_ids(self, node: int) -> List[int]:
        return sorted({slot[2] for slot in self._samplers[node] if slot[2] >= 0})

    def _reset_slots_holding(self, node: int, peer: int) -> None:
        """A sampler output failed its probe: re-seed the slots holding it."""
        for slot in self._samplers[node]:
            if slot[2] == peer:
                slot[0] = int(self._rng.integers(1 << 62))
                slot[1] = 1 << 64
                slot[2] = -1
        for other in self.views.get(node, ()):
            if other != peer:
                self._observe(node, other)

    # -- maintenance -------------------------------------------------------

    def _share(self, fraction: float) -> int:
        return max(1, int(round(fraction * self.view_size)))

    def _tick(self) -> None:
        if not self._running:
            return
        assert self.sim is not None and self.overlay is not None
        assert self.transport is not None and self._reliable is not None
        for node in [int(v) for v in self.overlay.alive_nodes().tolist()]:
            self._recompute_view(node)
            view = self.views[node]
            if not view:
                self._bootstrap(node)
                continue
            for target in self._pick(view, self._share(self.alpha)):
                self.transport.send(node, target, None, kind="push", size=8)
                self.maintenance_messages += 1
            for target in self._pick(view, self._share(self.beta)):
                self.transport.send(node, target, None, kind="pull", size=8)
                self.maintenance_messages += 1
            probe_pool = self._sampler_ids(node)
            if probe_pool:
                probe_to = probe_pool[int(self._rng.integers(len(probe_pool)))]
                if probe_to != node:
                    self._reliable.send(node, probe_to, None, kind="probe", size=8)
        self.sim.call_in(self.interval, self._tick)

    def _pick(self, pool: Sequence[int], k: int) -> List[int]:
        k = min(k, len(pool))
        if k == 0:
            return []
        picks = self._rng.choice(len(pool), size=k, replace=False)
        return [int(pool[int(i)]) for i in picks]

    def _recompute_view(self, node: int) -> None:
        pushed = self._push_buf[node]
        pulled = self._pull_buf[node]
        if not pushed and not pulled:
            self._dry_ticks[node] += 1
            if self._dry_ticks[node] >= 2:
                self._bootstrap(node)
            return
        self._dry_ticks[node] = 0
        # Flood guard: an over-full push buffer (> the push share of the
        # view) means someone is shouting; keep the old view this round.
        if len(pushed) > max(2 * self._share(self.alpha), self.view_size):
            pushed.clear()
            pulled.clear()
            return
        candidates: List[int] = []
        candidates.extend(self._pick(sorted(pushed), self._share(self.alpha)))
        candidates.extend(self._pick(sorted(pulled - {node}), self._share(self.beta)))
        history = self._sampler_ids(node)
        gamma = self.view_size - self._share(self.alpha) - self._share(self.beta)
        candidates.extend(self._pick(history, max(gamma, 1)))
        merged: List[int] = []
        for peer in candidates + self.views[node]:
            if peer != node and peer not in merged:
                merged.append(peer)
            if len(merged) >= self.view_size:
                break
        if merged:
            self.views[node] = sorted(merged)
            self.promotions += 1
        pushed.clear()
        pulled.clear()

    def _bootstrap(self, node: int) -> None:
        """View and buffers drained: host-cache re-entry."""
        assert self.overlay is not None and self.transport is not None
        live = [int(v) for v in self.overlay.alive_nodes().tolist() if int(v) != node]
        if not live:
            return
        k = min(self.view_size, len(live))
        picks = self._rng.choice(len(live), size=k, replace=False)
        self.views[node] = sorted(live[int(i)] for i in picks)
        for peer in self.views[node]:
            self._observe(node, peer)
            self.transport.send(node, peer, None, kind="pull", size=8)
            self.maintenance_messages += 1
        self._dry_ticks[node] = 0
        self.rejoins += 1

    # -- message handling --------------------------------------------------

    def on_message(self, msg: Message) -> bool:
        assert self.overlay is not None
        if self._reliable is not None and msg.kind in ("ack", "reliable"):
            if not self.overlay.is_alive(msg.dst):
                return True
            return self._reliable.handle(msg)
        if msg.kind == "push":
            if self.overlay.is_alive(msg.dst):
                self._push_buf[msg.dst].add(msg.src)
                self._observe(msg.dst, msg.src)
            return True
        if msg.kind == "pull":
            if self.overlay.is_alive(msg.dst):
                assert self.transport is not None
                reply = tuple(self.views[msg.dst])
                self.transport.send(
                    msg.dst, msg.src, reply, kind="pull-reply", size=8 * len(reply)
                )
                self.maintenance_messages += 1
            return True
        if msg.kind == "pull-reply":
            if self.overlay.is_alive(msg.dst):
                for peer in msg.payload:
                    if peer != msg.dst:
                        self._pull_buf[msg.dst].add(peer)
                        self._observe(msg.dst, peer)
            return True
        return False

    def _on_reliable(self, msg: Message, kind: str, payload: Any) -> None:
        return  # probes need no action — the ack is the point

    def _on_give_up(self, src: int, dst: int, kind: str) -> None:
        assert self.overlay is not None
        if not self.overlay.is_alive(src):
            return
        view = self.views.get(src, [])
        if dst in view:
            view.remove(dst)
            self.evictions += 1
        self._reset_slots_holding(src, dst)

    def node_joined(self, node: int) -> None:
        """Churn rejoin: flush state and re-enter via the host cache."""
        self.views[node] = []
        self._push_buf[node] = set()
        self._pull_buf[node] = set()
        for slot in self._samplers[node]:
            slot[0] = int(self._rng.integers(1 << 62))
            slot[1] = 1 << 64
            slot[2] = -1
        self._bootstrap(node)


# -- registry -----------------------------------------------------------------

_STRATEGIES: Dict[str, Type[PartnerStrategy]] = {}


def register_strategy(cls: Type[PartnerStrategy], *, replace: bool = False) -> None:
    """Register a :class:`PartnerStrategy` subclass under its ``name``."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} has no registry name")
    if cls.name in _STRATEGIES and not replace:
        raise ConfigurationError(f"strategy {cls.name!r} is already registered")
    _STRATEGIES[cls.name] = cls


def strategy_names() -> Tuple[str, ...]:
    """All registered partner-strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def make_strategy(
    name: str, *, rng: SeedLike = None, **kwargs: Any
) -> PartnerStrategy:
    """Construct a registered strategy (unbound — the engine binds it)."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise ConfigurationError(
            f"unknown partner strategy {name!r}; registered: {known}"
        ) from None
    accepted = {
        k: v for k, v in kwargs.items() if k in cls.__init__.__code__.co_varnames
    }
    return cls(rng=rng, **accepted)


register_strategy(GlobalSampler)
register_strategy(NeighborSampler)
register_strategy(HyParViewMembership)
register_strategy(BrahmsMembership)
