"""Synchronous vectorized gossip engine.

Runs one aggregation cycle of Algorithm 2 with all nodes' state held in
NumPy arrays.  The key structural fact it exploits: in Algorithm 2 a
node sends its *whole* halved vector to one partner per step, so every
vector component ``j`` evolves under the **same** random mixing matrix
``M(k)``.  The full per-node state is therefore

    X(k) = M(k) ... M(1) @ X0        with  X0 = diag(v) @ S
    W(k) = M(k) ... M(1) @ I

and one gossip step over all nodes and all components is a single
row-scatter-add — no Python loops.

Two memory modes:

* ``full`` — X and W are dense (n, n); exact per the protocol.  Default
  for n <= 1500 (Table 3's n = 1000 runs here).
* ``probe`` — only ``p`` probe columns of X and W are tracked, (n, p)
  arrays.  Because all columns share the mixing matrix, step counts and
  gossip-error samples measured on the probes are representative; the
  next-cycle vector is then computed exactly (documented substitution —
  used for the Fig. 3 sweeps at n = 4000, where full mode would need
  hundreds of MB).

Two kernels execute the step loop:

* ``fast`` (default) — allocation-free segment-sum over preallocated
  X/W/scratch buffers.  Partner draws are batched (`check_every` steps
  per RNG call), the per-step mixing matrix ``M = 0.5*(I + A)`` is laid
  out directly in CSR form with O(n) integer ops (bincount + stable
  argsort) and applied with scipy's C ``csr_matvecs`` segment-sum into
  a reused scratch buffer, the O(n*p) estimate/residual convergence
  pass runs only every ``check_every`` steps, and X/W stay in CSR form
  for the first few steps until their density crosses
  ``densify_threshold`` (X0 = diag(v)@S inherits the trust matrix's
  sparsity, so early steps are O(nnz) instead of O(n*p)).
* ``legacy`` — the reference implementation: per-step scatter matrix
  construction and ``0.5*(X + A@X)`` allocation chain.  Kept so the
  contract suite can assert the fast path is protocol-identical and so
  the benchmark trajectory records the speedup.

Both kernels consume the identical partner-choice RNG stream (a
Generator fills a ``(k, n)`` block in the same element order as ``k``
successive size-``n`` draws), so with the same seed and ``check_every``
they walk the same mixing-matrix sequence.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, ValidationError
from repro.gossip.base import CycleEngine, GossipCycleResult, TrustInput, coerce_csr
from repro.gossip.convergence import average_relative_error
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_vector

try:  # the C segment-sum kernel behind scipy's own csr @ dense
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - very old scipy
    _csr_matvecs = None

__all__ = ["GossipCycleResult", "SynchronousGossipEngine", "Workspace"]

#: above this node count, auto mode switches from full to probe
_FULL_MODE_LIMIT = 1500

#: floor for relative-change denominators (see pushsum._REL_FLOOR)
_REL_FLOOR = 1e-12

#: once a coarse check sees a residual below _FINE_FACTOR * epsilon the
#: fast kernel switches to per-step checks (Algorithm 1's granularity)
_FINE_FACTOR = 8.0


class _TargetStream:
    """Batched partner draws: one ``integers`` call per ``batch`` steps.

    Drawing targets in ``(batch, n)`` blocks amortizes the RNG call
    without changing the consumed stream: a Generator fills a C-ordered
    block in the same element order as ``batch`` successive size-``n``
    draws, so the per-step target sequence is invariant in the batch
    size (and identical to the legacy kernel's per-step draws).
    """

    __slots__ = ("_rng", "_n", "_batch", "_ids", "_block", "_row")

    def __init__(self, rng: np.random.Generator, n: int, batch: int) -> None:
        self._rng = rng
        self._n = n
        self._batch = max(1, int(batch))
        self._ids = np.arange(n)
        self._block: np.ndarray | None = None
        self._row = 0

    def next(self) -> np.ndarray:
        if self._block is None or self._row >= self._block.shape[0]:
            block = self._rng.integers(0, self._n - 1, size=(self._batch, self._n))
            block[block >= self._ids[None, :]] += 1  # uniform over others, never self
            self._block = block
            self._row = 0
        row = self._block[self._row]
        self._row += 1
        return row


class Workspace:
    """Preallocated dense-phase buffers of the fast kernel, one shape.

    Everything the dense step loop writes — the X/W state pair, their
    scratch twins, the estimate/prev pair, the blocked residual tiles,
    and the constant ``half``/``indptr``/``ids`` integer arrays — lives
    here, keyed on the ``(n, p)`` shape it serves.  The engine keeps one
    instance and reuses it across cycles of a run *and* across runs of
    the same shape, so a multi-cycle ``GossipTrust.run`` pays the ~10
    array allocations once instead of once per cycle (at n = 1000 full
    mode that is ~64 MiB of fresh pages per cycle avoided).

    Reuse is sound because every buffer is write-before-read within a
    cycle: X/W are filled by ``toarray(out=...)``, ``est`` by a full
    ``np.divide``, ``prev`` only read after ``have_prev`` is set within
    the same cycle, and the residual tiles are overwritten per chunk.
    Call :meth:`invalidate` (or
    :meth:`SynchronousGossipEngine.invalidate_workspace`) to drop the
    buffers, e.g. to release memory between differently-shaped sweeps.
    """

    __slots__ = (
        "n", "p", "X", "W", "sX", "sW", "est", "prev",
        "num", "den", "blk", "half", "indptr", "ids", "valid",
    )

    def __init__(self, n: int, p: int) -> None:
        self.n = int(n)
        self.p = int(p)
        self.X = np.empty((n, p), dtype=np.float64)
        self.W = np.empty((n, p), dtype=np.float64)
        self.sX = np.empty((n, p), dtype=np.float64)
        self.sW = np.empty((n, p), dtype=np.float64)
        self.est = np.empty((n, p))
        self.prev = np.empty((n, p))
        self.blk = max(1, min(n, (1 << 17) // max(p, 1)))  # ~1 MiB residual chunks
        self.num = np.empty((self.blk, p))
        self.den = np.empty((self.blk, p))
        self.half = np.full(n, 0.5)
        self.indptr = np.zeros(n + 1, dtype=np.int32)
        self.ids = np.arange(n)
        self.valid = True

    def matches(self, n: int, p: int) -> bool:
        """Whether these buffers serve shape ``(n, p)`` and are live."""
        return self.valid and self.n == n and self.p == p

    def invalidate(self) -> None:
        """Mark the buffers unusable; the next cycle allocates fresh ones."""
        self.valid = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"Workspace(n={self.n}, p={self.p}, valid={self.valid})"


class SynchronousGossipEngine(CycleEngine):
    """Vectorized executor of gossiped aggregation cycles.

    Parameters
    ----------
    n:
        Number of peers.
    epsilon:
        Gossip error threshold (Algorithm 1 line 14; Table 2: 1e-4).
    mode:
        ``"full"``, ``"probe"``, or ``"auto"`` (size-based).
    probe_columns:
        Number of probe columns in probe mode.
    max_steps:
        Per-cycle gossip step budget.
    min_steps:
        Steps before the epsilon criterion may fire (>= 2 avoids the
        vacuous all-masses-still-local state).
    check_every:
        Convergence-check cadence: the O(n*p) estimate/residual pass
        runs every ``check_every`` steps instead of every step.  The
        residual then measures the estimate change across ``check_every``
        steps — a *stricter* reading of the epsilon criterion — so the
        result is invariant modulo step-count granularity while the
        per-step cost drops by nearly the full estimate-pass share.
        The fast kernel additionally drops to per-step checks once a
        residual lands within ``_FINE_FACTOR`` of epsilon, so the
        finish line is resolved at Algorithm 1's per-step granularity
        and the cadence never overshoots the stop step by more than
        the coarse phase.
    densify_threshold:
        Keep X/W in CSR form until either's density crosses this
        fraction; ``0`` densifies immediately.  Only the fast kernel
        uses it — convergence cannot fire while W is sparse (the
        criterion needs ``W > 0`` everywhere), so the sparse phase is
        pure O(nnz) mixing.
    kernel:
        ``"fast"`` (in-place scatter-add kernel) or ``"legacy"`` (the
        reference per-step matrix construction).  Protocol-identical;
        see the module docstring.
    reuse_workspace:
        Keep the fast kernel's dense buffers (:class:`Workspace`) alive
        between ``run_cycle`` calls of the same shape instead of
        reallocating them per cycle (default True; results are
        identical either way — the buffers are write-before-read).
        ``False`` restores the per-cycle-allocation behaviour, kept as
        the benchmark baseline.
    rng:
        Partner-choice randomness.
    """

    name = "sync"

    def __init__(
        self,
        n: int,
        *,
        epsilon: float = 1e-4,
        mode: str = "auto",
        probe_columns: int = 64,
        max_steps: int = 5_000,
        min_steps: int = 2,
        check_every: int = 8,
        densify_threshold: float = 0.25,
        kernel: str = "fast",
        reuse_workspace: bool = True,
        rng: SeedLike = None,
    ) -> None:
        if n < 2:
            raise ValidationError(f"gossip needs n >= 2 nodes, got {n}")
        if mode not in ("auto", "full", "probe"):
            raise ValidationError(f"unknown mode {mode!r}")
        if kernel not in ("fast", "legacy"):
            raise ValidationError(f"unknown kernel {kernel!r}")
        check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
        if probe_columns < 1:
            raise ValidationError(f"probe_columns must be >= 1, got {probe_columns}")
        if max_steps < 1:
            raise ValidationError(f"max_steps must be >= 1, got {max_steps}")
        if check_every < 1:
            raise ValidationError(f"check_every must be >= 1, got {check_every}")
        check_in_range("densify_threshold", densify_threshold, low=0.0, high=1.0)
        self.n = int(n)
        self.epsilon = float(epsilon)
        self.mode = mode if mode != "auto" else ("full" if n <= _FULL_MODE_LIMIT else "probe")
        self.probe_columns = int(min(probe_columns, n))
        self.max_steps = int(max_steps)
        self.min_steps = int(min_steps)
        self.check_every = int(check_every)
        self.densify_threshold = float(densify_threshold)
        self.kernel = kernel
        self.reuse_workspace = bool(reuse_workspace)
        self._rng = as_generator(rng)
        self._workspace: Workspace | None = None
        #: steps used by each cycle run so far (reset via clear_stats)
        self.cycle_steps: list = []

    # -- public API --------------------------------------------------------

    def run_cycle(
        self,
        S: TrustInput,
        v: np.ndarray,
        *,
        raise_on_budget: bool = True,
    ) -> GossipCycleResult:
        """Gossip one aggregation cycle: estimate ``S^T v`` on every node.

        Raises
        ------
        ConvergenceError
            If the epsilon criterion is not met in ``max_steps`` (unless
            ``raise_on_budget=False``, which returns the best effort).
        """
        S_csr = coerce_csr(S, self.n)
        v = check_vector("v", v, size=self.n)
        exact = np.asarray(S_csr.T @ v).ravel()
        if self.sanitizer is not None:
            self.sanitizer.begin_cycle(self.name)

        X0 = (sparse.diags(v) @ S_csr).tocsr()  # X0[i, j] = v_i * s_ij
        if self.mode == "full":
            cols = np.arange(self.n)
            W0 = sparse.identity(self.n, format="csr", dtype=np.float64)
        else:
            cols = self._pick_probe_columns(v, exact)
            X0 = sparse.csr_matrix(X0[:, cols])
            W0 = sparse.csr_matrix(
                (np.ones(cols.size), (cols, np.arange(cols.size))),
                shape=(self.n, cols.size),
            )

        B = None
        if self.kernel == "legacy":
            X, W, steps, converged = self._gossip_until_epsilon(
                np.asarray(X0.todense(), dtype=np.float64),
                np.asarray(W0.todense(), dtype=np.float64),
                raise_on_budget=raise_on_budget,
            )
        else:
            X, W, steps, converged, B = self._gossip_fast(
                X0, W0, raise_on_budget=raise_on_budget
            )
        self.cycle_steps.append(steps)

        if B is None:
            B = self._estimates(X, W)
        col_means = np.nanmean(np.where(np.isfinite(B), B, np.nan), axis=0)
        disagreement = float(
            np.nanmax(np.nanmax(B, axis=0) - np.nanmin(B, axis=0))
        ) if np.isfinite(B).any() else float("inf")

        if self.mode == "full":
            v_next = col_means
            gossip_error = average_relative_error(v_next, exact)
        else:
            gossip_error = average_relative_error(col_means, exact[cols])
            v_next = exact.copy()

        return GossipCycleResult(
            v_next=v_next,
            exact=exact,
            steps=steps,
            gossip_error=gossip_error,
            converged=converged,
            mode=self.mode,
            node_disagreement=disagreement,
        )

    def clear_stats(self) -> None:
        """Reset the per-cycle step log."""
        self.cycle_steps = []

    @property
    def workspace(self) -> "Workspace | None":
        """The live :class:`Workspace`, if a fast cycle has run."""
        return self._workspace

    def invalidate_workspace(self) -> None:
        """Drop the cached dense buffers (next cycle allocates fresh)."""
        if self._workspace is not None:
            self._workspace.invalidate()
        self._workspace = None

    def _acquire_workspace(self, p: int) -> Workspace:
        """The reusable buffer set for shape ``(n, p)``.

        With ``reuse_workspace=False`` (or after a shape change /
        explicit invalidation) a fresh :class:`Workspace` is built —
        the per-cycle-allocation baseline the benchmarks compare
        against.
        """
        ws = self._workspace
        if (
            not self.reuse_workspace
            or ws is None
            or not ws.matches(self.n, p)
        ):
            ws = Workspace(self.n, p)
            self._workspace = ws if self.reuse_workspace else None
        return ws

    # -- internals -----------------------------------------------------------

    def _pick_probe_columns(self, v: np.ndarray, exact: np.ndarray) -> np.ndarray:
        """Random probe columns, always including the heaviest-mass column.

        Including the top column makes the probe error sample cover the
        score that matters most for peer selection.  The top column is
        retained unconditionally: deduplication drops random picks, not
        the guaranteed column (a plain ``np.unique(...)[:p]`` truncation
        would silently discard high indices — including the top).

        The draw comes from a *spawned* child generator, not the
        partner-choice stream: full and probe runs with the same seed
        therefore see identical mixing-matrix sequences, which is what
        makes probe-mode step counts directly comparable to full mode.
        """
        p = self.probe_columns
        if p >= self.n:
            return np.arange(self.n)
        top = int(np.argmax(exact))
        col_rng = self._rng.spawn(1)[0]
        rest = col_rng.choice(self.n, size=p, replace=False)
        cols = [top, *[int(c) for c in rest if int(c) != top][: p - 1]]
        return np.sort(np.asarray(cols, dtype=np.int64))

    @staticmethod
    def _estimates(X: np.ndarray, W: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(W > 0, X / np.where(W > 0, W, 1.0), np.nan)

    # -- fast kernel -------------------------------------------------------

    @staticmethod
    def _mixing_matrix(targets: np.ndarray, n: int, ids: np.ndarray) -> sparse.csr_matrix:
        """Assemble ``M = 0.5 * (I + A)`` directly in CSR form.

        Row ``r`` stores the sender columns ``{i : targets[i] == r}`` in
        ascending order followed by the diagonal entry ``r``.  Built
        from a bincount + stable argsort — O(n) integer work, no
        COO -> CSR conversion, no duplicate summing.  Used for the
        sparse warm-start phase, where one spmm per step beats
        densifying early.
        """
        counts = np.bincount(targets, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(counts + 1, out=indptr[1:])
        order = np.argsort(targets, kind="stable")
        sorted_t = targets[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_t[1:] != sorted_t[:-1]))
        )
        seg_origin = np.repeat(starts, np.diff(np.append(starts, n)))
        indices = np.empty(2 * n, dtype=np.int32)
        indices[indptr[sorted_t] + (ids - seg_origin)] = order
        indices[indptr[1:] - 1] = ids
        data = np.full(2 * n, 0.5)
        return sparse.csr_matrix((data, indices, indptr), shape=(n, n))

    def _gossip_fast(
        self, Xs: sparse.csr_matrix, Ws: sparse.csr_matrix, *, raise_on_budget: bool
    ) -> Tuple[np.ndarray, np.ndarray, int, bool, Optional[np.ndarray]]:
        """Step loop over preallocated buffers — no per-step allocations.

        One dense step is two C-level segment-sums: the half-step
        matrix ``M = 0.5*(I + A)`` is laid out directly in CSR form
        (O(n) integer ops) and applied with scipy's ``csr_matvecs``
        kernel into reused X/W scratch buffers, then the buffers swap.
        The O(n*p) estimate/residual pass runs every ``check_every``
        steps — dropping to every step once a residual comes within
        ``_FINE_FACTOR`` of epsilon — and never before ``W`` is
        positive everywhere (before that the residual cannot be
        finite).  All dense buffers come from the persistent
        :class:`Workspace`, so consecutive cycles of the same shape
        allocate nothing here.
        """
        n = self.n
        p = Xs.shape[1]
        k = self.check_every
        ws = self._acquire_workspace(p)
        stream = _TargetStream(self._rng, n, k)
        ids = ws.ids
        step = 0
        converged = False
        san = self.sanitizer
        # Push-sum conservation references: column sums of X and W are
        # invariant under M = 0.5*(I + A), so the totals are too.
        x_mass = float(Xs.sum()) if san is not None else 0.0
        w_mass = float(Ws.sum()) if san is not None else 0.0

        # Sparse warm-start: X0 inherits S's sparsity and each step at
        # most doubles nnz, so only ~log2(1/density0) steps run here.
        # No convergence checks — the criterion needs W > 0 everywhere,
        # impossible while W is stored sparse.
        thr = self.densify_threshold * float(n * p)
        while step < self.max_steps and Xs.nnz < thr and Ws.nnz < thr:
            M = self._mixing_matrix(stream.next(), n, ids)
            Xs = M @ Xs
            Ws = M @ Ws
            step += 1

        X, W, sX, sW = ws.X, ws.W, ws.sX, ws.sW
        Xs.toarray(out=X)
        Ws.toarray(out=W)
        if san is not None and step:
            # The sparse warm start mixed without checks; validate its
            # output before the dense loop takes over.
            san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
            san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
            san.check_nonnegative("W", W, step=step)
        half = ws.half
        indptr = ws.indptr
        est = ws.est
        prev = ws.prev
        blk = ws.blk
        num = ws.num
        den = ws.den
        have_prev = False
        w_allpos = False
        fine = False  # per-step checks once a residual nears epsilon
        fine_at = _FINE_FACTOR * self.epsilon

        # hot: dense step loop — every buffer comes from the Workspace
        while step < self.max_steps:
            step += 1
            targets = stream.next()
            # One gossip step for X and W: each scratch buffer starts as
            # the halved kept share, then scipy's C segment-sum kernel
            # adds each receiver's inbound halves (senders in ascending
            # order — A laid out in CSR by a stable argsort).
            np.cumsum(np.bincount(targets, minlength=n), out=indptr[1:])
            senders = np.argsort(targets, kind="stable").astype(np.int32)
            np.multiply(X, 0.5, out=sX)
            np.multiply(W, 0.5, out=sW)
            if _csr_matvecs is not None:
                _csr_matvecs(n, n, p, indptr, senders, half, X.ravel(), sX.ravel())
                _csr_matvecs(n, n, p, indptr, senders, half, W.ravel(), sW.ravel())
            else:  # pragma: no cover - very old scipy
                A = sparse.csr_matrix((half, senders, indptr), shape=(n, n))
                sX += A @ X
                sW += A @ W
            X, sX = sX, X
            W, sW = sW, W

            if step < self.min_steps or (not fine and step % k):
                continue
            if san is not None:
                # Checked step: conservation + non-negativity.  Scalar
                # reductions only — the cadence keeps this off the
                # per-step path.
                san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
                san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
                san.check_nonnegative("W", W, step=step)
            if not w_allpos:
                # W only gains mass, so once all-positive it stays so
                # and this O(n*p) scan stops running.
                w_allpos = bool(W.min() > 0.0)
                if not w_allpos:
                    continue
            np.divide(X, W, out=est)
            if san is not None:
                san.check_finite("estimates x/w", est, step=step)
            if have_prev:
                # Relative change across the last check window, scanned
                # in chunks: far from convergence the first chunk
                # already exceeds epsilon, so the full O(n*p) residual
                # pass only runs near the finish line.
                converged = True
                worst = 0.0
                for lo in range(0, n, blk):
                    hi = min(lo + blk, n)
                    e = est[lo:hi]
                    q = prev[lo:hi]
                    m = hi - lo
                    np.subtract(e, q, out=num[:m])
                    np.abs(num[:m], out=num[:m])
                    np.maximum(q, _REL_FLOOR, out=den[:m])
                    num[:m] /= den[:m]
                    worst = max(worst, float(num[:m].max()))
                    if worst > self.epsilon:
                        converged = False
                        break
                if converged:
                    break
                # Close to the finish line: resolve the stop step at
                # Algorithm 1's per-step granularity instead of paying
                # up to check_every - 1 extra O(n*p) gossip steps.
                fine = fine or worst <= fine_at
            est, prev = prev, est  # prev now holds this check's estimates
            have_prev = True

        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"gossip cycle exceeded {self.max_steps} steps (epsilon={self.epsilon})",
                steps=self.max_steps,
            )
        # At convergence W > 0 everywhere and est holds the estimates of
        # the final state, so run_cycle can skip its estimate pass.
        return X, W, step, converged, (est if converged else None)

    # -- legacy kernel -----------------------------------------------------

    def _gossip_until_epsilon(
        self, X: np.ndarray, W: np.ndarray, *, raise_on_budget: bool
    ) -> Tuple[np.ndarray, np.ndarray, int, bool]:
        """Reference step loop (``kernel="legacy"``): allocating arithmetic.

        Kept verbatim in spirit — per-step scatter-matrix construction
        and ``0.5*(X + A@X)`` — as the ground truth the fast kernel is
        tested against and benchmarked over.  The estimate pass is
        hoisted behind the convergence guard: it used to run on every
        step even when ``step < min_steps`` or ``W`` still had zero
        entries (where the residual cannot be finite), wasting an
        O(n*p) pass per skipped step.
        """
        n = self.n
        ids = np.arange(n)
        ones = np.ones(n)
        k = self.check_every
        prev = None
        san = self.sanitizer
        x_mass = float(X.sum()) if san is not None else 0.0
        w_mass = float(W.sum()) if san is not None else 0.0
        for step in range(1, self.max_steps + 1):
            targets = self._rng.integers(0, n - 1, size=n)
            targets[targets >= ids] += 1  # uniform over others, never self
            # One gossip step is X <- M X with M = 0.5*(I + A), where
            # A[targets[i], i] = 1 routes i's sent half.  Applying A as a
            # sparse matmul runs at C speed (np.add.at is ~10x slower).
            A = sparse.csr_matrix((ones, (targets, ids)), shape=(n, n))
            X = 0.5 * (X + A @ X)
            W = 0.5 * (W + A @ W)
            if step < self.min_steps or step % k:
                continue
            if san is not None:
                san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
                san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
                san.check_nonnegative("W", W, step=step)
            if not np.all(W > 0):
                continue
            est = self._estimates(X, W)
            if prev is not None:
                # Relative per-step change, scale-free in n (see pushsum).
                resid = np.abs(est - prev) / np.maximum(np.abs(prev), _REL_FLOOR)
                if np.all(np.isfinite(resid)) and float(resid.max()) <= self.epsilon:
                    return X, W, step, True
            prev = est
        if raise_on_budget:
            raise ConvergenceError(
                f"gossip cycle exceeded {self.max_steps} steps (epsilon={self.epsilon})",
                steps=self.max_steps,
            )
        return X, W, self.max_steps, False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SynchronousGossipEngine(n={self.n}, mode={self.mode!r}, "
            f"kernel={self.kernel!r}, epsilon={self.epsilon})"
        )
