"""Synchronous vectorized gossip engine.

Runs one aggregation cycle of Algorithm 2 with all nodes' state held in
NumPy arrays.  The key structural fact it exploits: in Algorithm 2 a
node sends its *whole* halved vector to one partner per step, so every
vector component ``j`` evolves under the **same** random mixing matrix
``M(k)``.  The full per-node state is therefore

    X(k) = M(k) ... M(1) @ X0        with  X0 = diag(v) @ S
    W(k) = M(k) ... M(1) @ I

and one gossip step over all nodes and all components is a single
row-scatter-add — no Python loops.

Two memory modes:

* ``full`` — X and W are dense (n, n); exact per the protocol.  Default
  for n <= 1500 (Table 3's n = 1000 runs here).
* ``probe`` — only ``p`` probe columns of X and W are tracked, (n, p)
  arrays.  Because all columns share the mixing matrix, step counts and
  gossip-error samples measured on the probes are representative; the
  next-cycle vector is then computed exactly (documented substitution —
  used for the Fig. 3 sweeps at n = 4000, where full mode would need
  hundreds of MB).

Three kernels execute the step loop:

* ``fast`` (default) — allocation-free segment-sum over preallocated
  X/W/scratch buffers.  Partner draws are batched (`check_every` steps
  per RNG call), the per-step mixing matrix ``M = 0.5*(I + A)`` is laid
  out directly in CSR form with O(n) integer ops (bincount + stable
  argsort) and applied with scipy's C ``csr_matvecs`` segment-sum into
  a reused scratch buffer, the O(n*p) estimate/residual convergence
  pass runs only every ``check_every`` steps, and X/W stay in CSR form
  for the first few steps until their density crosses
  ``densify_threshold`` (X0 = diag(v)@S inherits the trust matrix's
  sparsity, so early steps are O(nnz) instead of O(n*p)).
* ``sparse`` — the memory-bounded large-n path: X and W start the
  cycle in CSR form, held in three rotating
  :class:`~repro.gossip.memory.CsrPool` buffers (current X, current W,
  SpGEMM output) whose capacity grows geometrically and never per
  step.  Each step is two C-level SpGEMMs (``csr_matmat``) of the
  pooled mixing matrix against the pooled state.  Serial private-
  backend runs *hand off* to dense stepping per column shard once its
  occupancy crosses ``densify_threshold``: the CSR values are gathered
  into three reusable dense slot arrays, the pool arrays are released,
  and the remaining steps run as SpMMs (``csr_matvecs``) — bitwise
  identical values (same accumulation order, and absent CSR entries
  become exact dense zeros) at 8 bytes/entry instead of CSR's 12,
  with no per-step pattern recomputation.  The estimate/residual pass
  reads cache-blocked dense tiles (``block_rows``) against a single
  persistent ``prev`` estimate buffer either way.  With probe-mode
  column selection the working set is (n, p) with
  ``p = probe_columns`` regardless of n — at n = 10^5, p = 64,
  float64 the whole cycle fits ~0.5 GiB; ``dtype="float32"`` nearly
  halves it again for the n = 10^6 tier.
* ``legacy`` — the reference implementation: per-step scatter matrix
  construction and ``0.5*(X + A@X)`` allocation chain.  Kept so the
  contract suite can assert the fast path is protocol-identical and so
  the benchmark trajectory records the speedup.

All kernels consume the identical partner-choice RNG stream (a
Generator fills a ``(k, n)`` block in the same element order as ``k``
successive size-``n`` draws), so with the same seed and ``check_every``
they walk the same mixing-matrix sequence — fast and sparse runs stop
on the same step and agree to accumulation-order rounding.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.analysis.sanitizer import (
    InvariantSanitizer,
    ShardOwnershipGuard,
    sanitize_enabled,
)
from repro.errors import ConvergenceError, ValidationError
from repro.gossip import shard_exec
from repro.gossip.base import CycleEngine, GossipCycleResult, TrustInput, coerce_csr
from repro.gossip.convergence import average_relative_error
from repro.gossip.memory import (
    BACKEND_NAMES,
    BufferBackend,
    CsrPool,
    make_backend,
    min_shards_for,
)
from repro.metrics.telemetry import Stopwatch
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_vector

try:  # the C segment-sum kernel behind scipy's own csr @ dense
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - very old scipy
    _csr_matvecs = None

try:  # the C SpGEMM / row-gather kernels behind scipy's csr @ csr
    from scipy.sparse._sparsetools import csr_matmat as _csr_matmat
    from scipy.sparse._sparsetools import csr_todense as _csr_todense
except ImportError:  # pragma: no cover - very old scipy
    _csr_matmat = None
    _csr_todense = None

__all__ = [
    "GossipCycleResult",
    "SynchronousGossipEngine",
    "Workspace",
    "SparseWorkspace",
]

#: engine dtype names accepted by ``dtype=`` (the buffer precision)
DTYPE_NAMES = ("float64", "float32")

#: above this node count, auto mode switches from full to probe
_FULL_MODE_LIMIT = 1500

#: floor for relative-change denominators (see pushsum._REL_FLOOR)
_REL_FLOOR = 1e-12

#: once a coarse check sees a residual below _FINE_FACTOR * epsilon the
#: fast kernel switches to per-step checks (Algorithm 1's granularity)
_FINE_FACTOR = 8.0

#: above this many B elements, run_cycle's column statistics go blocked
#: (no (n, p)-sized temporaries) instead of one-shot nan-reductions
_BLOCKED_STATS_LIMIT = 1 << 24


class _TargetStream:
    """Batched partner draws: one ``integers`` call per ``batch`` steps.

    Drawing targets in ``(batch, n)`` blocks amortizes the RNG call
    without changing the consumed stream: a Generator fills a C-ordered
    block in the same element order as ``batch`` successive size-``n``
    draws, so the per-step target sequence is invariant in the batch
    size (and identical to the legacy kernel's per-step draws).
    """

    __slots__ = ("_rng", "_n", "_batch", "_ids", "_block", "_row")

    def __init__(self, rng: np.random.Generator, n: int, batch: int) -> None:
        self._rng = rng
        self._n = n
        self._batch = max(1, int(batch))
        self._ids = np.arange(n)
        self._block: np.ndarray | None = None
        self._row = 0

    def next(self) -> np.ndarray:
        if self._block is None or self._row >= self._block.shape[0]:
            block = self._rng.integers(0, self._n - 1, size=(self._batch, self._n))
            block[block >= self._ids[None, :]] += 1  # uniform over others, never self
            self._block = block
            self._row = 0
        row = self._block[self._row]
        self._row += 1
        return row


class Workspace:
    """Preallocated dense-phase buffers of the fast kernel, one shape.

    Everything the dense step loop writes — the X/W state pair, their
    scratch twins, the estimate/prev pair, the blocked residual tiles,
    and the constant ``half``/``indptr``/``ids`` integer arrays — lives
    here, keyed on the ``(n, p)`` shape it serves.  The engine keeps one
    instance and reuses it across cycles of a run *and* across runs of
    the same shape, so a multi-cycle ``GossipTrust.run`` pays the ~10
    array allocations once instead of once per cycle (at n = 1000 full
    mode that is ~64 MiB of fresh pages per cycle avoided).

    Reuse is sound because every buffer is write-before-read within a
    cycle: X/W are filled by ``toarray(out=...)``, ``est`` by a full
    ``np.divide``, ``prev`` only read after ``have_prev`` is set within
    the same cycle, and the residual tiles are overwritten per chunk.
    Call :meth:`invalidate` (or
    :meth:`SynchronousGossipEngine.invalidate_workspace`) to drop the
    buffers, e.g. to release memory between differently-shaped sweeps.
    """

    __slots__ = (
        "n", "p", "dtype", "backend", "X", "W", "sX", "sW", "est", "prev",
        "num", "den", "blk", "half", "indptr", "ids", "valid",
    )

    def __init__(
        self,
        n: int,
        p: int,
        dtype: "np.dtype | type" = np.float64,
        backend: Optional[BufferBackend] = None,
    ) -> None:
        self.n = int(n)
        self.p = int(p)
        self.dtype = np.dtype(dtype)
        self.backend = backend if backend is not None else make_backend(None)
        be = self.backend
        self.X = be.empty((n, p), self.dtype, "X")
        self.W = be.empty((n, p), self.dtype, "W")
        self.sX = be.empty((n, p), self.dtype, "sX")
        self.sW = be.empty((n, p), self.dtype, "sW")
        self.est = be.empty((n, p), self.dtype, "est")
        self.prev = be.empty((n, p), self.dtype, "prev")
        self.blk = max(1, min(n, (1 << 17) // max(p, 1)))  # ~1 MiB residual chunks
        self.num = be.empty((self.blk, p), self.dtype, "num")
        self.den = be.empty((self.blk, p), self.dtype, "den")
        self.half = be.empty(n, self.dtype, "half")
        self.half.fill(0.5)
        self.indptr = be.empty(n + 1, np.int32, "indptr")
        self.indptr[0] = 0
        self.ids = be.empty(n, np.int64, "ids")
        self.ids[:] = np.arange(n)
        self.valid = True

    def matches(self, n: int, p: int, dtype: "np.dtype | type" = np.float64) -> bool:
        """Whether these buffers serve shape/(dtype) ``(n, p)`` and are live."""
        return self.valid and self.n == n and self.p == p and self.dtype == np.dtype(dtype)

    def invalidate(self) -> None:
        """Mark the buffers unusable; the next cycle allocates fresh ones.

        With a non-private backend the buffer references are dropped and
        the backend closed (shared-memory segments unlink, spill files
        delete) — segment handles cannot close while ndarray views are
        still exported, so the views go first.
        """
        self.valid = False
        if self.backend.name == "private":
            return
        for name in (
            "X", "W", "sX", "sW", "est", "prev",
            "num", "den", "half", "indptr", "ids",
        ):
            setattr(self, name, None)
        self.backend.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Workspace(n={self.n}, p={self.p}, valid={self.valid})"


class SparseWorkspace:
    """Pooled CSR buffers of the sparse kernel, one ``(n, p, dtype)`` shape.

    The ``p`` probe columns are split into ``shards`` contiguous,
    near-equal column ranges (``bounds[i] : bounds[i + 1]``), each
    stepped independently: because the mixing matrix acts on rows, the
    SpGEMM over a column subset computes bitwise the same values as the
    same columns of the unsharded product.  Every shard owns three
    rotating :class:`~repro.gossip.memory.CsrPool` instances (current
    X, current W, SpGEMM output — the output pool is always the one
    whose contents just died, so two pools' worth of state plus one
    scratch covers the whole cycle).  Sharding also keeps each pool's
    ``n * p_shard`` element count inside the int32 index guard when
    ``n * p`` itself would not fit.  The mixing matrix
    ``M = 0.5*(I + A)`` has exactly ``2n`` entries every step, so its
    ``m_indptr``/``m_indices``/``m_data`` arrays are fixed-size and
    ``m_data`` is the constant 0.5 vector, filled once; all shards of a
    step share it.

    With ``shard_workers > 1`` the pools are preallocated at the full
    ``n * p_shard`` occupancy ceiling (worker-side growth would
    allocate process-private arrays invisible to the attach manifest —
    and W must reach full occupancy before convergence anyway), and the
    shared ``targets`` buffer carries each check window's partner draws
    to the attached worker processes (see
    :mod:`~repro.gossip.shard_exec`).

    Serial private-backend cycles additionally carry the ``dense`` /
    ``dense_on`` handoff state: once a shard's occupancy crosses the
    engine's ``densify_threshold`` its CSR values move into three
    ``(n, p_shard)`` dense slot arrays (kept for reuse across cycles)
    and the pool arrays are released, so the steady state costs
    ``3 * n * p`` elements flat instead of CSR's values + int32
    indices.  Beyond those slots the only dense (n, p) array is
    ``prev``, the persistent previous estimate of the convergence
    check; the check itself runs over ``blk``-row tiles
    (``xt``/``wt``/``num``/``den``, plus the ``bp`` offset-adjusted
    indptr) gathered from the pools or copied from the dense slots, so
    peak memory is bounded by ``3 * state + (n, p) + O(blk * p)``
    regardless of how long the cycle runs.  ``blk`` derives from the *full* probe width ``p`` whatever
    the shard count, so residual scans of every shard count walk
    identical row tiles.  ``block_rows`` overrides the tile height
    (0 = the fast kernel's ~1 MiB cache-block formula).
    """

    __slots__ = (
        "n", "p", "dtype", "backend", "block_rows", "shards",
        "shard_workers", "bounds", "shard_pools", "physical", "pools", "targets",
        "dense", "dense_on", "m_indptr", "m_indices", "m_data", "prev",
        "xt", "wt", "num", "den", "bp", "blk", "ids", "valid",
        "ownership", "guard",
    )

    def __init__(
        self,
        n: int,
        p: int,
        dtype: "np.dtype | type" = np.float64,
        backend: Optional[BufferBackend] = None,
        block_rows: int = 0,
        shards: int = 1,
        shard_workers: int = 1,
        target_rows: int = 1,
        sanitize: bool = False,
    ) -> None:
        self.n = int(n)
        self.p = int(p)
        self.dtype = np.dtype(dtype)
        self.backend = backend if backend is not None else make_backend(None)
        self.block_rows = int(block_rows)
        self.shards = max(1, min(int(shards), self.p))
        self.shard_workers = max(1, int(shard_workers))
        be = self.backend
        self.bounds = tuple(
            self.p * i // self.shards for i in range(self.shards + 1)
        )
        self.shard_pools: List[List[CsrPool]] = []
        for si in range(self.shards):
            ps = self.bounds[si + 1] - self.bounds[si]
            if self.shard_workers > 1:
                cap0 = n * ps  # full occupancy: workers never grow pools
            else:
                # O(n) start (X0 inherits S's sparsity), doubled
                # geometrically toward the n*ps occupancy ceiling.
                cap0 = min(n * ps, max(ps, 2 * n))
            prefix = "" if self.shards == 1 else f"s{si}-"
            self.shard_pools.append([
                CsrPool(n, ps, cap0, self.dtype, be, label=f"{prefix}{lbl}")
                for lbl in ("X", "W", "out")
            ])
        # Creation-order snapshot: workers attach pools in this order,
        # while shard_pools is re-sorted to logical [X, W, out] order at
        # the end of every cycle — the parent maps logical slot ->
        # physical pool index from here when dispatching worker windows.
        self.physical: Tuple[Tuple[CsrPool, ...], ...] = tuple(
            tuple(triple) for triple in self.shard_pools
        )
        #: shard 0's pool triple (the whole state when ``shards == 1``)
        self.pools = self.shard_pools[0]
        #: per-shard dense slot arrays [X, W, out], allocated lazily at
        #: the serial kernel's dense handoff and reused across cycles
        self.dense: List[Optional[List[np.ndarray]]] = [None] * self.shards
        #: per-cycle flags: shard ``si`` stepped dense since its load
        self.dense_on: List[bool] = [False] * self.shards
        self.targets = (
            be.empty((max(1, int(target_rows)), n), np.int64, "targets")
            if self.shard_workers > 1
            else None
        )
        #: REPRO_SANITIZE=1 parallel runs: shadow-ownership epoch map
        #: and its guard (see analysis.sanitizer.ShardOwnershipGuard)
        self.ownership: Optional[np.ndarray] = None
        self.guard: Optional[ShardOwnershipGuard] = None
        if sanitize and self.shard_workers > 1:
            own = be.empty((self.shards, 3), np.int64, "ownership")
            own[:] = 0
            self.ownership = own
            self.guard = ShardOwnershipGuard(own)
            for si, triple in enumerate(self.physical):
                for slot, pool in enumerate(triple):
                    self.guard.register_pool(pool.label, si, slot)
                    pool.guard = self.guard
        self.m_indptr = be.empty(n + 1, np.int32, "m-indptr")
        self.m_indptr[0] = 0
        self.m_indices = be.empty(2 * n, np.int32, "m-indices")
        self.m_data = be.empty(2 * n, self.dtype, "m-data")
        self.m_data.fill(0.5)
        self.prev = be.empty((n, p), self.dtype, "prev")
        blk = self.block_rows if self.block_rows > 0 else (
            max(1, (1 << 17) // max(p, 1))  # fast kernel's ~1 MiB chunks
        )
        self.blk = max(1, min(n, blk))
        self.xt = be.empty((self.blk, p), self.dtype, "xt")
        self.wt = be.empty((self.blk, p), self.dtype, "wt")
        self.num = be.empty((self.blk, p), self.dtype, "num")
        self.den = be.empty((self.blk, p), self.dtype, "den")
        self.bp = be.empty(self.blk + 1, np.int32, "bp")
        self.ids = be.empty(n, np.int64, "ids")
        self.ids[:] = np.arange(n)
        self.valid = True

    def matches(
        self,
        n: int,
        p: int,
        dtype: "np.dtype | type",
        block_rows: int,
        shards: int = 1,
        shard_workers: int = 1,
        sanitize: bool = False,
    ) -> bool:
        """Whether these pools serve the full shape tuple and are live."""
        return (
            self.valid
            and self.n == n
            and self.p == p
            and self.dtype == np.dtype(dtype)
            and self.block_rows == int(block_rows)
            and self.shards == max(1, min(int(shards), self.p))
            and self.shard_workers == max(1, int(shard_workers))
            and (self.guard is not None)
            == (bool(sanitize) and max(1, int(shard_workers)) > 1)
        )

    def invalidate(self) -> None:
        """Drop the pools; non-private backends release their resources."""
        self.valid = False
        self.dense = []
        self.dense_on = []
        if self.backend.name == "private":
            return
        self.shard_pools = []
        self.physical = ()
        self.pools = []
        for name in (
            "m_indptr", "m_indices", "m_data", "prev", "targets",
            "xt", "wt", "num", "den", "bp", "ids", "ownership", "guard",
        ):
            setattr(self, name, None)
        self.backend.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SparseWorkspace(n={self.n}, p={self.p}, "
            f"dtype={self.dtype.name}, shards={self.shards}, "
            f"valid={self.valid})"
        )


class SynchronousGossipEngine(CycleEngine):
    """Vectorized executor of gossiped aggregation cycles.

    Parameters
    ----------
    n:
        Number of peers.
    epsilon:
        Gossip error threshold (Algorithm 1 line 14; Table 2: 1e-4).
    mode:
        ``"full"``, ``"probe"``, or ``"auto"`` (size-based).
    probe_columns:
        Number of probe columns in probe mode.
    max_steps:
        Per-cycle gossip step budget.
    min_steps:
        Steps before the epsilon criterion may fire (>= 2 avoids the
        vacuous all-masses-still-local state).
    check_every:
        Convergence-check cadence: the O(n*p) estimate/residual pass
        runs every ``check_every`` steps instead of every step.  The
        residual then measures the estimate change across ``check_every``
        steps — a *stricter* reading of the epsilon criterion — so the
        result is invariant modulo step-count granularity while the
        per-step cost drops by nearly the full estimate-pass share.
        The fast kernel additionally drops to per-step checks once a
        residual lands within ``_FINE_FACTOR`` of epsilon, so the
        finish line is resolved at Algorithm 1's per-step granularity
        and the cadence never overshoots the stop step by more than
        the coarse phase.
    densify_threshold:
        Keep X/W in CSR form until either's density crosses this
        fraction; ``0`` densifies immediately.  The fast kernel uses
        it for its sparse warm start; the sparse kernel's serial
        private-backend path uses it per column shard as the dense
        handoff point (CSR pools released, stepping continues as
        bitwise-identical SpMMs over dense slot arrays — see the
        module docstring).  In both kernels convergence cannot fire
        while W is stored sparse (the criterion needs ``W > 0``
        everywhere), so the CSR phase is pure O(nnz) mixing.
    kernel:
        ``"fast"`` (in-place scatter-add kernel), ``"sparse"`` (the
        memory-bounded pooled-SpGEMM path for large n), or ``"legacy"``
        (the reference per-step matrix construction).
        Protocol-identical; see the module docstring.
    dtype:
        Buffer precision, ``"float64"`` (default) or ``"float32"``.
        float32 halves every workspace buffer; because each step only
        halves and adds positive masses the per-step rounding is
        ~machine epsilon, so a converged cycle's scores agree with
        float64 to roughly ``steps * eps32`` relative (~1e-5 at typical
        step counts — measured in the parity tests).  With an armed
        sanitizer the conservation tolerance is widened to 1e-4 for the
        same reason.  The legacy kernel is float64-only.
    block_rows:
        Tile height of the sparse kernel's blocked estimate/residual
        gather pass.  0 (default) uses the fast kernel's ~1 MiB
        cache-block formula ``min(n, 2^17 / p)`` — which the fast
        kernel itself always uses, so residual scans of the two kernels
        walk identical tiles.
    shards:
        Column shard count of the sparse kernel: the ``p`` probe
        columns split into this many contiguous ranges, each stepped in
        its own CSR pool triple.  Results are invariant in the shard
        count (column subsets of a row-acting SpGEMM are bitwise the
        same values).  Auto-raised when ``n * p`` would overflow the
        pools' int32 index guard, so the large-n path works at any
        ``(n, p)`` without tuning.  Only the sparse kernel shards.
    shard_workers:
        Worker *processes* stepping shards concurrently (sparse kernel
        only).  ``1`` (default) steps every shard inline.  ``> 1``
        requires a ``"shared"`` or ``"memmap"`` workspace backend: the
        workers attach the shard pools by manifest (no n-sized state is
        copied or rebuilt per task) and each check window fans one task
        per shard over a ``ProcessPoolExecutor`` — see
        :mod:`~repro.gossip.shard_exec`.  Results are identical to
        ``shard_workers=1``.
    workspace_backend:
        Where workspace buffers physically live: ``"private"``
        (default, ordinary heap), ``"shared"``
        (:mod:`multiprocessing.shared_memory` segments another process
        can attach), or ``"memmap"`` (file-backed maps the OS can
        evict).  A preconstructed
        :class:`~repro.gossip.memory.BufferBackend` is also accepted.
        Non-private backends require ``reuse_workspace=True`` (the
        engine must own the buffers to release them).
    reuse_workspace:
        Keep the kernel buffers (:class:`Workspace` /
        :class:`SparseWorkspace`) alive between ``run_cycle`` calls of
        the same shape instead of reallocating them per cycle (default
        True; results are identical either way — the buffers are
        write-before-read).  ``False`` restores the per-cycle-allocation
        behaviour, kept as the benchmark baseline.
    rng:
        Partner-choice randomness.
    """

    name = "sync"

    def __init__(
        self,
        n: int,
        *,
        epsilon: float = 1e-4,
        mode: str = "auto",
        probe_columns: int = 64,
        max_steps: int = 5_000,
        min_steps: int = 2,
        check_every: int = 8,
        densify_threshold: float = 0.25,
        kernel: str = "fast",
        dtype: str = "float64",
        block_rows: int = 0,
        shards: int = 1,
        shard_workers: int = 1,
        workspace_backend: "str | BufferBackend" = "private",
        reuse_workspace: bool = True,
        rng: SeedLike = None,
    ) -> None:
        if n < 2:
            raise ValidationError(f"gossip needs n >= 2 nodes, got {n}")
        if mode not in ("auto", "full", "probe"):
            raise ValidationError(f"unknown mode {mode!r}")
        if kernel not in ("fast", "legacy", "sparse"):
            raise ValidationError(f"unknown kernel {kernel!r}")
        if dtype not in DTYPE_NAMES:
            raise ValidationError(
                f"unknown dtype {dtype!r}; known: {', '.join(DTYPE_NAMES)}"
            )
        if kernel == "legacy" and dtype != "float64":
            raise ValidationError(
                "kernel='legacy' is the float64 reference implementation; "
                "use kernel='fast' or 'sparse' for float32 buffers"
            )
        if kernel == "sparse" and (_csr_matmat is None or _csr_todense is None):
            raise ValidationError(  # pragma: no cover - very old scipy
                "kernel='sparse' needs scipy's csr_matmat/csr_todense kernels"
            )
        check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
        if probe_columns < 1:
            raise ValidationError(f"probe_columns must be >= 1, got {probe_columns}")
        if max_steps < 1:
            raise ValidationError(f"max_steps must be >= 1, got {max_steps}")
        if check_every < 1:
            raise ValidationError(f"check_every must be >= 1, got {check_every}")
        if block_rows < 0:
            raise ValidationError(f"block_rows must be >= 0, got {block_rows}")
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if shard_workers < 1:
            raise ValidationError(
                f"shard_workers must be >= 1, got {shard_workers}"
            )
        if kernel != "sparse" and (shards != 1 or shard_workers != 1):
            raise ValidationError(
                "shards/shard_workers apply only to kernel='sparse' "
                f"(got kernel={kernel!r})"
            )
        check_in_range("densify_threshold", densify_threshold, low=0.0, high=1.0)
        backend_name = (
            workspace_backend
            if isinstance(workspace_backend, str)
            else workspace_backend.name
        )
        if backend_name not in BACKEND_NAMES:
            raise ValidationError(
                f"unknown workspace backend {backend_name!r}; "
                f"known: {', '.join(BACKEND_NAMES)}"
            )
        if backend_name != "private" and not reuse_workspace:
            raise ValidationError(
                "a shared/memmap workspace backend requires "
                "reuse_workspace=True (the engine must own the buffers "
                "to release them)"
            )
        if shard_workers > 1 and backend_name == "private":
            raise ValidationError(
                "shard_workers > 1 needs a 'shared' or 'memmap' workspace "
                "backend (worker processes attach the pools by manifest)"
            )
        self.n = int(n)
        self.epsilon = float(epsilon)
        if mode != "auto":
            self.mode = mode
        else:
            # The sparse kernel exists to keep the working set (n, p);
            # auto therefore always probes it.  Dense kernels stay full
            # up to the historical size limit.
            self.mode = (
                "probe"
                if kernel == "sparse" or n > _FULL_MODE_LIMIT
                else "full"
            )
        self.probe_columns = int(min(probe_columns, n))
        self.max_steps = int(max_steps)
        self.min_steps = int(min_steps)
        self.check_every = int(check_every)
        self.densify_threshold = float(densify_threshold)
        self.kernel = kernel
        self.dtype = dtype
        self._dtype = np.dtype(dtype)
        self.block_rows = int(block_rows)
        self.shards = int(shards)
        self.shard_workers = int(shard_workers)
        self.workspace_backend = workspace_backend
        self.reuse_workspace = bool(reuse_workspace)
        self._rng = as_generator(rng)
        self._workspace: Workspace | None = None
        self._sparse_workspace: SparseWorkspace | None = None
        self._shard_executor: Executor | None = None
        self._shard_executor_ws: SparseWorkspace | None = None
        #: steps used by each cycle run so far (reset via clear_stats)
        self.cycle_steps: list = []

    # -- public API --------------------------------------------------------

    def run_cycle(
        self,
        S: TrustInput,
        v: np.ndarray,
        *,
        raise_on_budget: bool = True,
    ) -> GossipCycleResult:
        """Gossip one aggregation cycle: estimate ``S^T v`` on every node.

        Raises
        ------
        ConvergenceError
            If the epsilon criterion is not met in ``max_steps`` (unless
            ``raise_on_budget=False``, which returns the best effort).
        """
        watch = Stopwatch()
        phases: Dict[str, float] = {}
        S_csr = coerce_csr(S, self.n)
        v = check_vector("v", v, size=self.n)
        phases["setup"] = watch.restart()
        exact = np.asarray(S_csr.T @ v).ravel()
        phases["oracle"] = watch.restart()
        if self.sanitizer is not None:
            self.sanitizer.begin_cycle(self.name)

        # X0[i, j] = v_i * s_ij; in probe mode the columns are selected
        # *before* the row scaling — the same single multiply per entry,
        # without ever materializing a full-S-sized scaled copy.
        if self.mode == "full":
            cols = np.arange(self.n)
            X0 = (sparse.diags(v) @ S_csr).tocsr()
            W0 = sparse.identity(self.n, format="csr", dtype=np.float64)
        else:
            cols = self._pick_probe_columns(v, exact)
            X0 = (sparse.diags(v) @ sparse.csr_matrix(S_csr[:, cols])).tocsr()
            W0 = sparse.csr_matrix(
                (np.ones(cols.size), (cols, np.arange(cols.size))),
                shape=(self.n, cols.size),
            )
        if self._dtype != np.float64:
            X0 = X0.astype(self._dtype)
            W0 = W0.astype(self._dtype)
        phases["setup"] += watch.restart()

        B = None
        if self.kernel == "legacy":
            X, W, steps, converged = self._gossip_until_epsilon(
                np.asarray(X0.todense(), dtype=np.float64),
                np.asarray(W0.todense(), dtype=np.float64),
                raise_on_budget=raise_on_budget,
            )
        elif self.kernel == "sparse":
            steps, converged, B = self._gossip_sparse(
                X0, W0, raise_on_budget=raise_on_budget, phases=phases
            )
        else:
            X, W, steps, converged, B = self._gossip_fast(
                X0, W0, raise_on_budget=raise_on_budget, phases=phases
            )
        # The dispatch interval covers workspace acquisition too; the
        # kernels report that share separately as the "alloc" phase.
        phases["kernel"] = max(0.0, watch.restart() - phases.get("alloc", 0.0))
        self.cycle_steps.append(steps)

        if B is None:
            B = self._estimates(X, W)
        col_means, disagreement = self._column_stats(B)

        if self.mode == "full":
            v_next = np.asarray(col_means, dtype=np.float64)
            gossip_error = average_relative_error(v_next, exact)
        else:
            gossip_error = average_relative_error(col_means, exact[cols])
            v_next = exact.copy()
        phases["estimate"] = watch.restart()

        return GossipCycleResult(
            v_next=v_next,
            exact=exact,
            steps=steps,
            gossip_error=gossip_error,
            converged=converged,
            mode=self.mode,
            node_disagreement=disagreement,
            phase_times=phases,
        )

    def clear_stats(self) -> None:
        """Reset the per-cycle step log."""
        self.cycle_steps = []

    @property
    def workspace(self) -> "Workspace | None":
        """The live :class:`Workspace`, if a fast cycle has run."""
        return self._workspace

    @property
    def sparse_workspace(self) -> "SparseWorkspace | None":
        """The live :class:`SparseWorkspace`, if a sparse cycle has run."""
        return self._sparse_workspace

    def invalidate_workspace(self) -> None:
        """Drop the cached kernel buffers (next cycle allocates fresh)."""
        self._release_shard_executor()
        if self._workspace is not None:
            self._workspace.invalidate()
        self._workspace = None
        if self._sparse_workspace is not None:
            self._sparse_workspace.invalidate()
        self._sparse_workspace = None

    def arm_sanitizer(
        self, sanitizer: Optional[InvariantSanitizer] = None
    ) -> InvariantSanitizer:
        """Arm invariant checks; float32 buffers widen the tolerance.

        float32 state accumulates O(steps * eps32) relative
        conservation drift from pure rounding, so the default 1e-9
        tolerance would flag correct runs; a fresh sanitizer is then
        built at 1e-4 instead.  An explicitly passed sanitizer is used
        as-is.
        """
        if sanitizer is None and self._dtype != np.float64:
            sanitizer = InvariantSanitizer(rel_tol=1e-4)
        return super().arm_sanitizer(sanitizer)

    def _acquire_workspace(self, p: int) -> Workspace:
        """The reusable buffer set for shape ``(n, p)``.

        With ``reuse_workspace=False`` (or after a shape change /
        explicit invalidation) a fresh :class:`Workspace` is built —
        the per-cycle-allocation baseline the benchmarks compare
        against.
        """
        ws = self._workspace
        if (
            not self.reuse_workspace
            or ws is None
            or not ws.matches(self.n, p, self._dtype)
        ):
            if ws is not None:
                ws.invalidate()
            ws = Workspace(
                self.n, p, self._dtype, make_backend(self.workspace_backend)
            )
            self._workspace = ws if self.reuse_workspace else None
        return ws

    def _effective_shards(self, p: int) -> int:
        """The shard count actually used for probe width ``p``.

        Auto-raised to whatever keeps every pool's ``n * p_shard``
        element count inside the int32 index guard (and clamped to at
        most one shard per column) — so ``shards=1`` "just works" at
        any scale and explicit shard counts only ever *add* splits.
        """
        return min(p, max(self.shards, min_shards_for(self.n, p)))

    def _acquire_sparse_workspace(self, p: int) -> SparseWorkspace:
        """The reusable CSR pool set for shape ``(n, p)`` (sparse kernel)."""
        shards = self._effective_shards(p)
        # Shadow-ownership guarding follows the process-wide sanitizer
        # switch or an armed engine; only parallel runs carry the map.
        sanitize = self.shard_workers > 1 and (
            self.sanitizer is not None or sanitize_enabled()
        )
        ws = self._sparse_workspace
        if (
            not self.reuse_workspace
            or ws is None
            or not ws.matches(
                self.n, p, self._dtype, self.block_rows,
                shards, self.shard_workers, sanitize,
            )
        ):
            if ws is not None:
                self._release_shard_executor()
                ws.invalidate()
            ws = SparseWorkspace(
                self.n,
                p,
                self._dtype,
                make_backend(self.workspace_backend),
                self.block_rows,
                shards,
                self.shard_workers,
                self.check_every,
                sanitize,
            )
            self._sparse_workspace = ws if self.reuse_workspace else None
        return ws

    def _acquire_shard_executor(self, ws: SparseWorkspace) -> Executor:
        """The worker pool stepping ``ws``'s shards (built per workspace).

        Workers attach the workspace's pools once, in their initializer
        (:func:`~repro.gossip.shard_exec.init_worker`), so the pool
        must be rebuilt whenever the workspace is — the manifest it
        attached would otherwise point at released buffers.
        """
        if self._shard_executor is not None and self._shard_executor_ws is ws:
            return self._shard_executor
        self._release_shard_executor()
        spec = shard_exec.workspace_spec(ws)
        ex = ProcessPoolExecutor(
            max_workers=max(1, min(self.shard_workers, ws.shards)),
            initializer=shard_exec.init_worker,
            initargs=(spec,),
        )
        self._shard_executor = ex
        self._shard_executor_ws = ws
        return ex

    def _release_shard_executor(self) -> None:
        """Shut the shard worker pool down (workers drop their attaches)."""
        if self._shard_executor is not None:
            self._shard_executor.shutdown(wait=True)
        self._shard_executor = None
        self._shard_executor_ws = None

    # -- internals -----------------------------------------------------------

    def _pick_probe_columns(self, v: np.ndarray, exact: np.ndarray) -> np.ndarray:
        """Random probe columns, always including the heaviest-mass column.

        Including the top column makes the probe error sample cover the
        score that matters most for peer selection.  The top column is
        retained unconditionally: deduplication drops random picks, not
        the guaranteed column (a plain ``np.unique(...)[:p]`` truncation
        would silently discard high indices — including the top).

        The draw comes from a *spawned* child generator, not the
        partner-choice stream: full and probe runs with the same seed
        therefore see identical mixing-matrix sequences, which is what
        makes probe-mode step counts directly comparable to full mode.
        """
        p = self.probe_columns
        if p >= self.n:
            return np.arange(self.n)
        top = int(np.argmax(exact))
        col_rng = self._rng.spawn(1)[0]
        rest = col_rng.choice(self.n, size=p, replace=False)
        cols = [top, *[int(c) for c in rest if int(c) != top][: p - 1]]
        return np.sort(np.asarray(cols, dtype=np.int64))

    @staticmethod
    def _estimates(X: np.ndarray, W: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(W > 0, X / np.where(W > 0, W, 1.0), np.nan)

    @staticmethod
    def _column_stats(B: np.ndarray) -> Tuple[np.ndarray, float]:
        """Per-column mean of the finite estimates, plus node disagreement.

        Small matrices take the one-shot nan-reduction path.  Past
        ``_BLOCKED_STATS_LIMIT`` elements the reductions run over row
        blocks with O(block * p) temporaries instead — at n = 10^6,
        p = 64, float64 the one-shot path's masked copy alone is
        ~0.5 GiB, a third of the whole cycle's budget.
        """
        n, p = B.shape
        if n * p <= _BLOCKED_STATS_LIMIT:
            col_means = np.nanmean(np.where(np.isfinite(B), B, np.nan), axis=0)
            disagreement = float(
                np.nanmax(np.nanmax(B, axis=0) - np.nanmin(B, axis=0))
            ) if np.isfinite(B).any() else float("inf")
            return col_means, disagreement
        blk = max(1, (1 << 20) // max(p, 1))
        sums = np.zeros(p, dtype=np.float64)
        counts = np.zeros(p, dtype=np.int64)
        col_max = np.full(p, -np.inf)
        col_min = np.full(p, np.inf)
        for lo in range(0, n, blk):
            tile = B[lo : min(lo + blk, n)]
            finite = np.isfinite(tile)
            if bool(finite.all()):
                sums += tile.sum(axis=0, dtype=np.float64)
                counts += tile.shape[0]
                np.maximum(col_max, tile.max(axis=0), out=col_max)
                np.minimum(col_min, tile.min(axis=0), out=col_min)
                continue
            masked = np.where(finite, tile, 0.0)
            sums += masked.sum(axis=0, dtype=np.float64)
            counts += finite.sum(axis=0)
            np.maximum(
                col_max, np.where(finite, tile, -np.inf).max(axis=0), out=col_max
            )
            np.minimum(
                col_min, np.where(finite, tile, np.inf).min(axis=0), out=col_min
            )
        seen = counts > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            col_means = np.where(seen, sums / np.maximum(counts, 1), np.nan)
        if not bool(seen.any()):
            return col_means, float("inf")
        spread = col_max[seen] - col_min[seen]
        return col_means, float(spread.max())

    # -- fast kernel -------------------------------------------------------

    @staticmethod
    def _mixing_matrix(
        targets: np.ndarray,
        n: int,
        ids: np.ndarray,
        dtype: "np.dtype | type" = np.float64,
    ) -> sparse.csr_matrix:
        """Assemble ``M = 0.5 * (I + A)`` directly in CSR form.

        Row ``r`` stores the sender columns ``{i : targets[i] == r}`` in
        ascending order followed by the diagonal entry ``r``.  Built
        from a bincount + stable argsort — O(n) integer work, no
        COO -> CSR conversion, no duplicate summing.  Used for the
        sparse warm-start phase, where one spmm per step beats
        densifying early.
        """
        counts = np.bincount(targets, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(counts + 1, out=indptr[1:])
        order = np.argsort(targets, kind="stable")
        sorted_t = targets[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_t[1:] != sorted_t[:-1]))
        )
        seg_origin = np.repeat(starts, np.diff(np.append(starts, n)))
        indices = np.empty(2 * n, dtype=np.int32)
        indices[indptr[sorted_t] + (ids - seg_origin)] = order
        indices[indptr[1:] - 1] = ids
        data = np.full(2 * n, 0.5, dtype=dtype)
        return sparse.csr_matrix((data, indices, indptr), shape=(n, n))

    def _gossip_fast(
        self,
        Xs: sparse.csr_matrix,
        Ws: sparse.csr_matrix,
        *,
        raise_on_budget: bool,
        phases: Optional[Dict[str, float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int, bool, Optional[np.ndarray]]:
        """Step loop over preallocated buffers — no per-step allocations.

        One dense step is two C-level segment-sums: the half-step
        matrix ``M = 0.5*(I + A)`` is laid out directly in CSR form
        (O(n) integer ops) and applied with scipy's ``csr_matvecs``
        kernel into reused X/W scratch buffers, then the buffers swap.
        The O(n*p) estimate/residual pass runs every ``check_every``
        steps — dropping to every step once a residual comes within
        ``_FINE_FACTOR`` of epsilon — and never before ``W`` is
        positive everywhere (before that the residual cannot be
        finite).  All dense buffers come from the persistent
        :class:`Workspace`, so consecutive cycles of the same shape
        allocate nothing here.
        """
        n = self.n
        p = Xs.shape[1]
        k = self.check_every
        alloc_watch = Stopwatch()
        ws = self._acquire_workspace(p)
        if phases is not None:
            phases["alloc"] = phases.get("alloc", 0.0) + alloc_watch.elapsed()
        stream = _TargetStream(self._rng, n, k)
        ids = ws.ids
        step = 0
        converged = False
        san = self.sanitizer
        # Push-sum conservation references: column sums of X and W are
        # invariant under M = 0.5*(I + A), so the totals are too.
        x_mass = float(Xs.sum()) if san is not None else 0.0
        w_mass = float(Ws.sum()) if san is not None else 0.0

        # Sparse warm-start: X0 inherits S's sparsity and each step at
        # most doubles nnz, so only ~log2(1/density0) steps run here.
        # No convergence checks — the criterion needs W > 0 everywhere,
        # impossible while W is stored sparse.
        thr = self.densify_threshold * float(n * p)
        while step < self.max_steps and Xs.nnz < thr and Ws.nnz < thr:
            M = self._mixing_matrix(stream.next(), n, ids, Xs.dtype)
            Xs = M @ Xs
            Ws = M @ Ws
            step += 1

        X, W, sX, sW = ws.X, ws.W, ws.sX, ws.sW
        Xs.toarray(out=X)
        Ws.toarray(out=W)
        if san is not None and step:
            # The sparse warm start mixed without checks; validate its
            # output before the dense loop takes over.
            san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
            san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
            san.check_nonnegative("W", W, step=step)
        half = ws.half
        indptr = ws.indptr
        est = ws.est
        prev = ws.prev
        blk = ws.blk
        num = ws.num
        den = ws.den
        have_prev = False
        w_allpos = False
        fine = False  # per-step checks once a residual nears epsilon
        fine_at = _FINE_FACTOR * self.epsilon

        # hot: dense step loop — every buffer comes from the Workspace
        while step < self.max_steps:
            step += 1
            targets = stream.next()
            # One gossip step for X and W: each scratch buffer starts as
            # the halved kept share, then scipy's C segment-sum kernel
            # adds each receiver's inbound halves (senders in ascending
            # order — A laid out in CSR by a stable argsort).
            np.cumsum(np.bincount(targets, minlength=n), out=indptr[1:])
            senders = np.argsort(targets, kind="stable").astype(np.int32)
            np.multiply(X, 0.5, out=sX)
            np.multiply(W, 0.5, out=sW)
            if _csr_matvecs is not None:
                _csr_matvecs(n, n, p, indptr, senders, half, X.ravel(), sX.ravel())
                _csr_matvecs(n, n, p, indptr, senders, half, W.ravel(), sW.ravel())
            else:  # pragma: no cover - very old scipy
                A = sparse.csr_matrix((half, senders, indptr), shape=(n, n))
                sX += A @ X
                sW += A @ W
            X, sX = sX, X
            W, sW = sW, W

            if step < self.min_steps or (not fine and step % k):
                continue
            if san is not None:
                # Checked step: conservation + non-negativity.  Scalar
                # reductions only — the cadence keeps this off the
                # per-step path.
                san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
                san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
                san.check_nonnegative("W", W, step=step)
            if not w_allpos:
                # W only gains mass, so once all-positive it stays so
                # and this O(n*p) scan stops running.
                w_allpos = bool(W.min() > 0.0)
                if not w_allpos:
                    continue
            np.divide(X, W, out=est)
            if san is not None:
                san.check_finite("estimates x/w", est, step=step)
            if have_prev:
                # Relative change across the last check window, scanned
                # in chunks: far from convergence the first chunk
                # already exceeds epsilon, so the full O(n*p) residual
                # pass only runs near the finish line.
                converged = True
                worst = 0.0
                for lo in range(0, n, blk):
                    hi = min(lo + blk, n)
                    e = est[lo:hi]
                    q = prev[lo:hi]
                    m = hi - lo
                    np.subtract(e, q, out=num[:m])
                    np.abs(num[:m], out=num[:m])
                    np.maximum(q, _REL_FLOOR, out=den[:m])
                    num[:m] /= den[:m]
                    worst = max(worst, float(num[:m].max()))
                    if worst > self.epsilon:
                        converged = False
                        break
                if converged:
                    break
                # Close to the finish line: resolve the stop step at
                # Algorithm 1's per-step granularity instead of paying
                # up to check_every - 1 extra O(n*p) gossip steps.
                fine = fine or worst <= fine_at
            est, prev = prev, est  # prev now holds this check's estimates
            have_prev = True

        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"gossip cycle exceeded {self.max_steps} steps (epsilon={self.epsilon})",
                steps=self.max_steps,
            )
        # At convergence W > 0 everywhere and est holds the estimates of
        # the final state, so run_cycle can skip its estimate pass.
        return X, W, step, converged, (est if converged else None)

    # -- sparse kernel -----------------------------------------------------

    def _gossip_sparse(
        self,
        Xs: sparse.csr_matrix,
        Ws: sparse.csr_matrix,
        *,
        raise_on_budget: bool,
        phases: Optional[Dict[str, float]] = None,
    ) -> Tuple[int, bool, np.ndarray]:
        """Step loop with X and W in pooled CSR form, densifying late.

        One step is, per column shard, two C-level SpGEMMs
        (``csr_matmat``) of the pooled mixing matrix against the
        shard's pooled state, writing into whichever of its three
        rotating :class:`~repro.gossip.memory.CsrPool` buffers just
        died — capacity grows geometrically toward the ``n * p_shard``
        occupancy ceiling and never per step (the SpGEMM output bound
        is the closed form ``min(2 * nnz, n * p_shard)``, so no
        symbolic pass runs).  Rotation is by index arithmetic (after
        ``s`` steps X lives at slot ``(-s) % 3``, W at ``(1 - s) % 3``)
        so worker processes need no shared rotation state.  Serial
        private-backend runs hand each shard off to dense slot
        stepping once its occupancy crosses ``densify_threshold``
        (:meth:`_densify_shard` / :meth:`_dense_step` — bitwise the
        same values, ~2/3 the steady-state bytes, no SpGEMM pattern
        cost).  With ``shard_workers > 1`` whole check windows of
        steps are fanned out, one task per shard, over
        attached-by-manifest workers (:mod:`~repro.gossip.shard_exec`);
        results are identical to inline stepping because every path
        runs the same mixing sequence over the same RNG-derived
        targets.

        The estimate/residual check walks the same cadence, block
        tiling and early-exit/fine-trigger logic as the fast kernel
        (see :meth:`_sparse_check`), so all kernels consume identical
        RNG streams and stop on the same step — and the check compares
        only after a full row tile (all shards), so step counts are
        invariant in the shard count too.

        Returns ``(steps, converged, B)`` where ``B`` is the persistent
        (n, p) estimate buffer — the only dense (n, p) array the cycle
        touches.
        """
        n = self.n
        p = Xs.shape[1]
        k = self.check_every
        alloc_watch = Stopwatch()
        ws = self._acquire_sparse_workspace(p)
        if phases is not None:
            phases["alloc"] = phases.get("alloc", 0.0) + alloc_watch.elapsed()
        bounds = ws.bounds
        ws.dense_on = [False] * ws.shards
        for si, triple in enumerate(ws.shard_pools):
            if ws.shards == 1:
                triple[0].load(Xs)
                triple[1].load(Ws)
            else:
                lo, hi = bounds[si], bounds[si + 1]
                triple[0].load(sparse.csr_matrix(Xs[:, lo:hi]))
                triple[1].load(sparse.csr_matrix(Ws[:, lo:hi]))
        executor = (
            self._acquire_shard_executor(ws) if ws.shard_workers > 1 else None
        )
        if executor is not None and ws.guard is not None:
            ws.guard.begin_cycle(self.name)
        # Serial private runs hand each shard off to dense slot arrays
        # once its occupancy crosses densify_threshold: past that point
        # SpMM (csr_matvecs) beats SpGEMM per step and the index arrays
        # are pure overhead — and the handoff is bitwise-invisible (see
        # _dense_step).  Worker runs keep CSR (released pool arrays
        # would dangle manifest attaches), as do shared/memmap serial
        # runs (their segments cannot shrink).
        densify = (
            executor is None
            and ws.backend.name == "private"
            and _csr_matvecs is not None
        )
        dense_at = [
            max(0, int(self.densify_threshold * t[0].full_capacity))
            for t in ws.shard_pools
        ]
        stream = _TargetStream(self._rng, n, k)
        san = self.sanitizer
        # Push-sum conservation references (column sums are invariant
        # under M = 0.5*(I + A), so the totals are too).
        x_mass = (
            sum(t[0].sum() for t in ws.shard_pools) if san is not None else 0.0
        )
        w_mass = (
            sum(t[1].sum() for t in ws.shard_pools) if san is not None else 0.0
        )
        step = 0
        converged = False
        have_prev = False
        w_allpos = False
        fine = False  # per-step checks once a residual nears epsilon
        fine_at = _FINE_FACTOR * self.epsilon

        while step < self.max_steps:
            # Advance in whole check windows: the serial loop's skip
            # logic collapses to "next step where a check fires", which
            # is also the natural fan-out unit for shard workers.
            nxt = self._next_check(step, fine)
            target = min(nxt, self.max_steps)
            if executor is not None:
                step = self._advance_windowed(executor, ws, stream, step, target)
            else:
                # hot: sharded sparse step loop — two pooled SpGEMMs per shard
                while step < target:
                    self._fill_mixing(stream.next(), n, ws)
                    a = (-step) % 3
                    b = (1 - step) % 3
                    c = (2 - step) % 3
                    for si, triple in enumerate(ws.shard_pools):
                        if not ws.dense_on[si]:
                            if densify and (
                                triple[a].nnz >= dense_at[si]
                                or triple[b].nnz >= dense_at[si]
                            ):
                                self._densify_shard(ws, si, a, b, c)
                            else:
                                self._spgemm_step(ws, triple[a], triple[c])
                                self._spgemm_step(ws, triple[b], triple[a])
                                continue
                        self._dense_step(ws, si, a, b, c)
                    step += 1
            if step != nxt:
                break  # budget ran out before the next check step
            xs = (-step) % 3
            wsl = (1 - step) % 3
            if san is not None:
                san.check_mass(
                    "sum(X)", self._slot_mass(ws, xs), x_mass, step=step
                )
                san.check_mass(
                    "sum(W)", self._slot_mass(ws, wsl), w_mass, step=step
                )
                for si, triple in enumerate(ws.shard_pools):
                    dx = ws.dense[si]
                    if ws.dense_on[si] and dx is not None:
                        san.check_nonnegative("W", dx[wsl], step=step)
                    else:
                        Wp = triple[wsl]
                        san.check_nonnegative("W", Wp.data[: Wp.nnz], step=step)
            if not w_allpos:
                # W's pattern only grows (M carries a full diagonal) and
                # its values stay positive, so full occupancy is sticky
                # — the check degrades to one int comparison afterwards.
                # (Dense shards carry exact zeros instead of absent
                # entries, so their min > 0 is the same full-occupancy
                # test; full == n * p is only summed over CSR shards.)
                w_allpos = self._w_all_positive(ws, wsl)
                if not w_allpos:
                    continue
            worst, all_below = self._sparse_check(ws, step, have_prev)
            if have_prev:
                if all_below:
                    converged = True
                    break
                # Close to the finish line: resolve the stop step at
                # Algorithm 1's per-step granularity (see _gossip_fast).
                fine = fine or worst <= fine_at
            have_prev = True

        # Normalize slot order so the next cycle loads into [X, W, out]
        # again (in place: ws.pools aliases shard 0's triple).  Dense
        # slot lists rotate with the same arithmetic as the pools, so
        # they are normalized identically — keeping the two indexable
        # by one slot number wherever a shard handed off.
        a = (-step) % 3
        b = (1 - step) % 3
        c = (2 - step) % 3
        for si, triple in enumerate(ws.shard_pools):
            triple[:] = [triple[a], triple[b], triple[c]]
            dense = ws.dense[si]
            if dense is not None:
                dense[:] = [dense[a], dense[b], dense[c]]
        if not converged:
            if raise_on_budget:
                raise ConvergenceError(
                    f"gossip cycle exceeded {self.max_steps} steps "
                    f"(epsilon={self.epsilon})",
                    steps=self.max_steps,
                )
            self._sparse_estimates(ws)
        return step, converged, ws.prev

    def _next_check(self, step: int, fine: bool) -> int:
        """The next step (> ``step``) on which a convergence check fires.

        Mirrors the serial skip ``step < min_steps or (not fine and
        step % check_every)``: the first step that is at least
        ``min_steps`` and — outside the fine phase — a multiple of the
        check cadence.
        """
        t = max(step + 1, self.min_steps)
        if fine:
            return t
        r = t % self.check_every
        return t if r == 0 else t + (self.check_every - r)

    def _advance_windowed(
        self,
        executor: Executor,
        ws: SparseWorkspace,
        stream: _TargetStream,
        step: int,
        target: int,
    ) -> int:
        """Fan ``target - step`` gossip steps out, one task per shard.

        The parent draws the window's partner targets (consuming the
        RNG stream exactly as the inline loop would) into the shared
        ``targets`` buffer; each task steps one shard through the whole
        window against its attached pools, so no two concurrent tasks
        touch the same arrays.  Windows longer than the buffer are
        dispatched in buffer-sized slices.  On return the live ``nnz``
        counters of the X/W slots are refreshed from the pools' indptr
        (workers do not track them).
        """
        n = ws.n
        targets = ws.targets
        assert targets is not None
        rows = targets.shape[0]
        # Workers see pools in creation (attach) order; the parent's
        # logical [X, W, out] list is re-sorted between cycles, so ship
        # the logical -> physical slot map with every window.
        perm = tuple(
            ws.physical[0].index(pool) for pool in ws.shard_pools[0]
        )
        guard = ws.guard
        while step < target:
            w = min(target - step, rows)
            for t in range(w):
                targets[t, :] = stream.next()
            # Under the shadow-ownership sanitizer every shard's slots
            # are leased to exactly one task per window; the worker
            # claims them on entry and the collect below frees them.
            tickets = [
                guard.lease(si, step=step) if guard is not None else 0
                for si in range(ws.shards)
            ]
            futures = [
                executor.submit(
                    shard_exec.advance_shard, si, step, w, perm, tickets[si]
                )
                for si in range(ws.shards)
            ]
            for si, fut in enumerate(futures):
                fut.result()
                if guard is not None:
                    guard.collect(si, tickets[si], step=step)
            step += w
        xs = (-step) % 3
        wsl = (1 - step) % 3
        for triple in ws.shard_pools:
            triple[xs].nnz = int(triple[xs].indptr[n])
            triple[wsl].nnz = int(triple[wsl].indptr[n])
        return step

    # hot: per-step CSR layout of M = 0.5*(I + A) into the mixing pools
    def _fill_mixing(self, targets: np.ndarray, n: int, ws: SparseWorkspace) -> None:
        """Lay out the step's mixing matrix into the workspace pools.

        Delegates to :func:`~repro.gossip.shard_exec.fill_mixing` — the
        same O(n) bincount + stable-argsort layout as
        :meth:`_mixing_matrix` (senders ascending, diagonal last), and
        byte-identical code to what shard worker processes run —
        writing into the preallocated ``m_indptr``/``m_indices`` arrays
        (``m_data`` is the constant 0.5 vector, filled once; M always
        has exactly ``2n`` entries).
        """
        shard_exec.fill_mixing(targets, ws.ids, ws.m_indptr, ws.m_indices)

    # hot: one pooled SpGEMM — dst := M @ src, no symbolic pass
    def _spgemm_step(self, ws: SparseWorkspace, src: CsrPool, dst: CsrPool) -> None:
        """Multiply the pooled mixing matrix into ``src``, writing ``dst``.

        ``dst`` is grown (geometrically, contents discarded — it holds
        dead state) to the closed-form output bound
        ``min(2 * nnz(src), n * p_shard)``: every output row merges the
        rows of at most ``I + A``'s two entries per column, so total
        output nnz is at most twice the input's, and a row never
        exceeds the shard's column count.  Skipping scipy's exact
        ``csr_matmat_maxnnz`` symbolic pass halves the per-step SpGEMM
        cost.  Output columns arrive unsorted (SMMP insertion order) —
        everything downstream gathers through ``csr_todense``, which
        scatters by index and does not care.
        """
        dst.ensure(2 * src.nnz)
        _csr_matmat(
            ws.n, src.cols,
            ws.m_indptr, ws.m_indices, ws.m_data,
            src.indptr, src.indices, src.data,
            dst.indptr, dst.indices, dst.data,
        )
        dst.nnz = int(dst.indptr[ws.n])

    def _densify_shard(
        self, ws: SparseWorkspace, si: int, a: int, b: int, c: int
    ) -> None:
        """Hand shard ``si`` off from pooled CSR to dense slot stepping.

        Gathers the live X (slot ``a``) and W (slot ``b``) values into
        three reusable ``(n, p_shard)`` dense arrays and releases the
        CSR pool arrays — slot ``c`` holds dead state, so it is not
        gathered (the next step zero-fills it as the SpMM output).
        Each pool is released immediately after its gather, so the
        transient co-residency is one dense slot, not three.  The
        dense arrays persist on the workspace across cycles; only the
        ``dense_on`` flags reset per cycle.
        """
        triple = ws.shard_pools[si]
        ps = triple[0].cols
        dense = ws.dense[si]
        if dense is None:
            dense = [
                np.empty((ws.n, ps), dtype=ws.dtype) for _ in range(3)
            ]
            ws.dense[si] = dense
        for slot in (a, b):
            pool = triple[slot]
            dst = dense[slot]
            dst.fill(0.0)
            _csr_todense(
                ws.n, ps, pool.indptr, pool.indices, pool.data, dst.ravel()
            )
            pool.release()
        triple[c].release()
        ws.dense_on[si] = True

    # hot: dense shard step — two csr_matvecs SpMMs against the mixing arrays
    def _dense_step(
        self, ws: SparseWorkspace, si: int, a: int, b: int, c: int
    ) -> None:
        """One gossip step of a handed-off shard: ``M @ X``, ``M @ W`` dense.

        ``csr_matvecs`` accumulates into the zero-filled target by
        walking each M row's stored entries in order — exactly the
        order ``csr_matmat`` sums the same products — and entries the
        CSR state would not store are exact dense zeros (adding them
        is an IEEE no-op), so the dense trajectory is **bitwise**
        identical to the pooled-SpGEMM one at any handoff point.  Per
        entry the state costs 8 bytes instead of CSR's 12, and the
        SpMM skips SpGEMM's per-step pattern recomputation entirely.
        Rotation matches :meth:`_gossip_sparse`: new X into slot ``c``,
        new W into the slot X vacated (``a``).
        """
        dense = ws.dense[si]
        assert dense is not None
        n = ws.n
        ps = dense[0].shape[1]
        out = dense[c]
        out.fill(0.0)
        _csr_matvecs(
            n, n, ps, ws.m_indptr, ws.m_indices, ws.m_data,
            dense[a].ravel(), out.ravel(),
        )
        tgt = dense[a]
        tgt.fill(0.0)
        _csr_matvecs(
            n, n, ps, ws.m_indptr, ws.m_indices, ws.m_data,
            dense[b].ravel(), tgt.ravel(),
        )

    def _slot_mass(self, ws: SparseWorkspace, slot: int) -> float:
        """Total mass of slot ``slot`` across shards, CSR or dense."""
        total = 0.0
        for si, triple in enumerate(ws.shard_pools):
            dense = ws.dense[si]
            if ws.dense_on[si] and dense is not None:
                total += float(dense[slot].sum())
            else:
                total += triple[slot].sum()
        return total

    def _w_all_positive(self, ws: SparseWorkspace, wsl: int) -> bool:
        """Whether W is positive on every node (the convergence gate).

        CSR shards require full occupancy plus a positive minimum;
        dense shards store exact zeros where CSR stores nothing, so
        their positive minimum alone is the same test.
        """
        for si, triple in enumerate(ws.shard_pools):
            dense = ws.dense[si]
            if ws.dense_on[si] and dense is not None:
                if not float(dense[wsl].min()) > 0.0:
                    return False
            else:
                pool = triple[wsl]
                if pool.nnz != pool.full_capacity or not pool.min() > 0.0:
                    return False
        return True

    # hot: CSR row-range gather into a dense workspace tile
    def _gather_tile(
        self, ws: SparseWorkspace, pool: CsrPool, lo: int, hi: int, out: np.ndarray
    ) -> None:
        """Densify pool rows ``[lo, hi)`` into ``out`` (shaped exactly).

        ``bp`` holds the offset-adjusted indptr slice; ``csr_todense``
        scatter-adds the row entries into the zeroed tile at C speed.
        ``out`` is a contiguous ``(hi - lo, pool.cols)`` view of a
        workspace tile buffer.
        """
        m = hi - lo
        np.subtract(pool.indptr[lo : hi + 1], pool.indptr[lo], out=ws.bp[: m + 1])
        start = int(pool.indptr[lo])
        end = int(pool.indptr[hi])
        out.fill(0.0)
        _csr_todense(
            m, pool.cols, ws.bp[: m + 1],
            pool.indices[start:end], pool.data[start:end],
            out.ravel(),
        )

    # hot: shard tile load — dense row copy or CSR gather, same values
    def _load_tile(
        self,
        ws: SparseWorkspace,
        si: int,
        slot: int,
        lo: int,
        hi: int,
        out: np.ndarray,
    ) -> None:
        """Rows ``[lo, hi)`` of shard ``si``'s slot into a scratch tile.

        A handed-off shard's rows are copied straight out of its dense
        slot array (which holds exactly what ``csr_todense`` would
        scatter); a CSR shard goes through :meth:`_gather_tile`.  Both
        paths fill ``out`` completely, and the copy keeps downstream
        in-place tile arithmetic off the live state.
        """
        dense = ws.dense[si]
        if ws.dense_on[si] and dense is not None:
            np.copyto(out, dense[slot][lo:hi])
        else:
            self._gather_tile(ws, ws.shard_pools[si][slot], lo, hi, out)

    # hot: blocked estimate/residual pass over CSR row gathers
    def _sparse_check(
        self,
        ws: SparseWorkspace,
        step: int,
        have_prev: bool,
    ) -> Tuple[float, bool]:
        """One convergence check: estimates into ``prev``, residual out.

        Mirrors the fast kernel's blocked residual scan exactly — same
        tile size, same ``_REL_FLOOR`` guard, and the same early-exit
        semantics: once a tile's residual exceeds epsilon the scan stops
        *comparing* (``worst`` freezes at the fast kernel's break-point
        value, keeping the fine-trigger decision identical) but keeps
        gathering, because ``prev`` must hold this check's complete
        estimates for the next comparison.  Shards are gathered inside
        the row-tile loop (contiguous sub-tiles carved from the flat
        tile buffers) and the over-epsilon comparison runs only after a
        *full* row tile, so ``worst`` takes exactly the unsharded tile
        maxima and the decision sequence is invariant in the shard
        count.  Returns ``(worst, all_below)``; ``all_below`` can only
        be True when ``have_prev`` was.
        """
        n = ws.n
        blk = ws.blk
        prev = ws.prev
        bounds = ws.bounds
        san = self.sanitizer
        eps = self.epsilon
        xslot = (-step) % 3
        wslot = (1 - step) % 3
        xf = ws.xt.ravel()
        wf = ws.wt.ravel()
        nf = ws.num.ravel()
        df = ws.den.ravel()
        worst = 0.0
        all_below = have_prev
        scanning = have_prev
        for lo in range(0, n, blk):
            hi = min(lo + blk, n)
            m = hi - lo
            tile_worst = 0.0
            for si in range(ws.shards):
                c0, c1 = bounds[si], bounds[si + 1]
                pc = c1 - c0
                xt = xf[: m * pc].reshape(m, pc)
                wt = wf[: m * pc].reshape(m, pc)
                self._load_tile(ws, si, xslot, lo, hi, xt)
                self._load_tile(ws, si, wslot, lo, hi, wt)
                np.divide(xt, wt, out=xt)
                if san is not None:
                    san.check_finite("estimates x/w", xt, step=step)
                psub = prev[lo:hi, c0:c1]
                if scanning:
                    num = nf[: m * pc].reshape(m, pc)
                    den = df[: m * pc].reshape(m, pc)
                    np.subtract(xt, psub, out=num)
                    np.abs(num, out=num)
                    np.maximum(psub, _REL_FLOOR, out=den)
                    num /= den
                    tile_worst = max(tile_worst, float(num.max()))
                psub[...] = xt
            if scanning:
                worst = max(worst, tile_worst)
                if worst > eps:
                    all_below = False
                    scanning = False
        return worst, all_below

    def _sparse_estimates(self, ws: SparseWorkspace) -> None:
        """Guarded estimates into ``prev`` (budget-exhaustion path).

        Outside the hot loop: runs once when the step budget runs out
        before W is positive everywhere, so NaN-masking temporaries are
        acceptable here.  Reads the normalized ``[X, W, out]`` slot
        order (the step loop restores it before calling).
        """
        n = ws.n
        blk = ws.blk
        bounds = ws.bounds
        xf = ws.xt.ravel()
        wf = ws.wt.ravel()
        for lo in range(0, n, blk):
            hi = min(lo + blk, n)
            m = hi - lo
            for si in range(ws.shards):
                c0, c1 = bounds[si], bounds[si + 1]
                pc = c1 - c0
                xt = xf[: m * pc].reshape(m, pc)
                wt = wf[: m * pc].reshape(m, pc)
                self._load_tile(ws, si, 0, lo, hi, xt)
                self._load_tile(ws, si, 1, lo, hi, wt)
                with np.errstate(divide="ignore", invalid="ignore"):
                    np.divide(xt, wt, out=xt)
                xt[wt <= 0.0] = np.nan
                ws.prev[lo:hi, c0:c1] = xt

    # -- legacy kernel -----------------------------------------------------

    def _gossip_until_epsilon(
        self, X: np.ndarray, W: np.ndarray, *, raise_on_budget: bool
    ) -> Tuple[np.ndarray, np.ndarray, int, bool]:
        """Reference step loop (``kernel="legacy"``): allocating arithmetic.

        Kept verbatim in spirit — per-step scatter-matrix construction
        and ``0.5*(X + A@X)`` — as the ground truth the fast kernel is
        tested against and benchmarked over.  The estimate pass is
        hoisted behind the convergence guard: it used to run on every
        step even when ``step < min_steps`` or ``W`` still had zero
        entries (where the residual cannot be finite), wasting an
        O(n*p) pass per skipped step.
        """
        n = self.n
        ids = np.arange(n)
        ones = np.ones(n)
        k = self.check_every
        prev = None
        san = self.sanitizer
        x_mass = float(X.sum()) if san is not None else 0.0
        w_mass = float(W.sum()) if san is not None else 0.0
        for step in range(1, self.max_steps + 1):
            targets = self._rng.integers(0, n - 1, size=n)
            targets[targets >= ids] += 1  # uniform over others, never self
            # One gossip step is X <- M X with M = 0.5*(I + A), where
            # A[targets[i], i] = 1 routes i's sent half.  Applying A as a
            # sparse matmul runs at C speed (np.add.at is ~10x slower).
            A = sparse.csr_matrix((ones, (targets, ids)), shape=(n, n))
            X = 0.5 * (X + A @ X)
            W = 0.5 * (W + A @ W)
            if step < self.min_steps or step % k:
                continue
            if san is not None:
                san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
                san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
                san.check_nonnegative("W", W, step=step)
            if not np.all(W > 0):
                continue
            est = self._estimates(X, W)
            if prev is not None:
                # Relative per-step change, scale-free in n (see pushsum).
                resid = np.abs(est - prev) / np.maximum(np.abs(prev), _REL_FLOOR)
                if np.all(np.isfinite(resid)) and float(resid.max()) <= self.epsilon:
                    return X, W, step, True
            prev = est
        if raise_on_budget:
            raise ConvergenceError(
                f"gossip cycle exceeded {self.max_steps} steps (epsilon={self.epsilon})",
                steps=self.max_steps,
            )
        return X, W, self.max_steps, False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SynchronousGossipEngine(n={self.n}, mode={self.mode!r}, "
            f"kernel={self.kernel!r}, epsilon={self.epsilon})"
        )
