"""Synchronous vectorized gossip engine.

Runs one aggregation cycle of Algorithm 2 with all nodes' state held in
NumPy arrays.  The key structural fact it exploits: in Algorithm 2 a
node sends its *whole* halved vector to one partner per step, so every
vector component ``j`` evolves under the **same** random mixing matrix
``M(k)``.  The full per-node state is therefore

    X(k) = M(k) ... M(1) @ X0        with  X0 = diag(v) @ S
    W(k) = M(k) ... M(1) @ I

and one gossip step over all nodes and all components is a single
row-scatter-add — no Python loops.

Two memory modes:

* ``full`` — X and W are dense (n, n); exact per the protocol.  Default
  for n <= 1500 (Table 3's n = 1000 runs here).
* ``probe`` — only ``p`` probe columns of X and W are tracked, (n, p)
  arrays.  Because all columns share the mixing matrix, step counts and
  gossip-error samples measured on the probes are representative; the
  next-cycle vector is then computed exactly (documented substitution —
  used for the Fig. 3 sweeps at n = 4000, where full mode would need
  hundreds of MB).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, ValidationError
from repro.gossip.base import CycleEngine, GossipCycleResult, TrustInput, coerce_csr
from repro.gossip.convergence import average_relative_error
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_vector

__all__ = ["GossipCycleResult", "SynchronousGossipEngine"]

#: above this node count, auto mode switches from full to probe
_FULL_MODE_LIMIT = 1500


class SynchronousGossipEngine(CycleEngine):
    """Vectorized executor of gossiped aggregation cycles.

    Parameters
    ----------
    n:
        Number of peers.
    epsilon:
        Gossip error threshold (Algorithm 1 line 14; Table 2: 1e-4).
    mode:
        ``"full"``, ``"probe"``, or ``"auto"`` (size-based).
    probe_columns:
        Number of probe columns in probe mode.
    max_steps:
        Per-cycle gossip step budget.
    min_steps:
        Steps before the epsilon criterion may fire (>= 2 avoids the
        vacuous all-masses-still-local state).
    rng:
        Partner-choice randomness.
    """

    name = "sync"

    def __init__(
        self,
        n: int,
        *,
        epsilon: float = 1e-4,
        mode: str = "auto",
        probe_columns: int = 64,
        max_steps: int = 5_000,
        min_steps: int = 2,
        rng: SeedLike = None,
    ):
        if n < 2:
            raise ValidationError(f"gossip needs n >= 2 nodes, got {n}")
        if mode not in ("auto", "full", "probe"):
            raise ValidationError(f"unknown mode {mode!r}")
        check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
        if probe_columns < 1:
            raise ValidationError(f"probe_columns must be >= 1, got {probe_columns}")
        if max_steps < 1:
            raise ValidationError(f"max_steps must be >= 1, got {max_steps}")
        self.n = int(n)
        self.epsilon = float(epsilon)
        self.mode = mode if mode != "auto" else ("full" if n <= _FULL_MODE_LIMIT else "probe")
        self.probe_columns = int(min(probe_columns, n))
        self.max_steps = int(max_steps)
        self.min_steps = int(min_steps)
        self._rng = as_generator(rng)
        #: steps used by each cycle run so far (reset via clear_stats)
        self.cycle_steps: list = []

    # -- public API --------------------------------------------------------

    def run_cycle(
        self,
        S: TrustInput,
        v: np.ndarray,
        *,
        raise_on_budget: bool = True,
    ) -> GossipCycleResult:
        """Gossip one aggregation cycle: estimate ``S^T v`` on every node.

        Raises
        ------
        ConvergenceError
            If the epsilon criterion is not met in ``max_steps`` (unless
            ``raise_on_budget=False``, which returns the best effort).
        """
        S_csr = coerce_csr(S, self.n)
        v = check_vector("v", v, size=self.n)
        exact = np.asarray(S_csr.T @ v).ravel()

        if self.mode == "full":
            X0 = sparse.diags(v) @ S_csr  # X0[i, j] = v_i * s_ij
            X = np.asarray(X0.todense(), dtype=np.float64)
            W = np.eye(self.n)
            cols = np.arange(self.n)
        else:
            cols = self._pick_probe_columns(v, exact)
            X0 = sparse.diags(v) @ S_csr
            X = np.asarray(X0[:, cols].todense(), dtype=np.float64)
            W = np.zeros((self.n, cols.size))
            W[cols, np.arange(cols.size)] = 1.0

        X, W, steps, converged = self._gossip_until_epsilon(
            X, W, raise_on_budget=raise_on_budget
        )
        self.cycle_steps.append(steps)

        B = self._estimates(X, W)
        col_means = np.nanmean(np.where(np.isfinite(B), B, np.nan), axis=0)
        disagreement = float(
            np.nanmax(np.nanmax(B, axis=0) - np.nanmin(B, axis=0))
        ) if np.isfinite(B).any() else float("inf")

        if self.mode == "full":
            v_next = col_means
            gossip_error = average_relative_error(v_next, exact)
        else:
            gossip_error = average_relative_error(col_means, exact[cols])
            v_next = exact.copy()

        return GossipCycleResult(
            v_next=v_next,
            exact=exact,
            steps=steps,
            gossip_error=gossip_error,
            converged=converged,
            mode=self.mode,
            node_disagreement=disagreement,
        )

    def clear_stats(self) -> None:
        """Reset the per-cycle step log."""
        self.cycle_steps = []

    # -- internals -----------------------------------------------------------

    def _pick_probe_columns(self, v: np.ndarray, exact: np.ndarray) -> np.ndarray:
        """Random probe columns, always including the heaviest-mass column.

        Including the top column makes the probe error sample cover the
        score that matters most for peer selection.  The top column is
        retained unconditionally: deduplication drops random picks, not
        the guaranteed column (a plain ``np.unique(...)[:p]`` truncation
        would silently discard high indices — including the top).
        """
        p = self.probe_columns
        if p >= self.n:
            return np.arange(self.n)
        top = int(np.argmax(exact))
        rest = self._rng.choice(self.n, size=p, replace=False)
        cols = [top] + [int(c) for c in rest if int(c) != top][: p - 1]
        return np.sort(np.asarray(cols, dtype=np.int64))

    @staticmethod
    def _estimates(X: np.ndarray, W: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(W > 0, X / np.where(W > 0, W, 1.0), np.nan)

    def _gossip_until_epsilon(self, X: np.ndarray, W: np.ndarray, *, raise_on_budget: bool):
        n = self.n
        ids = np.arange(n)
        ones = np.ones(n)
        prev = self._estimates(X, W)
        for step in range(1, self.max_steps + 1):
            targets = self._rng.integers(0, n - 1, size=n)
            targets[targets >= ids] += 1  # uniform over others, never self
            # One gossip step is X <- M X with M = 0.5*(I + A), where
            # A[targets[i], i] = 1 routes i's sent half.  Applying A as a
            # sparse matmul runs at C speed (np.add.at is ~10x slower).
            A = sparse.csr_matrix((ones, (targets, ids)), shape=(n, n))
            X = 0.5 * (X + A @ X)
            W = 0.5 * (W + A @ W)
            est = self._estimates(X, W)
            if step >= self.min_steps and np.all(W > 0):
                # Relative per-step change, scale-free in n (see pushsum).
                resid = np.abs(est - prev) / np.maximum(np.abs(prev), 1e-12)
                if np.all(np.isfinite(resid)) and float(resid.max()) <= self.epsilon:
                    return X, W, step, True
            prev = est
        if raise_on_budget:
            raise ConvergenceError(
                f"gossip cycle exceeded {self.max_steps} steps (epsilon={self.epsilon})",
                steps=self.max_steps,
            )
        return X, W, self.max_steps, False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SynchronousGossipEngine(n={self.n}, mode={self.mode!r}, "
            f"epsilon={self.epsilon})"
        )
