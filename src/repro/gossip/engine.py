"""Synchronous vectorized gossip engine.

Runs one aggregation cycle of Algorithm 2 with all nodes' state held in
NumPy arrays.  The key structural fact it exploits: in Algorithm 2 a
node sends its *whole* halved vector to one partner per step, so every
vector component ``j`` evolves under the **same** random mixing matrix
``M(k)``.  The full per-node state is therefore

    X(k) = M(k) ... M(1) @ X0        with  X0 = diag(v) @ S
    W(k) = M(k) ... M(1) @ I

and one gossip step over all nodes and all components is a single
row-scatter-add — no Python loops.

Two memory modes:

* ``full`` — X and W are dense (n, n); exact per the protocol.  Default
  for n <= 1500 (Table 3's n = 1000 runs here).
* ``probe`` — only ``p`` probe columns of X and W are tracked, (n, p)
  arrays.  Because all columns share the mixing matrix, step counts and
  gossip-error samples measured on the probes are representative; the
  next-cycle vector is then computed exactly (documented substitution —
  used for the Fig. 3 sweeps at n = 4000, where full mode would need
  hundreds of MB).

Three kernels execute the step loop:

* ``fast`` (default) — allocation-free segment-sum over preallocated
  X/W/scratch buffers.  Partner draws are batched (`check_every` steps
  per RNG call), the per-step mixing matrix ``M = 0.5*(I + A)`` is laid
  out directly in CSR form with O(n) integer ops (bincount + stable
  argsort) and applied with scipy's C ``csr_matvecs`` segment-sum into
  a reused scratch buffer, the O(n*p) estimate/residual convergence
  pass runs only every ``check_every`` steps, and X/W stay in CSR form
  for the first few steps until their density crosses
  ``densify_threshold`` (X0 = diag(v)@S inherits the trust matrix's
  sparsity, so early steps are O(nnz) instead of O(n*p)).
* ``sparse`` — the memory-bounded large-n path: X and W stay in CSR
  form for the *entire* cycle, held in three rotating
  :class:`~repro.gossip.memory.CsrPool` buffers (current X, current W,
  SpGEMM output) whose capacity grows geometrically and never per
  step.  Each step is two C-level SpGEMMs (``csr_matmat``) of the
  pooled mixing matrix against the pooled state; the estimate/residual
  pass gathers CSR rows into cache-blocked dense tiles
  (``block_rows``) against a single persistent ``prev`` estimate
  buffer, so the only (n, p) dense array in the cycle is that buffer.
  With probe-mode column selection the working set is (n, p) with
  ``p = probe_columns`` regardless of n — at n = 10^5, p = 64,
  float64 the whole cycle fits ~0.5 GiB; ``dtype="float32"`` halves
  it again for the n = 10^6 tier.
* ``legacy`` — the reference implementation: per-step scatter matrix
  construction and ``0.5*(X + A@X)`` allocation chain.  Kept so the
  contract suite can assert the fast path is protocol-identical and so
  the benchmark trajectory records the speedup.

All kernels consume the identical partner-choice RNG stream (a
Generator fills a ``(k, n)`` block in the same element order as ``k``
successive size-``n`` draws), so with the same seed and ``check_every``
they walk the same mixing-matrix sequence — fast and sparse runs stop
on the same step and agree to accumulation-order rounding.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.analysis.sanitizer import InvariantSanitizer
from repro.errors import ConvergenceError, ValidationError
from repro.gossip.base import CycleEngine, GossipCycleResult, TrustInput, coerce_csr
from repro.gossip.convergence import average_relative_error
from repro.gossip.memory import (
    BACKEND_NAMES,
    BufferBackend,
    CsrPool,
    make_backend,
)
from repro.metrics.telemetry import Stopwatch
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_vector

try:  # the C segment-sum kernel behind scipy's own csr @ dense
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - very old scipy
    _csr_matvecs = None

try:  # the C SpGEMM / row-gather kernels behind scipy's csr @ csr
    from scipy.sparse._sparsetools import csr_matmat as _csr_matmat
    from scipy.sparse._sparsetools import csr_todense as _csr_todense
except ImportError:  # pragma: no cover - very old scipy
    _csr_matmat = None
    _csr_todense = None

__all__ = [
    "GossipCycleResult",
    "SynchronousGossipEngine",
    "Workspace",
    "SparseWorkspace",
]

#: engine dtype names accepted by ``dtype=`` (the buffer precision)
DTYPE_NAMES = ("float64", "float32")

#: above this node count, auto mode switches from full to probe
_FULL_MODE_LIMIT = 1500

#: floor for relative-change denominators (see pushsum._REL_FLOOR)
_REL_FLOOR = 1e-12

#: once a coarse check sees a residual below _FINE_FACTOR * epsilon the
#: fast kernel switches to per-step checks (Algorithm 1's granularity)
_FINE_FACTOR = 8.0


class _TargetStream:
    """Batched partner draws: one ``integers`` call per ``batch`` steps.

    Drawing targets in ``(batch, n)`` blocks amortizes the RNG call
    without changing the consumed stream: a Generator fills a C-ordered
    block in the same element order as ``batch`` successive size-``n``
    draws, so the per-step target sequence is invariant in the batch
    size (and identical to the legacy kernel's per-step draws).
    """

    __slots__ = ("_rng", "_n", "_batch", "_ids", "_block", "_row")

    def __init__(self, rng: np.random.Generator, n: int, batch: int) -> None:
        self._rng = rng
        self._n = n
        self._batch = max(1, int(batch))
        self._ids = np.arange(n)
        self._block: np.ndarray | None = None
        self._row = 0

    def next(self) -> np.ndarray:
        if self._block is None or self._row >= self._block.shape[0]:
            block = self._rng.integers(0, self._n - 1, size=(self._batch, self._n))
            block[block >= self._ids[None, :]] += 1  # uniform over others, never self
            self._block = block
            self._row = 0
        row = self._block[self._row]
        self._row += 1
        return row


class Workspace:
    """Preallocated dense-phase buffers of the fast kernel, one shape.

    Everything the dense step loop writes — the X/W state pair, their
    scratch twins, the estimate/prev pair, the blocked residual tiles,
    and the constant ``half``/``indptr``/``ids`` integer arrays — lives
    here, keyed on the ``(n, p)`` shape it serves.  The engine keeps one
    instance and reuses it across cycles of a run *and* across runs of
    the same shape, so a multi-cycle ``GossipTrust.run`` pays the ~10
    array allocations once instead of once per cycle (at n = 1000 full
    mode that is ~64 MiB of fresh pages per cycle avoided).

    Reuse is sound because every buffer is write-before-read within a
    cycle: X/W are filled by ``toarray(out=...)``, ``est`` by a full
    ``np.divide``, ``prev`` only read after ``have_prev`` is set within
    the same cycle, and the residual tiles are overwritten per chunk.
    Call :meth:`invalidate` (or
    :meth:`SynchronousGossipEngine.invalidate_workspace`) to drop the
    buffers, e.g. to release memory between differently-shaped sweeps.
    """

    __slots__ = (
        "n", "p", "dtype", "backend", "X", "W", "sX", "sW", "est", "prev",
        "num", "den", "blk", "half", "indptr", "ids", "valid",
    )

    def __init__(
        self,
        n: int,
        p: int,
        dtype: "np.dtype | type" = np.float64,
        backend: Optional[BufferBackend] = None,
    ) -> None:
        self.n = int(n)
        self.p = int(p)
        self.dtype = np.dtype(dtype)
        self.backend = backend if backend is not None else make_backend(None)
        be = self.backend
        self.X = be.empty((n, p), self.dtype, "X")
        self.W = be.empty((n, p), self.dtype, "W")
        self.sX = be.empty((n, p), self.dtype, "sX")
        self.sW = be.empty((n, p), self.dtype, "sW")
        self.est = be.empty((n, p), self.dtype, "est")
        self.prev = be.empty((n, p), self.dtype, "prev")
        self.blk = max(1, min(n, (1 << 17) // max(p, 1)))  # ~1 MiB residual chunks
        self.num = be.empty((self.blk, p), self.dtype, "num")
        self.den = be.empty((self.blk, p), self.dtype, "den")
        self.half = be.empty(n, self.dtype, "half")
        self.half.fill(0.5)
        self.indptr = be.empty(n + 1, np.int32, "indptr")
        self.indptr[0] = 0
        self.ids = be.empty(n, np.int64, "ids")
        self.ids[:] = np.arange(n)
        self.valid = True

    def matches(self, n: int, p: int, dtype: "np.dtype | type" = np.float64) -> bool:
        """Whether these buffers serve shape/(dtype) ``(n, p)`` and are live."""
        return self.valid and self.n == n and self.p == p and self.dtype == np.dtype(dtype)

    def invalidate(self) -> None:
        """Mark the buffers unusable; the next cycle allocates fresh ones.

        With a non-private backend the buffer references are dropped and
        the backend closed (shared-memory segments unlink, spill files
        delete) — segment handles cannot close while ndarray views are
        still exported, so the views go first.
        """
        self.valid = False
        if self.backend.name == "private":
            return
        for name in (
            "X", "W", "sX", "sW", "est", "prev",
            "num", "den", "half", "indptr", "ids",
        ):
            setattr(self, name, None)
        self.backend.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Workspace(n={self.n}, p={self.p}, valid={self.valid})"


class SparseWorkspace:
    """Pooled CSR buffers of the sparse kernel, one ``(n, p, dtype)`` shape.

    Three rotating :class:`~repro.gossip.memory.CsrPool` instances hold
    the CSR state (current X, current W, SpGEMM output — the output
    pool is always the one whose contents just died, so two pools'
    worth of state plus one scratch covers the whole cycle).  The
    mixing matrix ``M = 0.5*(I + A)`` has exactly ``2n`` entries every
    step, so its ``m_indptr``/``m_indices``/``m_data`` arrays are
    fixed-size and ``m_data`` is the constant 0.5 vector, filled once.

    The only dense (n, p) array is ``prev``, the persistent previous
    estimate of the convergence check; the check itself runs over
    ``blk``-row tiles (``xt``/``wt``/``num``/``den``, plus the ``bp``
    offset-adjusted indptr) gathered from the pools, so peak memory is
    ``3 * pool + (n, p) + O(blk * p)`` regardless of how long the cycle
    runs.  ``block_rows`` overrides the tile height (0 = the fast
    kernel's ~1 MiB cache-block formula).
    """

    __slots__ = (
        "n", "p", "dtype", "backend", "block_rows", "pools",
        "m_indptr", "m_indices", "m_data", "prev",
        "xt", "wt", "num", "den", "bp", "blk", "ids", "valid",
    )

    def __init__(
        self,
        n: int,
        p: int,
        dtype: "np.dtype | type" = np.float64,
        backend: Optional[BufferBackend] = None,
        block_rows: int = 0,
    ) -> None:
        self.n = int(n)
        self.p = int(p)
        self.dtype = np.dtype(dtype)
        self.backend = backend if backend is not None else make_backend(None)
        self.block_rows = int(block_rows)
        be = self.backend
        # Pools start at O(n) capacity (X0 inherits S's sparsity) and
        # double geometrically toward the n*p occupancy ceiling.
        cap0 = min(n * p, max(p, 2 * n))
        self.pools = [
            CsrPool(n, p, cap0, self.dtype, be, label=lbl)
            for lbl in ("X", "W", "out")
        ]
        self.m_indptr = be.empty(n + 1, np.int32, "m-indptr")
        self.m_indptr[0] = 0
        self.m_indices = be.empty(2 * n, np.int32, "m-indices")
        self.m_data = be.empty(2 * n, self.dtype, "m-data")
        self.m_data.fill(0.5)
        self.prev = be.empty((n, p), self.dtype, "prev")
        blk = self.block_rows if self.block_rows > 0 else (
            max(1, (1 << 17) // max(p, 1))  # fast kernel's ~1 MiB chunks
        )
        self.blk = max(1, min(n, blk))
        self.xt = be.empty((self.blk, p), self.dtype, "xt")
        self.wt = be.empty((self.blk, p), self.dtype, "wt")
        self.num = be.empty((self.blk, p), self.dtype, "num")
        self.den = be.empty((self.blk, p), self.dtype, "den")
        self.bp = be.empty(self.blk + 1, np.int32, "bp")
        self.ids = be.empty(n, np.int64, "ids")
        self.ids[:] = np.arange(n)
        self.valid = True

    def matches(
        self, n: int, p: int, dtype: "np.dtype | type", block_rows: int
    ) -> bool:
        """Whether these pools serve ``(n, p, dtype, block_rows)`` and are live."""
        return (
            self.valid
            and self.n == n
            and self.p == p
            and self.dtype == np.dtype(dtype)
            and self.block_rows == int(block_rows)
        )

    def invalidate(self) -> None:
        """Drop the pools; non-private backends release their resources."""
        self.valid = False
        if self.backend.name == "private":
            return
        self.pools = []
        for name in (
            "m_indptr", "m_indices", "m_data", "prev",
            "xt", "wt", "num", "den", "bp", "ids",
        ):
            setattr(self, name, None)
        self.backend.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SparseWorkspace(n={self.n}, p={self.p}, "
            f"dtype={self.dtype.name}, valid={self.valid})"
        )


class SynchronousGossipEngine(CycleEngine):
    """Vectorized executor of gossiped aggregation cycles.

    Parameters
    ----------
    n:
        Number of peers.
    epsilon:
        Gossip error threshold (Algorithm 1 line 14; Table 2: 1e-4).
    mode:
        ``"full"``, ``"probe"``, or ``"auto"`` (size-based).
    probe_columns:
        Number of probe columns in probe mode.
    max_steps:
        Per-cycle gossip step budget.
    min_steps:
        Steps before the epsilon criterion may fire (>= 2 avoids the
        vacuous all-masses-still-local state).
    check_every:
        Convergence-check cadence: the O(n*p) estimate/residual pass
        runs every ``check_every`` steps instead of every step.  The
        residual then measures the estimate change across ``check_every``
        steps — a *stricter* reading of the epsilon criterion — so the
        result is invariant modulo step-count granularity while the
        per-step cost drops by nearly the full estimate-pass share.
        The fast kernel additionally drops to per-step checks once a
        residual lands within ``_FINE_FACTOR`` of epsilon, so the
        finish line is resolved at Algorithm 1's per-step granularity
        and the cadence never overshoots the stop step by more than
        the coarse phase.
    densify_threshold:
        Keep X/W in CSR form until either's density crosses this
        fraction; ``0`` densifies immediately.  Only the fast kernel
        uses it — convergence cannot fire while W is sparse (the
        criterion needs ``W > 0`` everywhere), so the sparse phase is
        pure O(nnz) mixing.
    kernel:
        ``"fast"`` (in-place scatter-add kernel), ``"sparse"`` (the
        memory-bounded pooled-SpGEMM path for large n), or ``"legacy"``
        (the reference per-step matrix construction).
        Protocol-identical; see the module docstring.
    dtype:
        Buffer precision, ``"float64"`` (default) or ``"float32"``.
        float32 halves every workspace buffer; because each step only
        halves and adds positive masses the per-step rounding is
        ~machine epsilon, so a converged cycle's scores agree with
        float64 to roughly ``steps * eps32`` relative (~1e-5 at typical
        step counts — measured in the parity tests).  With an armed
        sanitizer the conservation tolerance is widened to 1e-4 for the
        same reason.  The legacy kernel is float64-only.
    block_rows:
        Tile height of the sparse kernel's blocked estimate/residual
        gather pass.  0 (default) uses the fast kernel's ~1 MiB
        cache-block formula ``min(n, 2^17 / p)`` — which the fast
        kernel itself always uses, so residual scans of the two kernels
        walk identical tiles.
    workspace_backend:
        Where workspace buffers physically live: ``"private"``
        (default, ordinary heap), ``"shared"``
        (:mod:`multiprocessing.shared_memory` segments another process
        can attach), or ``"memmap"`` (file-backed maps the OS can
        evict).  A preconstructed
        :class:`~repro.gossip.memory.BufferBackend` is also accepted.
        Non-private backends require ``reuse_workspace=True`` (the
        engine must own the buffers to release them).
    reuse_workspace:
        Keep the kernel buffers (:class:`Workspace` /
        :class:`SparseWorkspace`) alive between ``run_cycle`` calls of
        the same shape instead of reallocating them per cycle (default
        True; results are identical either way — the buffers are
        write-before-read).  ``False`` restores the per-cycle-allocation
        behaviour, kept as the benchmark baseline.
    rng:
        Partner-choice randomness.
    """

    name = "sync"

    def __init__(
        self,
        n: int,
        *,
        epsilon: float = 1e-4,
        mode: str = "auto",
        probe_columns: int = 64,
        max_steps: int = 5_000,
        min_steps: int = 2,
        check_every: int = 8,
        densify_threshold: float = 0.25,
        kernel: str = "fast",
        dtype: str = "float64",
        block_rows: int = 0,
        workspace_backend: "str | BufferBackend" = "private",
        reuse_workspace: bool = True,
        rng: SeedLike = None,
    ) -> None:
        if n < 2:
            raise ValidationError(f"gossip needs n >= 2 nodes, got {n}")
        if mode not in ("auto", "full", "probe"):
            raise ValidationError(f"unknown mode {mode!r}")
        if kernel not in ("fast", "legacy", "sparse"):
            raise ValidationError(f"unknown kernel {kernel!r}")
        if dtype not in DTYPE_NAMES:
            raise ValidationError(
                f"unknown dtype {dtype!r}; known: {', '.join(DTYPE_NAMES)}"
            )
        if kernel == "legacy" and dtype != "float64":
            raise ValidationError(
                "kernel='legacy' is the float64 reference implementation; "
                "use kernel='fast' or 'sparse' for float32 buffers"
            )
        if kernel == "sparse" and (_csr_matmat is None or _csr_todense is None):
            raise ValidationError(  # pragma: no cover - very old scipy
                "kernel='sparse' needs scipy's csr_matmat/csr_todense kernels"
            )
        check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
        if probe_columns < 1:
            raise ValidationError(f"probe_columns must be >= 1, got {probe_columns}")
        if max_steps < 1:
            raise ValidationError(f"max_steps must be >= 1, got {max_steps}")
        if check_every < 1:
            raise ValidationError(f"check_every must be >= 1, got {check_every}")
        if block_rows < 0:
            raise ValidationError(f"block_rows must be >= 0, got {block_rows}")
        check_in_range("densify_threshold", densify_threshold, low=0.0, high=1.0)
        backend_name = (
            workspace_backend
            if isinstance(workspace_backend, str)
            else workspace_backend.name
        )
        if backend_name not in BACKEND_NAMES:
            raise ValidationError(
                f"unknown workspace backend {backend_name!r}; "
                f"known: {', '.join(BACKEND_NAMES)}"
            )
        if backend_name != "private" and not reuse_workspace:
            raise ValidationError(
                "a shared/memmap workspace backend requires "
                "reuse_workspace=True (the engine must own the buffers "
                "to release them)"
            )
        self.n = int(n)
        self.epsilon = float(epsilon)
        if mode != "auto":
            self.mode = mode
        else:
            # The sparse kernel exists to keep the working set (n, p);
            # auto therefore always probes it.  Dense kernels stay full
            # up to the historical size limit.
            self.mode = (
                "probe"
                if kernel == "sparse" or n > _FULL_MODE_LIMIT
                else "full"
            )
        self.probe_columns = int(min(probe_columns, n))
        self.max_steps = int(max_steps)
        self.min_steps = int(min_steps)
        self.check_every = int(check_every)
        self.densify_threshold = float(densify_threshold)
        self.kernel = kernel
        self.dtype = dtype
        self._dtype = np.dtype(dtype)
        self.block_rows = int(block_rows)
        self.workspace_backend = workspace_backend
        self.reuse_workspace = bool(reuse_workspace)
        self._rng = as_generator(rng)
        self._workspace: Workspace | None = None
        self._sparse_workspace: SparseWorkspace | None = None
        #: steps used by each cycle run so far (reset via clear_stats)
        self.cycle_steps: list = []

    # -- public API --------------------------------------------------------

    def run_cycle(
        self,
        S: TrustInput,
        v: np.ndarray,
        *,
        raise_on_budget: bool = True,
    ) -> GossipCycleResult:
        """Gossip one aggregation cycle: estimate ``S^T v`` on every node.

        Raises
        ------
        ConvergenceError
            If the epsilon criterion is not met in ``max_steps`` (unless
            ``raise_on_budget=False``, which returns the best effort).
        """
        watch = Stopwatch()
        phases: Dict[str, float] = {}
        S_csr = coerce_csr(S, self.n)
        v = check_vector("v", v, size=self.n)
        phases["setup"] = watch.restart()
        exact = np.asarray(S_csr.T @ v).ravel()
        phases["oracle"] = watch.restart()
        if self.sanitizer is not None:
            self.sanitizer.begin_cycle(self.name)

        X0 = (sparse.diags(v) @ S_csr).tocsr()  # X0[i, j] = v_i * s_ij
        if self.mode == "full":
            cols = np.arange(self.n)
            W0 = sparse.identity(self.n, format="csr", dtype=np.float64)
        else:
            cols = self._pick_probe_columns(v, exact)
            X0 = sparse.csr_matrix(X0[:, cols])
            W0 = sparse.csr_matrix(
                (np.ones(cols.size), (cols, np.arange(cols.size))),
                shape=(self.n, cols.size),
            )
        if self._dtype != np.float64:
            X0 = X0.astype(self._dtype)
            W0 = W0.astype(self._dtype)
        phases["setup"] += watch.restart()

        B = None
        if self.kernel == "legacy":
            X, W, steps, converged = self._gossip_until_epsilon(
                np.asarray(X0.todense(), dtype=np.float64),
                np.asarray(W0.todense(), dtype=np.float64),
                raise_on_budget=raise_on_budget,
            )
        elif self.kernel == "sparse":
            steps, converged, B = self._gossip_sparse(
                X0, W0, raise_on_budget=raise_on_budget, phases=phases
            )
        else:
            X, W, steps, converged, B = self._gossip_fast(
                X0, W0, raise_on_budget=raise_on_budget, phases=phases
            )
        # The dispatch interval covers workspace acquisition too; the
        # kernels report that share separately as the "alloc" phase.
        phases["kernel"] = max(0.0, watch.restart() - phases.get("alloc", 0.0))
        self.cycle_steps.append(steps)

        if B is None:
            B = self._estimates(X, W)
        col_means = np.nanmean(np.where(np.isfinite(B), B, np.nan), axis=0)
        disagreement = float(
            np.nanmax(np.nanmax(B, axis=0) - np.nanmin(B, axis=0))
        ) if np.isfinite(B).any() else float("inf")

        if self.mode == "full":
            v_next = np.asarray(col_means, dtype=np.float64)
            gossip_error = average_relative_error(v_next, exact)
        else:
            gossip_error = average_relative_error(col_means, exact[cols])
            v_next = exact.copy()
        phases["estimate"] = watch.restart()

        return GossipCycleResult(
            v_next=v_next,
            exact=exact,
            steps=steps,
            gossip_error=gossip_error,
            converged=converged,
            mode=self.mode,
            node_disagreement=disagreement,
            phase_times=phases,
        )

    def clear_stats(self) -> None:
        """Reset the per-cycle step log."""
        self.cycle_steps = []

    @property
    def workspace(self) -> "Workspace | None":
        """The live :class:`Workspace`, if a fast cycle has run."""
        return self._workspace

    @property
    def sparse_workspace(self) -> "SparseWorkspace | None":
        """The live :class:`SparseWorkspace`, if a sparse cycle has run."""
        return self._sparse_workspace

    def invalidate_workspace(self) -> None:
        """Drop the cached kernel buffers (next cycle allocates fresh)."""
        if self._workspace is not None:
            self._workspace.invalidate()
        self._workspace = None
        if self._sparse_workspace is not None:
            self._sparse_workspace.invalidate()
        self._sparse_workspace = None

    def arm_sanitizer(
        self, sanitizer: Optional[InvariantSanitizer] = None
    ) -> InvariantSanitizer:
        """Arm invariant checks; float32 buffers widen the tolerance.

        float32 state accumulates O(steps * eps32) relative
        conservation drift from pure rounding, so the default 1e-9
        tolerance would flag correct runs; a fresh sanitizer is then
        built at 1e-4 instead.  An explicitly passed sanitizer is used
        as-is.
        """
        if sanitizer is None and self._dtype != np.float64:
            sanitizer = InvariantSanitizer(rel_tol=1e-4)
        return super().arm_sanitizer(sanitizer)

    def _acquire_workspace(self, p: int) -> Workspace:
        """The reusable buffer set for shape ``(n, p)``.

        With ``reuse_workspace=False`` (or after a shape change /
        explicit invalidation) a fresh :class:`Workspace` is built —
        the per-cycle-allocation baseline the benchmarks compare
        against.
        """
        ws = self._workspace
        if (
            not self.reuse_workspace
            or ws is None
            or not ws.matches(self.n, p, self._dtype)
        ):
            if ws is not None:
                ws.invalidate()
            ws = Workspace(
                self.n, p, self._dtype, make_backend(self.workspace_backend)
            )
            self._workspace = ws if self.reuse_workspace else None
        return ws

    def _acquire_sparse_workspace(self, p: int) -> SparseWorkspace:
        """The reusable CSR pool set for shape ``(n, p)`` (sparse kernel)."""
        ws = self._sparse_workspace
        if (
            not self.reuse_workspace
            or ws is None
            or not ws.matches(self.n, p, self._dtype, self.block_rows)
        ):
            if ws is not None:
                ws.invalidate()
            ws = SparseWorkspace(
                self.n,
                p,
                self._dtype,
                make_backend(self.workspace_backend),
                self.block_rows,
            )
            self._sparse_workspace = ws if self.reuse_workspace else None
        return ws

    # -- internals -----------------------------------------------------------

    def _pick_probe_columns(self, v: np.ndarray, exact: np.ndarray) -> np.ndarray:
        """Random probe columns, always including the heaviest-mass column.

        Including the top column makes the probe error sample cover the
        score that matters most for peer selection.  The top column is
        retained unconditionally: deduplication drops random picks, not
        the guaranteed column (a plain ``np.unique(...)[:p]`` truncation
        would silently discard high indices — including the top).

        The draw comes from a *spawned* child generator, not the
        partner-choice stream: full and probe runs with the same seed
        therefore see identical mixing-matrix sequences, which is what
        makes probe-mode step counts directly comparable to full mode.
        """
        p = self.probe_columns
        if p >= self.n:
            return np.arange(self.n)
        top = int(np.argmax(exact))
        col_rng = self._rng.spawn(1)[0]
        rest = col_rng.choice(self.n, size=p, replace=False)
        cols = [top, *[int(c) for c in rest if int(c) != top][: p - 1]]
        return np.sort(np.asarray(cols, dtype=np.int64))

    @staticmethod
    def _estimates(X: np.ndarray, W: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(W > 0, X / np.where(W > 0, W, 1.0), np.nan)

    # -- fast kernel -------------------------------------------------------

    @staticmethod
    def _mixing_matrix(
        targets: np.ndarray,
        n: int,
        ids: np.ndarray,
        dtype: "np.dtype | type" = np.float64,
    ) -> sparse.csr_matrix:
        """Assemble ``M = 0.5 * (I + A)`` directly in CSR form.

        Row ``r`` stores the sender columns ``{i : targets[i] == r}`` in
        ascending order followed by the diagonal entry ``r``.  Built
        from a bincount + stable argsort — O(n) integer work, no
        COO -> CSR conversion, no duplicate summing.  Used for the
        sparse warm-start phase, where one spmm per step beats
        densifying early.
        """
        counts = np.bincount(targets, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(counts + 1, out=indptr[1:])
        order = np.argsort(targets, kind="stable")
        sorted_t = targets[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_t[1:] != sorted_t[:-1]))
        )
        seg_origin = np.repeat(starts, np.diff(np.append(starts, n)))
        indices = np.empty(2 * n, dtype=np.int32)
        indices[indptr[sorted_t] + (ids - seg_origin)] = order
        indices[indptr[1:] - 1] = ids
        data = np.full(2 * n, 0.5, dtype=dtype)
        return sparse.csr_matrix((data, indices, indptr), shape=(n, n))

    def _gossip_fast(
        self,
        Xs: sparse.csr_matrix,
        Ws: sparse.csr_matrix,
        *,
        raise_on_budget: bool,
        phases: Optional[Dict[str, float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int, bool, Optional[np.ndarray]]:
        """Step loop over preallocated buffers — no per-step allocations.

        One dense step is two C-level segment-sums: the half-step
        matrix ``M = 0.5*(I + A)`` is laid out directly in CSR form
        (O(n) integer ops) and applied with scipy's ``csr_matvecs``
        kernel into reused X/W scratch buffers, then the buffers swap.
        The O(n*p) estimate/residual pass runs every ``check_every``
        steps — dropping to every step once a residual comes within
        ``_FINE_FACTOR`` of epsilon — and never before ``W`` is
        positive everywhere (before that the residual cannot be
        finite).  All dense buffers come from the persistent
        :class:`Workspace`, so consecutive cycles of the same shape
        allocate nothing here.
        """
        n = self.n
        p = Xs.shape[1]
        k = self.check_every
        alloc_watch = Stopwatch()
        ws = self._acquire_workspace(p)
        if phases is not None:
            phases["alloc"] = phases.get("alloc", 0.0) + alloc_watch.elapsed()
        stream = _TargetStream(self._rng, n, k)
        ids = ws.ids
        step = 0
        converged = False
        san = self.sanitizer
        # Push-sum conservation references: column sums of X and W are
        # invariant under M = 0.5*(I + A), so the totals are too.
        x_mass = float(Xs.sum()) if san is not None else 0.0
        w_mass = float(Ws.sum()) if san is not None else 0.0

        # Sparse warm-start: X0 inherits S's sparsity and each step at
        # most doubles nnz, so only ~log2(1/density0) steps run here.
        # No convergence checks — the criterion needs W > 0 everywhere,
        # impossible while W is stored sparse.
        thr = self.densify_threshold * float(n * p)
        while step < self.max_steps and Xs.nnz < thr and Ws.nnz < thr:
            M = self._mixing_matrix(stream.next(), n, ids, Xs.dtype)
            Xs = M @ Xs
            Ws = M @ Ws
            step += 1

        X, W, sX, sW = ws.X, ws.W, ws.sX, ws.sW
        Xs.toarray(out=X)
        Ws.toarray(out=W)
        if san is not None and step:
            # The sparse warm start mixed without checks; validate its
            # output before the dense loop takes over.
            san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
            san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
            san.check_nonnegative("W", W, step=step)
        half = ws.half
        indptr = ws.indptr
        est = ws.est
        prev = ws.prev
        blk = ws.blk
        num = ws.num
        den = ws.den
        have_prev = False
        w_allpos = False
        fine = False  # per-step checks once a residual nears epsilon
        fine_at = _FINE_FACTOR * self.epsilon

        # hot: dense step loop — every buffer comes from the Workspace
        while step < self.max_steps:
            step += 1
            targets = stream.next()
            # One gossip step for X and W: each scratch buffer starts as
            # the halved kept share, then scipy's C segment-sum kernel
            # adds each receiver's inbound halves (senders in ascending
            # order — A laid out in CSR by a stable argsort).
            np.cumsum(np.bincount(targets, minlength=n), out=indptr[1:])
            senders = np.argsort(targets, kind="stable").astype(np.int32)
            np.multiply(X, 0.5, out=sX)
            np.multiply(W, 0.5, out=sW)
            if _csr_matvecs is not None:
                _csr_matvecs(n, n, p, indptr, senders, half, X.ravel(), sX.ravel())
                _csr_matvecs(n, n, p, indptr, senders, half, W.ravel(), sW.ravel())
            else:  # pragma: no cover - very old scipy
                A = sparse.csr_matrix((half, senders, indptr), shape=(n, n))
                sX += A @ X
                sW += A @ W
            X, sX = sX, X
            W, sW = sW, W

            if step < self.min_steps or (not fine and step % k):
                continue
            if san is not None:
                # Checked step: conservation + non-negativity.  Scalar
                # reductions only — the cadence keeps this off the
                # per-step path.
                san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
                san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
                san.check_nonnegative("W", W, step=step)
            if not w_allpos:
                # W only gains mass, so once all-positive it stays so
                # and this O(n*p) scan stops running.
                w_allpos = bool(W.min() > 0.0)
                if not w_allpos:
                    continue
            np.divide(X, W, out=est)
            if san is not None:
                san.check_finite("estimates x/w", est, step=step)
            if have_prev:
                # Relative change across the last check window, scanned
                # in chunks: far from convergence the first chunk
                # already exceeds epsilon, so the full O(n*p) residual
                # pass only runs near the finish line.
                converged = True
                worst = 0.0
                for lo in range(0, n, blk):
                    hi = min(lo + blk, n)
                    e = est[lo:hi]
                    q = prev[lo:hi]
                    m = hi - lo
                    np.subtract(e, q, out=num[:m])
                    np.abs(num[:m], out=num[:m])
                    np.maximum(q, _REL_FLOOR, out=den[:m])
                    num[:m] /= den[:m]
                    worst = max(worst, float(num[:m].max()))
                    if worst > self.epsilon:
                        converged = False
                        break
                if converged:
                    break
                # Close to the finish line: resolve the stop step at
                # Algorithm 1's per-step granularity instead of paying
                # up to check_every - 1 extra O(n*p) gossip steps.
                fine = fine or worst <= fine_at
            est, prev = prev, est  # prev now holds this check's estimates
            have_prev = True

        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"gossip cycle exceeded {self.max_steps} steps (epsilon={self.epsilon})",
                steps=self.max_steps,
            )
        # At convergence W > 0 everywhere and est holds the estimates of
        # the final state, so run_cycle can skip its estimate pass.
        return X, W, step, converged, (est if converged else None)

    # -- sparse kernel -----------------------------------------------------

    def _gossip_sparse(
        self,
        Xs: sparse.csr_matrix,
        Ws: sparse.csr_matrix,
        *,
        raise_on_budget: bool,
        phases: Optional[Dict[str, float]] = None,
    ) -> Tuple[int, bool, np.ndarray]:
        """Step loop with X and W in CSR form for the entire cycle.

        One step is two C-level SpGEMMs (``csr_matmat``) of the pooled
        mixing matrix against the pooled state, writing into whichever
        of the three rotating :class:`~repro.gossip.memory.CsrPool`
        buffers just died — capacity grows geometrically toward the
        ``n * p`` occupancy ceiling and never per step (the SpGEMM
        output bound is the closed form ``min(2 * nnz, n * p)``, so no
        symbolic pass runs).  The estimate/residual check walks the
        same cadence, block tiling and early-exit/fine-trigger logic as
        the fast kernel (see :meth:`_sparse_check`), so both kernels
        consume identical RNG streams and stop on the same step.

        Returns ``(steps, converged, B)`` where ``B`` is the persistent
        (n, p) estimate buffer — the only dense (n, p) array the cycle
        touches.
        """
        n = self.n
        p = Xs.shape[1]
        k = self.check_every
        alloc_watch = Stopwatch()
        ws = self._acquire_sparse_workspace(p)
        if phases is not None:
            phases["alloc"] = phases.get("alloc", 0.0) + alloc_watch.elapsed()
        X, W, free = ws.pools
        X.load(Xs)
        W.load(Ws)
        stream = _TargetStream(self._rng, n, k)
        san = self.sanitizer
        # Push-sum conservation references (column sums are invariant
        # under M = 0.5*(I + A), so the totals are too).
        x_mass = X.sum() if san is not None else 0.0
        w_mass = W.sum() if san is not None else 0.0
        full = n * p
        step = 0
        converged = False
        have_prev = False
        w_allpos = False
        fine = False  # per-step checks once a residual nears epsilon
        fine_at = _FINE_FACTOR * self.epsilon

        # hot: sparse step loop — two pooled SpGEMMs, no per-step allocations
        while step < self.max_steps:
            step += 1
            self._fill_mixing(stream.next(), n, ws)
            self._spgemm_step(ws, X, free)
            X, free = free, X
            self._spgemm_step(ws, W, free)
            W, free = free, W

            if step < self.min_steps or (not fine and step % k):
                continue
            if san is not None:
                san.check_mass("sum(X)", X.sum(), x_mass, step=step)
                san.check_mass("sum(W)", W.sum(), w_mass, step=step)
                san.check_nonnegative("W", W.data[: W.nnz], step=step)
            if not w_allpos:
                # W's pattern only grows (M carries a full diagonal) and
                # its values stay positive, so full occupancy is sticky
                # — the check degrades to one int comparison afterwards.
                w_allpos = W.nnz == full and W.min() > 0.0
                if not w_allpos:
                    continue
            worst, all_below = self._sparse_check(ws, X, W, have_prev, step)
            if have_prev:
                if all_below:
                    converged = True
                    break
                # Close to the finish line: resolve the stop step at
                # Algorithm 1's per-step granularity (see _gossip_fast).
                fine = fine or worst <= fine_at
            have_prev = True

        ws.pools = [X, W, free]
        if not converged:
            if raise_on_budget:
                raise ConvergenceError(
                    f"gossip cycle exceeded {self.max_steps} steps "
                    f"(epsilon={self.epsilon})",
                    steps=self.max_steps,
                )
            self._sparse_estimates(ws, X, W)
        return step, converged, ws.prev

    # hot: per-step CSR layout of M = 0.5*(I + A) into the mixing pools
    def _fill_mixing(self, targets: np.ndarray, n: int, ws: SparseWorkspace) -> None:
        """Lay out the step's mixing matrix into the workspace pools.

        Same O(n) bincount + stable-argsort layout as
        :meth:`_mixing_matrix` — senders ascending, diagonal last — but
        writing into the preallocated ``m_indptr``/``m_indices`` arrays
        (``m_data`` is the constant 0.5 vector, filled once; M always
        has exactly ``2n`` entries).
        """
        ids = ws.ids
        np.cumsum(np.bincount(targets, minlength=n) + 1, out=ws.m_indptr[1:])
        order = np.argsort(targets, kind="stable")
        sorted_t = targets[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_t[1:] != sorted_t[:-1]))
        )
        seg_origin = np.repeat(starts, np.diff(np.append(starts, n)))
        ws.m_indices[ws.m_indptr[sorted_t] + (ids - seg_origin)] = order
        ws.m_indices[ws.m_indptr[1:] - 1] = ids

    # hot: one pooled SpGEMM — dst := M @ src, no symbolic pass
    def _spgemm_step(self, ws: SparseWorkspace, src: CsrPool, dst: CsrPool) -> None:
        """Multiply the pooled mixing matrix into ``src``, writing ``dst``.

        ``dst`` is grown (geometrically, contents discarded — it holds
        dead state) to the closed-form output bound
        ``min(2 * nnz(src), n * p)``: every output row merges the rows
        of at most ``I + A``'s two entries per column, so total output
        nnz is at most twice the input's, and a row never exceeds ``p``
        columns.  Skipping scipy's exact ``csr_matmat_maxnnz`` symbolic
        pass halves the per-step SpGEMM cost.  Output columns arrive
        unsorted (SMMP insertion order) — everything downstream gathers
        through ``csr_todense``, which scatters by index and does not
        care.
        """
        dst.ensure(2 * src.nnz)
        _csr_matmat(
            ws.n, ws.p,
            ws.m_indptr, ws.m_indices, ws.m_data,
            src.indptr, src.indices, src.data,
            dst.indptr, dst.indices, dst.data,
        )
        dst.nnz = int(dst.indptr[ws.n])

    # hot: CSR row-range gather into a dense workspace tile
    def _gather_tile(
        self, ws: SparseWorkspace, pool: CsrPool, lo: int, hi: int, out: np.ndarray
    ) -> None:
        """Densify pool rows ``[lo, hi)`` into ``out[: hi - lo]``.

        ``bp`` holds the offset-adjusted indptr slice; ``csr_todense``
        scatter-adds the row entries into the zeroed tile at C speed.
        """
        m = hi - lo
        np.subtract(pool.indptr[lo : hi + 1], pool.indptr[lo], out=ws.bp[: m + 1])
        start = int(pool.indptr[lo])
        end = int(pool.indptr[hi])
        out[:m].fill(0.0)
        _csr_todense(
            m, ws.p, ws.bp[: m + 1],
            pool.indices[start:end], pool.data[start:end],
            out[:m].ravel(),
        )

    # hot: blocked estimate/residual pass over CSR row gathers
    def _sparse_check(
        self,
        ws: SparseWorkspace,
        X: CsrPool,
        W: CsrPool,
        have_prev: bool,
        step: int,
    ) -> Tuple[float, bool]:
        """One convergence check: estimates into ``prev``, residual out.

        Mirrors the fast kernel's blocked residual scan exactly — same
        tile size, same ``_REL_FLOOR`` guard, and the same early-exit
        semantics: once a tile's residual exceeds epsilon the scan stops
        *comparing* (``worst`` freezes at the fast kernel's break-point
        value, keeping the fine-trigger decision identical) but keeps
        gathering, because ``prev`` must hold this check's complete
        estimates for the next comparison.  Returns
        ``(worst, all_below)``; ``all_below`` can only be True when
        ``have_prev`` was.
        """
        n = ws.n
        blk = ws.blk
        prev = ws.prev
        san = self.sanitizer
        eps = self.epsilon
        worst = 0.0
        all_below = have_prev
        scanning = have_prev
        for lo in range(0, n, blk):
            hi = min(lo + blk, n)
            m = hi - lo
            self._gather_tile(ws, X, lo, hi, ws.xt)
            self._gather_tile(ws, W, lo, hi, ws.wt)
            np.divide(ws.xt[:m], ws.wt[:m], out=ws.xt[:m])
            if san is not None:
                san.check_finite("estimates x/w", ws.xt[:m], step=step)
            if scanning:
                np.subtract(ws.xt[:m], prev[lo:hi], out=ws.num[:m])
                np.abs(ws.num[:m], out=ws.num[:m])
                np.maximum(prev[lo:hi], _REL_FLOOR, out=ws.den[:m])
                ws.num[:m] /= ws.den[:m]
                worst = max(worst, float(ws.num[:m].max()))
                if worst > eps:
                    all_below = False
                    scanning = False
            prev[lo:hi] = ws.xt[:m]
        return worst, all_below

    def _sparse_estimates(self, ws: SparseWorkspace, X: CsrPool, W: CsrPool) -> None:
        """Guarded estimates into ``prev`` (budget-exhaustion path).

        Outside the hot loop: runs once when the step budget runs out
        before W is positive everywhere, so NaN-masking temporaries are
        acceptable here.
        """
        n = ws.n
        blk = ws.blk
        for lo in range(0, n, blk):
            hi = min(lo + blk, n)
            m = hi - lo
            self._gather_tile(ws, X, lo, hi, ws.xt)
            self._gather_tile(ws, W, lo, hi, ws.wt)
            xt = ws.xt[:m]
            wt = ws.wt[:m]
            with np.errstate(divide="ignore", invalid="ignore"):
                np.divide(xt, wt, out=xt)
            xt[wt <= 0.0] = np.nan
            ws.prev[lo:hi] = xt

    # -- legacy kernel -----------------------------------------------------

    def _gossip_until_epsilon(
        self, X: np.ndarray, W: np.ndarray, *, raise_on_budget: bool
    ) -> Tuple[np.ndarray, np.ndarray, int, bool]:
        """Reference step loop (``kernel="legacy"``): allocating arithmetic.

        Kept verbatim in spirit — per-step scatter-matrix construction
        and ``0.5*(X + A@X)`` — as the ground truth the fast kernel is
        tested against and benchmarked over.  The estimate pass is
        hoisted behind the convergence guard: it used to run on every
        step even when ``step < min_steps`` or ``W`` still had zero
        entries (where the residual cannot be finite), wasting an
        O(n*p) pass per skipped step.
        """
        n = self.n
        ids = np.arange(n)
        ones = np.ones(n)
        k = self.check_every
        prev = None
        san = self.sanitizer
        x_mass = float(X.sum()) if san is not None else 0.0
        w_mass = float(W.sum()) if san is not None else 0.0
        for step in range(1, self.max_steps + 1):
            targets = self._rng.integers(0, n - 1, size=n)
            targets[targets >= ids] += 1  # uniform over others, never self
            # One gossip step is X <- M X with M = 0.5*(I + A), where
            # A[targets[i], i] = 1 routes i's sent half.  Applying A as a
            # sparse matmul runs at C speed (np.add.at is ~10x slower).
            A = sparse.csr_matrix((ones, (targets, ids)), shape=(n, n))
            X = 0.5 * (X + A @ X)
            W = 0.5 * (W + A @ W)
            if step < self.min_steps or step % k:
                continue
            if san is not None:
                san.check_mass("sum(X)", float(X.sum()), x_mass, step=step)
                san.check_mass("sum(W)", float(W.sum()), w_mass, step=step)
                san.check_nonnegative("W", W, step=step)
            if not np.all(W > 0):
                continue
            est = self._estimates(X, W)
            if prev is not None:
                # Relative per-step change, scale-free in n (see pushsum).
                resid = np.abs(est - prev) / np.maximum(np.abs(prev), _REL_FLOOR)
                if np.all(np.isfinite(resid)) and float(resid.max()) <= self.epsilon:
                    return X, W, step, True
            prev = est
        if raise_on_budget:
            raise ConvergenceError(
                f"gossip cycle exceeded {self.max_steps} steps (epsilon={self.epsilon})",
                steps=self.max_steps,
            )
        return X, W, self.max_steps, False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SynchronousGossipEngine(n={self.n}, mode={self.mode!r}, "
            f"kernel={self.kernel!r}, epsilon={self.epsilon})"
        )
