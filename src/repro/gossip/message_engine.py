"""Message-level gossip engine on the discrete-event simulator.

Executes Algorithm 2 with *real messages*: per gossip round every live
node halves its triplet vector, keeps one half, and sends the other to a
random live partner through the :class:`~repro.network.transport.Transport`
— which may delay, lose, or (on failed links) drop it.  This engine
exists for fidelity and fault-injection:

* it validates the vectorized engine (same protocol, same convergence
  targets, agreement tested on matched instances);
* it is the vehicle for the robustness claims — message loss, link
  failure, and churn perturb the gossiped vector here, and the
  experiments measure by how much.

Rounds are paced at ``round_interval`` simulated time units, chosen
longer than the worst-case message latency so a round's sends are
delivered before the next round's halving (the paper's synchronous-step
abstraction).  Mass carried by lost messages simply vanishes; because
both ``x`` and ``w`` shares vanish together, the surviving ratio
estimates stay near the true value — the reason the protocol "does not
require error recovery mechanisms" (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.gossip.base import (
    CycleEngine,
    GossipCycleResult,
    TrustInput,
    exact_aggregate,
    local_rows,
)
from repro.gossip.convergence import average_relative_error
from repro.gossip.partnering import (
    GlobalSampler,
    NeighborSampler,
    PartnerStrategy,
)
from repro.gossip.vector import EstimatesWorkspace, TripletVector
from repro.network.overlay import Overlay
from repro.network.transport import Message, Transport
from repro.sim.engine import Simulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range

__all__ = ["MessageGossipResult", "MessageGossipEngine"]


@dataclass
class MessageGossipResult(GossipCycleResult):
    """A :class:`GossipCycleResult` with per-node message-level detail.

    On top of the uniform cycle fields (``v_next`` is the per-component
    mean of live nodes' estimates; ``steps`` counts gossip rounds;
    ``messages_sent``/``messages_dropped``/``mass_lost_fraction`` hold
    the transport telemetry) it exposes:
    """

    #: per-node estimate matrix (live nodes only, rows aligned with live ids)
    node_estimates: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    #: live node ids corresponding to node_estimates rows
    live_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))


def _disagreement(node_estimates: np.ndarray) -> float:
    """Max over components of the live-node estimate spread."""
    known = np.isfinite(node_estimates)
    if node_estimates.size == 0 or not known.any():
        return float("inf")
    finite = np.where(known, node_estimates, np.nan)
    # Only components some node knows — all-nan columns carry no
    # disagreement signal (and nanmax would warn on them).
    finite = finite[:, known.any(axis=0)]
    with np.errstate(invalid="ignore"):
        spread = np.nanmax(finite, axis=0) - np.nanmin(finite, axis=0)
    return float(np.nanmax(spread))


def _batched_converged(
    cur_ids: Tuple[int, ...],
    cur: np.ndarray,
    prev_ids: Tuple[int, ...],
    prev: np.ndarray,
    epsilon: float,
) -> bool:
    """Epsilon criterion over the whole live population in one pass.

    ``cur``/``prev`` are ``(len(ids), n)`` estimate matrices from
    :meth:`~repro.gossip.vector.TripletVector.estimates_matrix`.  The
    semantics match the historical per-node loop: every current node
    must have been sampled last round, its finite pattern must be
    unchanged (newly-heard-of peers mean mass is still spreading), it
    must have at least one finite estimate, and the relative change over
    finite entries must not exceed ``epsilon`` anywhere.
    """
    if len(cur_ids) == 0:
        return True
    if cur_ids == prev_ids:
        aligned = prev
    else:
        pos = {node: i for i, node in enumerate(prev_ids)}
        idx = [pos.get(node, -1) for node in cur_ids]
        if min(idx) < 0:
            return False
        aligned = prev[idx]
    finite = np.isfinite(cur)
    if (finite != np.isfinite(aligned)).any():
        return False
    if not finite.any(axis=1).all():
        return False
    with np.errstate(invalid="ignore"):
        num = np.abs(np.where(finite, cur - aligned, 0.0))
        den = np.maximum(np.abs(np.where(finite, aligned, 1.0)), 1e-12)
        worst = float((num / den).max())
    return worst <= epsilon


class MessageGossipEngine(CycleEngine):
    """Runs gossiped aggregation cycles as timed messages on the DES.

    Parameters
    ----------
    sim, transport, overlay:
        Simulation substrate.  The engine registers itself as the
        transport handler for every node id in the overlay.
    epsilon:
        Gossip convergence threshold per node (Algorithm 1 line 14).
    round_interval:
        Simulated time between gossip rounds; must exceed the transport's
        max latency (1.5x mean) or construction fails.
    max_rounds:
        Per-cycle round budget.
    neighbors_only:
        Restrict partner choice to overlay neighbors (the paper permits
        either; global choice is the default analyzed by Kempe et al.).
        Shorthand for ``partnering=NeighborSampler()``.
    partnering:
        A :class:`~repro.gossip.partnering.PartnerStrategy` deciding who
        each node gossips with (and maintaining membership views over
        this transport).  Default: the global sampler, bit-identical to
        the engine's historical behaviour.
    mass_restore_budget:
        Self-healing threshold: when the measured ``mass_lost_fraction``
        exceeds this value at a round boundary, the engine restores the
        cycle's mass budget (``None`` disables the guard).
    mass_restore_action:
        ``"renormalize"`` — uniformly rescale every surviving vector by
        ``initial/current`` mass (ratio-preserving, estimates untouched);
        ``"restart"`` — re-initialize all live nodes' vectors and redo
        the cycle from the current round.  Either way the one-sided
        conservation bound stays intact: restoration never pushes held
        mass above the cycle's initial budget.
    """

    name = "message"

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        overlay: Overlay,
        *,
        epsilon: float = 1e-4,
        round_interval: float = 2.0,
        max_rounds: int = 500,
        min_rounds: int = 2,
        neighbors_only: bool = False,
        partnering: Optional[PartnerStrategy] = None,
        mass_restore_budget: Optional[float] = None,
        mass_restore_action: str = "renormalize",
        rng: SeedLike = None,
    ) -> None:
        check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
        if round_interval <= 1.5 * transport.latency:
            raise ValidationError(
                f"round_interval={round_interval} must exceed max message latency "
                f"{1.5 * transport.latency} or rounds overlap"
            )
        if max_rounds < 1:
            raise ValidationError(f"max_rounds must be >= 1, got {max_rounds}")
        if mass_restore_budget is not None:
            check_in_range(
                "mass_restore_budget", mass_restore_budget,
                low=0.0, high=1.0, low_inclusive=False, high_inclusive=False,
            )
        if mass_restore_action not in ("renormalize", "restart"):
            raise ValidationError(
                f"mass_restore_action must be 'renormalize' or 'restart', "
                f"got {mass_restore_action!r}"
            )
        self.sim = sim
        self.transport = transport
        self.overlay = overlay
        self.epsilon = float(epsilon)
        self.round_interval = float(round_interval)
        self.max_rounds = int(max_rounds)
        self.min_rounds = int(min_rounds)
        self.neighbors_only = bool(neighbors_only)
        if partnering is None:
            partnering = NeighborSampler() if neighbors_only else GlobalSampler()
        self.partnering = partnering
        self.partnering.bind(sim, transport, overlay)
        self.mass_restore_budget = (
            float(mass_restore_budget) if mass_restore_budget is not None else None
        )
        self.mass_restore_action = mass_restore_action
        #: gossip halves delivered to departed/uninitialized nodes (their
        #: mass vanished without a transport drop being counted)
        self.discarded = 0
        self._rng = as_generator(rng)
        self._states: Dict[int, TripletVector] = {}
        #: per-node TripletVectors recycled across cycles (reset, not
        #: reallocated — their arrays survive the whole engine lifetime)
        self._pool: Dict[int, TripletVector] = {}
        #: reusable buffers for the per-round estimate matrices
        self._est_ws = EstimatesWorkspace()
        self.cycle_steps = []
        for node in range(overlay.n):
            transport.register(node, self._on_message)

    # -- protocol --------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        if msg.kind != "gossip":
            # membership/control traffic belongs to the partner strategy
            self.partnering.on_message(msg)
            return
        state = self._states.get(msg.dst)
        if state is None or not self.overlay.is_alive(msg.dst):
            # Arrived after departure (or for a node that never joined
            # the cycle — partial views go stale): the mass vanishes
            # without a transport drop, so count it here or the exact
            # conservation check would fire on a lossy history.
            self.discarded += 1
            return
        state.merge(msg.payload)

    def _gossip_round(self) -> None:
        """Every live node halves its vector and ships one half."""
        live = self.overlay.alive_nodes().tolist()
        for node in live:
            state = self._states.get(node)
            if state is None:
                continue
            partner = self.partnering.partner(node)
            if partner is None:
                continue
            sent = state.halve()
            self.transport.send(
                node, partner, sent, kind="gossip", size=sent.payload_size()
            )

    def run_cycle(
        self,
        S: Union[TrustInput, Sequence[Mapping[int, float]]],
        v_prior: np.ndarray,
        *,
        raise_on_budget: bool = False,
    ) -> MessageGossipResult:
        """Execute one full aggregation cycle and return its outcome.

        Parameters
        ----------
        S:
            The trust matrix — a :class:`~repro.trust.matrix.TrustMatrix`
            (its cached sparse-row view is reused across cycles), a raw
            array/sparse matrix, or a per-node sequence of sparse rows
            ``{j: s_ij}``.
        v_prior:
            Previous-cycle reputation vector ``V(t-1)`` (dense, length n).
        raise_on_budget:
            Raise :class:`ConvergenceError` if the round budget is hit;
            by default the best-effort result is returned (fault
            injection legitimately slows convergence).
        """
        n = self.overlay.n
        rows = local_rows(S, n)
        v_prior = np.asarray(v_prior, dtype=np.float64)
        if v_prior.shape != (n,):
            raise ValidationError(f"v_prior must have shape ({n},)")

        exact = exact_aggregate(rows, v_prior, n)
        prior_map = {i: float(v_prior[i]) for i in range(n)}
        san = self.sanitizer
        if san is not None:
            san.begin_cycle(self.name)
        self._states = {}
        initial_mass = 0.0
        for node in self.overlay.alive_nodes().tolist():
            # Recycle the node's vector from the pool: reset() zeroes
            # and refills in place, so cycle N+1 reuses cycle N's arrays
            # instead of allocating 2 length-n vectors per node.
            tv = self._pool.get(node)
            if tv is None:
                tv = self._pool[node] = TripletVector(n)
            tv.reset(node, rows[node], prior_map, n=n)
            self._states[node] = tv
            mx, mw = tv.mass()
            initial_mass += mx + mw
        initial_live = frozenset(self._states)

        sent_before = self.transport.sent
        dropped_before = self.transport.drop_count
        discarded_before = self.discarded
        prev_ids: Tuple[int, ...] = ()
        prev_mat: Optional[np.ndarray] = None
        steps = 0
        converged = False
        restorations = 0
        self.partnering.start()
        for round_no in range(1, self.max_rounds + 1):
            self._gossip_round()
            self.sim.run(until=self.sim.now + self.round_interval)
            steps = round_no
            cur_ids = tuple(
                node
                for node in self.overlay.alive_nodes().tolist()
                if node in self._states
            )
            # Rounds are paced past the max latency, so no mass is in
            # flight here: the live nodes' triplet stores hold the whole
            # surviving (x, w) population.
            mass_now = 0.0
            for node in cur_ids:
                tv = self._states[node]
                if san is not None:
                    tv.check_invariants(san, owner=node, step=round_no)
                mx, mw = tv.mass()
                mass_now += mx + mw
            if san is not None:
                if (
                    self.transport.drop_count == dropped_before
                    and self.discarded == discarded_before
                    and frozenset(cur_ids) == initial_live
                ):
                    # Lossless round history: push-sum conserves exactly.
                    san.check_mass(
                        "total x+w mass", mass_now, initial_mass, step=round_no
                    )
                else:
                    # Drops and departures may destroy mass, but gossip
                    # must never create it.
                    san.check_mass_bounded(
                        "total x+w mass", mass_now, initial_mass, step=round_no
                    )
            if (
                self.mass_restore_budget is not None
                and initial_mass > 0.0
                and mass_now < (1.0 - self.mass_restore_budget) * initial_mass
            ):
                restorations += 1
                if self.mass_restore_action == "renormalize" and mass_now > 0.0:
                    # Ratio-preserving: estimates are untouched, only the
                    # mass budget is restored, so convergence tracking
                    # carries straight through.  Departed nodes' stale
                    # vectors are dropped first — their mass is written
                    # off now, so a later rejoin cannot resurrect it on
                    # top of the restored budget (which would create
                    # mass and break the one-sided bound).
                    self._states = {node: self._states[node] for node in cur_ids}
                    factor = initial_mass / mass_now
                    for node in cur_ids:
                        self._states[node].scale(factor)
                else:
                    # Restart: live nodes re-enter the cycle from fresh
                    # vectors; the rounds already spent stay counted.
                    self._states = {}
                    initial_mass = 0.0
                    for node in self.overlay.alive_nodes().tolist():
                        tv = self._pool.get(node)
                        if tv is None:
                            tv = self._pool[node] = TripletVector(n)
                        tv.reset(node, rows[node], prior_map, n=n)
                        self._states[node] = tv
                        mx, mw = tv.mass()
                        initial_mass += mx + mw
                    initial_live = frozenset(self._states)
                    dropped_before = self.transport.drop_count
                    discarded_before = self.discarded
                    prev_ids, prev_mat = (), None
                    continue
            # Workspace-backed: the matrix lands in one of two
            # alternating reusable slots, so prev_mat (the other slot)
            # stays intact for the convergence comparison below.
            cur_mat = TripletVector.estimates_matrix(
                [self._states[node] for node in cur_ids], n,
                workspace=self._est_ws,
            )
            if prev_mat is not None and round_no >= self.min_rounds:
                if _batched_converged(cur_ids, cur_mat, prev_ids, prev_mat, self.epsilon):
                    converged = True
                    break
            prev_ids, prev_mat = cur_ids, cur_mat
        self.partnering.stop()
        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"message gossip exceeded {self.max_rounds} rounds",
                steps=self.max_rounds,
            )

        live = self.overlay.alive_nodes()
        live_states = [self._states[node] for node in live.tolist() if node in self._states]
        node_estimates = (
            TripletVector.estimates_matrix(live_states, n)
            if live_states
            else np.empty((0, n))
        )
        with np.errstate(invalid="ignore"):
            finite = np.where(np.isfinite(node_estimates), node_estimates, np.nan)
            v_next = np.nanmean(finite, axis=0) if finite.size else np.zeros(n)
        v_next = np.nan_to_num(v_next, nan=0.0, posinf=0.0)

        final_mass = 0.0
        for node in live.tolist():
            if node in self._states:
                mx, mw = self._states[node].mass()
                final_mass += mx + mw
        lost = 0.0 if initial_mass == 0 else max(0.0, 1.0 - final_mass / initial_mass)

        self.cycle_steps.append(steps)
        return MessageGossipResult(
            v_next=v_next,
            exact=exact,
            steps=steps,
            converged=converged,
            mode=self.name,
            node_disagreement=_disagreement(node_estimates),
            messages_sent=self.transport.sent - sent_before,
            messages_dropped=self.transport.drop_count - dropped_before,
            gossip_error=average_relative_error(v_next, exact),
            mass_lost_fraction=lost,
            mass_restorations=restorations,
            node_estimates=node_estimates,
            live_nodes=live,
        )

    def finalize(self, *, bracket_bits: Optional[int] = None) -> Dict[int, object]:
        """Algorithm 2 line 22: replace each triplet with its ``<v_j, j>`` pair.

        After a converged cycle, every live node materializes its final
        per-peer score estimates.  Returns, per live node id, either a
        plain ``{peer id -> score}`` dict (``bracket_bits=None``) or a
        :class:`~repro.storage.reputation_store.BloomReputationStore`
        holding the quantized scores — the paper's "efficient reputation
        storage with Bloom filters" applied at the point the protocol
        produces the vector.

        Non-finite estimates (peers whose mass never reached this node)
        are stored as zero: the node simply knows nothing about them.
        """
        n = self.overlay.n
        out: Dict[int, object] = {}
        for node in self.overlay.alive_nodes().tolist():
            state = self._states.get(node)
            if state is None:
                continue
            estimates = state.estimates_array(n)
            scores = np.where(np.isfinite(estimates), estimates, 0.0)
            scores = np.clip(scores, 0.0, None)
            if bracket_bits is None:
                out[node] = {
                    j: float(scores[j]) for j in range(n) if scores[j] > 0.0
                }
            else:
                from repro.storage.reputation_store import BloomReputationStore

                store = BloomReputationStore(bracket_bits=bracket_bits)
                store.build(scores)
                out[node] = store
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MessageGossipEngine(n={self.overlay.n}, epsilon={self.epsilon}, "
            f"round_interval={self.round_interval})"
        )
