"""The one engine contract every gossip executor implements.

The paper's architecture (Fig. 1(b)) is a single aggregation loop
driving an *interchangeable* gossip executor.  This module is that
interchange point:

* :class:`GossipCycleResult` — the uniform outcome of one aggregation
  cycle, whichever engine produced it.  Besides the protocol outputs
  (``v_next``, ``exact``, ``steps``) it carries per-cycle telemetry
  (messages sent/dropped, mass lost) so the orchestration layer can
  report cost uniformly.
* :class:`CycleEngine` — the abstract base every engine subclasses:
  ``run_cycle(S, v) -> GossipCycleResult`` where ``S`` is a
  :class:`~repro.trust.matrix.TrustMatrix` (raw arrays and sparse
  matrices are also coerced, for tests and ad-hoc use).
* :func:`coerce_csr` / :func:`local_rows` — the shared input coercions,
  so every engine accepts the same spectrum of matrix forms.

Engines register themselves with :mod:`repro.gossip.factory`; the
orchestration layer (:class:`~repro.core.gossiptrust.GossipTrust`), the
experiments, and the CLI construct them exclusively through
:func:`~repro.gossip.factory.make_engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from repro.analysis.sanitizer import InvariantSanitizer
from repro.errors import ValidationError
from repro.trust.matrix import TrustMatrix

__all__ = [
    "GossipCycleResult",
    "CycleEngine",
    "TrustInput",
    "coerce_csr",
    "local_rows",
    "exact_aggregate",
]

#: anything an engine accepts as the trust matrix ``S``
TrustInput = Union[TrustMatrix, sparse.spmatrix, np.ndarray]


@dataclass
class GossipCycleResult:
    """Outcome of one gossiped aggregation cycle — any engine.

    Attributes
    ----------
    v_next:
        The cycle's output reputation vector.
    exact:
        The exact ``S^T v`` for the same cycle (error reference).
    steps:
        Gossip steps (or rounds) until the engine's termination
        criterion fired.
    gossip_error:
        Average relative error of gossiped vs exact scores.
    converged:
        Whether the criterion was met within the budget.
    mode:
        Engine-specific execution mode (``"full"``, ``"probe"``,
        ``"message"``, ``"async"``, ``"structured"``).
    node_disagreement:
        Max over sampled components of (max - min) per-node estimate at
        termination — how far nodes are from exact consensus.  ``nan``
        when the engine does not sample per-node state.
    messages_sent:
        Point-to-point messages sent during the cycle (0 for engines
        that do not model messages).
    messages_dropped:
        Messages lost to the transport during the cycle.
    mass_lost_fraction:
        Fraction of the (x, w) push-sum mass lost to drops/departures.
    mass_restorations:
        Times the engine's mass-restoration guard fired during the
        cycle (renormalize or restart; 0 when the guard is off or the
        loss budget was never crossed).
    phase_times:
        Wall-clock seconds per cycle phase (``setup``, ``oracle``,
        ``alloc``, ``kernel``, ``estimate``) for engines that break
        their cycle down; empty for engines that do not.
    """

    v_next: np.ndarray
    exact: np.ndarray
    steps: int
    gossip_error: float
    converged: bool
    mode: str
    node_disagreement: float = float("nan")
    messages_sent: int = 0
    messages_dropped: int = 0
    mass_lost_fraction: float = 0.0
    mass_restorations: int = 0
    phase_times: Dict[str, float] = field(default_factory=dict)


class CycleEngine(ABC):
    """Abstract base of every gossip-cycle executor.

    Subclasses implement :meth:`run_cycle` and set :attr:`name` (the
    registry identifier).  They are expected to append each cycle's
    step count to :attr:`cycle_steps` so step accounting is uniform.
    """

    #: registry name (``"sync"``, ``"message"``, ``"async"``, ``"structured"``)
    name: ClassVar[str] = ""

    #: per-cycle step log, appended by every ``run_cycle`` call
    cycle_steps: List[int]

    #: armed runtime invariant checker, or None (the default: no checks)
    sanitizer: Optional[InvariantSanitizer] = None

    @abstractmethod
    def run_cycle(self, S: TrustInput, v: np.ndarray) -> GossipCycleResult:
        """Estimate ``S^T v`` for one aggregation cycle."""

    def arm_sanitizer(
        self, sanitizer: Optional[InvariantSanitizer] = None
    ) -> InvariantSanitizer:
        """Arm runtime invariant checks on this engine.

        Every engine then validates the push-sum conservation laws at
        its convergence-check cadence (see
        :mod:`repro.analysis.sanitizer`) and raises
        :class:`~repro.errors.InvariantViolation` on any breach.  Pass a
        preconfigured :class:`InvariantSanitizer` to share one checker
        (and its counters) across engines; by default a fresh one is
        built.  Returns the armed instance so callers can inspect its
        ``checks``/``cycle`` counters afterwards.
        """
        if sanitizer is None:
            sanitizer = InvariantSanitizer()
        self.sanitizer = sanitizer
        return sanitizer

    def disarm_sanitizer(self) -> None:
        """Remove the armed sanitizer; the engine stops checking."""
        self.sanitizer = None

    def clear_stats(self) -> None:
        """Reset the per-cycle step log (and any engine counters)."""
        self.cycle_steps = []


def coerce_csr(S: TrustInput, n: int) -> sparse.csr_matrix:
    """Coerce any accepted matrix form to an (n, n) CSR matrix."""
    if isinstance(S, TrustMatrix):
        mat = S.sparse()
    elif sparse.issparse(S):
        mat = S.tocsr()
    else:
        mat = sparse.csr_matrix(np.asarray(S, dtype=np.float64))
    if mat.shape != (n, n):
        raise ValidationError(f"matrix shape {mat.shape} does not match engine n={n}")
    return mat


def exact_aggregate(
    S: Union[TrustInput, Sequence[Mapping[int, float]]],
    v: np.ndarray,
    n: int,
) -> np.ndarray:
    """Exact one-cycle aggregation ``S^T @ v`` as a sparse matvec.

    The oracle every engine measures its gossip error against.  A
    :class:`TrustMatrix` serves its cached transpose; matrix forms go
    through :func:`coerce_csr`; a sequence of per-node row mappings is
    assembled once via :func:`~repro.trust.matrix.rows_to_csr` (the
    message engines' input form — previously an O(nnz) Python loop).
    """
    v = np.asarray(v, dtype=np.float64)
    if isinstance(S, TrustMatrix):
        return np.asarray(S.aggregate(v)).ravel()
    if sparse.issparse(S) or isinstance(S, np.ndarray):
        return np.asarray(coerce_csr(S, n).T @ v).ravel()
    from repro.trust.matrix import rows_to_csr

    return np.asarray(rows_to_csr(S, n).T @ v).ravel()


def local_rows(
    S: Union[TrustInput, Sequence[Mapping[int, float]]], n: int
) -> Sequence[Mapping[int, float]]:
    """Per-node sparse rows ``{j: s_ij}`` from any accepted matrix form.

    A :class:`TrustMatrix` serves its cached row view (computed once per
    matrix instance — see :meth:`TrustMatrix.sparse_rows`); raw arrays
    and sparse matrices are converted on the fly; a sequence of mappings
    (the message engines' historical input form) passes through after a
    length check.
    """
    if isinstance(S, TrustMatrix):
        if S.n != n:
            raise ValidationError(f"matrix n={S.n} does not match engine n={n}")
        return S.sparse_rows()
    if sparse.issparse(S) or isinstance(S, np.ndarray):
        csr = coerce_csr(S, n)
        rows: List[Dict[int, float]] = []
        for i in range(n):
            start, end = csr.indptr[i], csr.indptr[i + 1]
            rows.append(
                {
                    int(j): float(val)
                    for j, val in zip(csr.indices[start:end], csr.data[start:end])
                }
            )
        return rows
    rows_seq = list(S)
    if len(rows_seq) != n:
        raise ValidationError(f"need one local row per node: {len(rows_seq)} != {n}")
    return rows_seq
