"""Worker-side executor of sharded sparse gossip steps.

The sparse kernel's column shards are independent by construction: the
per-step mixing matrix ``M = 0.5*(I + A)`` acts on *rows*, so stepping
a column shard needs no data from any other shard.  This module is the
process-parallel half of that design.  The parent engine allocates the
per-shard :class:`~repro.gossip.memory.CsrPool` triples on a
``"shared"`` or ``"memmap"`` workspace backend, publishes the backend's
manifest to a ``ProcessPoolExecutor`` initializer
(:func:`init_worker`), and each worker process *attaches* every pool
array by reference — no n-sized state is pickled, copied, or rebuilt
per task.  Per check window the parent writes the window's partner
draws into the shared ``targets`` buffer and submits one
:func:`advance_shard` task per shard; no two concurrent tasks ever
touch the same shard, so the pools need no locking.

Pool rotation is by arithmetic, not shared mutable state: after ``s``
completed steps shard state lives at slot ``(-s) % 3`` (X),
``(1 - s) % 3`` (W) and ``(2 - s) % 3`` (free scratch), so a worker
resuming at ``start_step`` knows exactly which arrays to read and
write.  Workers do not track ``nnz`` — parallel-mode pools are
preallocated at the full ``n * p_shard`` occupancy ceiling (growth
would allocate process-private arrays invisible to the manifest) and
``csr_matmat`` reads its extents from ``indptr``; the parent refreshes
the live ``nnz`` counters from ``indptr[n]`` after each window.

:func:`fill_mixing` is also the *serial* kernel's mixing-matrix layout
(the engine delegates to it), so serial and worker stepping run
byte-identical code over the same RNG-derived targets.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.analysis.sanitizer import ShardOwnershipGuard
from repro.gossip.memory import attach_array

try:  # the C SpGEMM kernel behind scipy's csr @ csr
    from scipy.sparse._sparsetools import csr_matmat as _csr_matmat
except ImportError:  # pragma: no cover - very old scipy
    _csr_matmat = None

__all__ = ["fill_mixing", "workspace_spec", "init_worker", "advance_shard"]

#: CSR arrays of one pool as seen by a worker: (indptr, indices, data)
PoolArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: per-process attached state, set once by :func:`init_worker`
_CTX: Dict[str, Any] = {}

_POOL_PARTS = ("indptr", "indices", "data")


# hot: per-step CSR layout of M = 0.5*(I + A) — shared by engine and workers
def fill_mixing(
    targets: np.ndarray,
    ids: np.ndarray,
    m_indptr: np.ndarray,
    m_indices: np.ndarray,
) -> None:
    """Lay out one step's mixing matrix into preallocated CSR arrays.

    Row ``r`` stores the sender columns ``{i : targets[i] == r}`` in
    ascending order followed by the diagonal entry ``r`` — an O(n)
    bincount + stable-argsort layout (no COO -> CSR conversion, no
    duplicate summing).  ``M`` always has exactly ``2n`` entries and its
    values are the constant 0.5 vector, so only ``m_indptr`` and
    ``m_indices`` are written here.
    """
    n = targets.size
    np.cumsum(np.bincount(targets, minlength=n) + 1, out=m_indptr[1:])
    order = np.argsort(targets, kind="stable")
    sorted_t = targets[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_t[1:] != sorted_t[:-1]))
    )
    seg_origin = np.repeat(starts, np.diff(np.append(starts, n)))
    m_indices[m_indptr[sorted_t] + (ids - seg_origin)] = order
    m_indices[m_indptr[1:] - 1] = ids


def workspace_spec(ws: Any) -> Dict[str, Any]:
    """The picklable attach recipe of a sharded sparse workspace.

    Resolves every pool array (plus the shared ``targets`` buffer)
    through the backend's manifest so :func:`init_worker` can map the
    same physical pages from another process.  ``ws`` is a
    :class:`~repro.gossip.engine.SparseWorkspace` (typed loosely to
    keep this module import-light for worker processes).
    """
    manifest = ws.backend.manifest()
    pools: List[List[Dict[str, Any]]] = []
    for triple in ws.shard_pools:
        pools.append(
            [{part: manifest[f"{pool.label}-{part}"] for part in _POOL_PARTS}
             for pool in triple]
        )
    spec = {
        "backend": ws.backend.name,
        "n": ws.n,
        "dtype": ws.dtype.str,
        "shard_cols": [triple[0].cols for triple in ws.shard_pools],
        "pools": pools,
        "targets": manifest["targets"],
    }
    if getattr(ws, "guard", None) is not None:
        # REPRO_SANITIZE=1: ship the shadow-ownership epoch map so the
        # worker-side guard observes the same cells as the parent's.
        spec["ownership"] = manifest["ownership"]
    return spec


def init_worker(spec: Dict[str, Any]) -> None:
    """Executor initializer: attach every shard's pools by manifest.

    Runs once per worker process.  Attaches the three CSR pools of
    *every* shard (tasks pick their shard by index) and the shared
    partner-draw buffer, and builds the only process-private state a
    worker needs: one ``2n``-entry mixing-matrix scratch set.  Keeper
    objects are retained for the process lifetime so the mapped
    segments stay valid.
    """
    backend = spec["backend"]
    n = int(spec["n"])
    dt = np.dtype(spec["dtype"])
    keepers: List[object] = []

    def _get(entry: Tuple[str, Tuple[int, ...], str]) -> np.ndarray:
        arr, keeper = attach_array(backend, entry)
        keepers.append(keeper)
        return arr

    shards: List[List[PoolArrays]] = []
    for pool_entries in spec["pools"]:
        shards.append(
            [(_get(ent["indptr"]), _get(ent["indices"]), _get(ent["data"]))
             for ent in pool_entries]
        )
    targets = _get(spec["targets"])
    guard = (
        ShardOwnershipGuard(_get(spec["ownership"]))
        if spec.get("ownership") is not None
        else None
    )
    m_indptr = np.zeros(n + 1, dtype=np.int32)
    m_data = np.empty(2 * n, dtype=dt)
    m_data.fill(0.5)
    _CTX.clear()
    _CTX.update(
        n=n,
        shards=shards,
        shard_cols=[int(c) for c in spec["shard_cols"]],
        targets=targets,
        keepers=keepers,
        guard=guard,
        ids=np.arange(n),
        m_indptr=m_indptr,
        m_indices=np.empty(2 * n, dtype=np.int32),
        m_data=m_data,
    )


# hot: worker shard step loop — two attached-pool SpGEMMs per step
def advance_shard(
    shard: int,
    start_step: int,
    window: int,
    perm: Tuple[int, int, int] = (0, 1, 2),
    ticket: int = 0,
) -> int:
    """Step one shard through ``window`` gossip steps; returns ``shard``.

    For each step ``s`` the worker lays the mixing matrix out from the
    shared ``targets`` row, then runs the two SpGEMMs of the rotation:
    new X into the free slot, new W into the slot X just vacated.  All
    six CSR arrays live in the attached (shared) pools, so the parent
    sees the results without any transfer.  ``perm`` maps the parent's
    logical slot indices onto the attach-order pool list — the parent
    re-sorts its pool triples to [X, W, out] between cycles, while a
    worker's attached view keeps creation order for its whole lifetime.

    Under ``REPRO_SANITIZE=1`` the parent passes the window's ownership
    ``ticket`` and the task claims its shard's shadow-ownership cells
    before touching the pools — an overlapping dispatch raises
    :class:`~repro.errors.InvariantViolation` instead of racing.
    """
    ctx = _CTX
    guard: "ShardOwnershipGuard | None" = ctx.get("guard")
    if guard is not None and ticket:
        guard.claim(shard, ticket, step=start_step)
    n: int = ctx["n"]
    cols: int = ctx["shard_cols"][shard]
    pools: List[PoolArrays] = ctx["shards"][shard]
    ids = ctx["ids"]
    targets = ctx["targets"]
    m_indptr = ctx["m_indptr"]
    m_indices = ctx["m_indices"]
    m_data = ctx["m_data"]
    for t in range(window):
        s = start_step + t
        fill_mixing(targets[t], ids, m_indptr, m_indices)
        src_x = pools[perm[(-s) % 3]]
        src_w = pools[perm[(1 - s) % 3]]
        out = pools[perm[(2 - s) % 3]]
        _csr_matmat(
            n, cols, m_indptr, m_indices, m_data,
            src_x[0], src_x[1], src_x[2],
            out[0], out[1], out[2],
        )
        _csr_matmat(
            n, cols, m_indptr, m_indices, m_data,
            src_w[0], src_w[1], src_w[2],
            src_x[0], src_x[1], src_x[2],
        )
    return shard
