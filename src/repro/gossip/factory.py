"""Engine registry and factory — one construction path for every engine.

Every gossip executor implementing the :class:`~repro.gossip.base.CycleEngine`
contract is registered here under a short name:

====================  =====================================================
``"sync"``            :class:`~repro.gossip.engine.SynchronousGossipEngine`
``"message"``         :class:`~repro.gossip.message_engine.MessageGossipEngine`
``"async"``           :class:`~repro.gossip.async_engine.AsyncMessageGossipEngine`
``"structured"``      :class:`~repro.gossip.structured.StructuredAggregationEngine`
====================  =====================================================

:func:`make_engine` builds any of them from a
:class:`~repro.core.config.GossipTrustConfig` (or just ``n``), deriving
RNG streams, and — for the message-level engines — a default simulation
substrate (DES simulator, Gnutella-like overlay, lossless transport)
when none is supplied.  Keyword overrides are forwarded to the engine
constructor; options an engine does not take are dropped, so one sweep
loop can drive heterogeneous engines (e.g. ``epsilon`` is meaningless
to the deterministic structured all-reduce and simply ignored by it).

Adding a new aggregation algorithm (e.g. the differential-gossip or
absolute-trust variants from related work) is a one-file change: subclass
:class:`CycleEngine`, then :func:`register_engine` a builder for it.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.gossip.async_engine import AsyncMessageGossipEngine
from repro.gossip.base import CycleEngine
from repro.gossip.engine import SynchronousGossipEngine
from repro.gossip.message_engine import MessageGossipEngine
from repro.gossip.structured import StructuredAggregationEngine
from repro.network.overlay import Overlay
from repro.network.topology import gnutella_like
from repro.network.transport import Transport
from repro.sim.engine import Simulator
from repro.utils.rng import RngStreams, SeedLike

if TYPE_CHECKING:  # avoid a core <-> gossip import cycle
    from repro.core.config import GossipTrustConfig

__all__ = [
    "DEFAULT_ENGINE",
    "EngineBuilder",
    "engine_names",
    "register_engine",
    "make_engine",
]

#: the default engine name (the vectorized synchronous executor)
DEFAULT_ENGINE = "sync"

#: default simulated latency of the factory-built transport
_DEFAULT_LATENCY = 1.0
#: default round pacing of the message engine (> 1.5 x latency)
_DEFAULT_ROUND_INTERVAL = 2.0

#: builder signature: (n, config, streams, sim, transport, overlay, overrides)
EngineBuilder = Callable[..., CycleEngine]

_REGISTRY: Dict[str, EngineBuilder] = {}


def register_engine(name: str, builder: EngineBuilder, *, replace: bool = False) -> None:
    """Register a :class:`CycleEngine` builder under ``name``.

    ``builder(n, config, streams, sim, transport, overlay, overrides)``
    must return a ready engine.  ``overrides`` is a plain dict of the
    caller's extra keyword arguments; builders should forward the subset
    their engine understands (:func:`constructor_kwargs` helps).
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"engine name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(f"engine {name!r} is already registered")
    _REGISTRY[name] = builder


def engine_names() -> Tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def constructor_kwargs(cls: Type[Any], options: Mapping[str, Any]) -> Dict[str, Any]:
    """The subset of ``options`` that ``cls.__init__`` accepts."""
    accepted = set(inspect.signature(cls.__init__).parameters) - {"self"}
    return {k: v for k, v in options.items() if k in accepted}


def make_engine(
    name: str,
    config: "Optional[GossipTrustConfig]" = None,
    *,
    n: Optional[int] = None,
    rng: "SeedLike | RngStreams" = None,
    sim: Optional[Simulator] = None,
    transport: Optional[Transport] = None,
    overlay: Optional[Overlay] = None,
    **overrides: Any,
) -> CycleEngine:
    """Construct a registered engine from a config (or a bare ``n``).

    Parameters
    ----------
    name:
        A registered engine name (see :func:`engine_names`).
    config:
        Source of the shared parameters (``n``, ``epsilon``,
        ``engine_mode``, ``probe_columns``, ``max_gossip_steps``,
        ``seed``).  ``None`` builds paper defaults from ``n``.
    n:
        Network size; required when ``config`` is omitted, and checked
        against ``config.n`` otherwise.
    rng:
        Seed material — an :class:`~repro.utils.rng.RngStreams` (used
        as-is, so the caller shares named streams with the engine) or
        any :data:`SeedLike`; defaults to ``config.seed``.
    sim, transport, overlay:
        Simulation substrate for the message-level engines.  Whatever is
        omitted is built with deterministic defaults (heap DES,
        Gnutella-like topology, lossless transport at latency 1.0); pass
        your own to inject faults.  ``latency`` and ``loss_rate``
        overrides parameterize the default transport.
    overrides:
        Extra keyword arguments for the engine constructor.  Options the
        selected engine does not accept are dropped, so uniform sweep
        code can drive every engine with one call.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(engine_names())
        raise ConfigurationError(f"unknown engine {name!r}; registered: {known}") from None
    if config is None:
        if n is None:
            raise ConfigurationError("make_engine needs a config or an explicit n")
        from repro.core.config import GossipTrustConfig

        config = GossipTrustConfig(n=int(n))
    elif n is not None and config.n != n:
        raise ConfigurationError(f"explicit n={n} does not match config.n={config.n}")
    streams = rng if isinstance(rng, RngStreams) else RngStreams(
        rng if rng is not None else config.seed
    )
    engine = builder(config.n, config, streams, sim, transport, overlay, dict(overrides))
    if getattr(config, "sanitize", False):
        engine.arm_sanitizer()
    return engine


# -- substrate ---------------------------------------------------------------


def _substrate(
    n: int,
    streams: RngStreams,
    overrides: Dict[str, Any],
    sim: Optional[Simulator],
    transport: Optional[Transport],
    overlay: Optional[Overlay],
) -> Tuple[Simulator, Transport, Overlay]:
    """Fill in whatever simulation substrate the caller did not supply."""
    if sim is None:
        sim = Simulator() if transport is None else transport.sim
    if overlay is None:
        topo = gnutella_like(n, rng=streams.get("engine-topology"))
        overlay = Overlay(topo, rng=streams.get("engine-overlay"))
    if transport is None:
        transport = Transport(
            sim,
            latency=float(overrides.pop("latency", _DEFAULT_LATENCY)),
            loss_rate=float(overrides.pop("loss_rate", 0.0)),
            rng=streams.get("engine-net"),
        )
    return sim, transport, overlay


def _apply_robustness(
    config: "GossipTrustConfig",
    streams: RngStreams,
    overrides: Dict[str, Any],
    kwargs: Dict[str, Any],
) -> None:
    """Resolve partner strategy + mass-restoration knobs for DES engines.

    ``partner_strategy`` (a registry name) and ``strategy_kwargs`` may
    arrive as overrides or from the config; a ready-built ``partnering``
    instance in the overrides wins.  The strategy draws from the
    dedicated ``"membership"`` stream, so membership maintenance never
    perturbs the gossip/topology draw sequences (the determinism
    contract's stream discipline).
    """
    name = overrides.pop(
        "partner_strategy", getattr(config, "partner_strategy", "global")
    )
    strategy_kwargs = overrides.pop("strategy_kwargs", {})
    if "partnering" not in overrides and name != "global":
        from repro.gossip.partnering import make_strategy

        kwargs["partnering"] = make_strategy(
            name, rng=streams.get("membership"), **strategy_kwargs
        )
    budget = overrides.pop(
        "mass_restore_budget", getattr(config, "mass_restore_budget", None)
    )
    if budget is not None:
        kwargs["mass_restore_budget"] = budget


# -- builders ----------------------------------------------------------------


def _build_sync(
    n: int,
    config: "GossipTrustConfig",
    streams: RngStreams,
    sim: Optional[Simulator],
    transport: Optional[Transport],
    overlay: Optional[Overlay],
    overrides: Dict[str, Any],
) -> CycleEngine:
    kwargs = dict(
        epsilon=config.epsilon,
        mode=config.engine_mode,
        probe_columns=config.probe_columns,
        max_steps=config.max_gossip_steps,
        check_every=config.check_every,
        densify_threshold=config.densify_threshold,
        kernel=getattr(config, "kernel", "fast"),
        dtype=getattr(config, "dtype", "float64"),
        block_rows=getattr(config, "block_rows", 0),
        shards=getattr(config, "shards", 1),
        shard_workers=getattr(config, "shard_workers", 1),
        workspace_backend=getattr(config, "workspace_backend", "private"),
        rng=streams.get("gossip"),
    )
    kwargs.update(constructor_kwargs(SynchronousGossipEngine, overrides))
    return SynchronousGossipEngine(n, **kwargs)


def _build_structured(
    n: int,
    config: "GossipTrustConfig",
    streams: RngStreams,
    sim: Optional[Simulator],
    transport: Optional[Transport],
    overlay: Optional[Overlay],
    overrides: Dict[str, Any],
) -> CycleEngine:
    return StructuredAggregationEngine(
        n, **constructor_kwargs(StructuredAggregationEngine, overrides)
    )


def _build_message(
    n: int,
    config: "GossipTrustConfig",
    streams: RngStreams,
    sim: Optional[Simulator],
    transport: Optional[Transport],
    overlay: Optional[Overlay],
    overrides: Dict[str, Any],
) -> CycleEngine:
    sim, transport, overlay = _substrate(n, streams, overrides, sim, transport, overlay)
    kwargs = dict(
        epsilon=config.epsilon,
        round_interval=_DEFAULT_ROUND_INTERVAL,
        rng=streams.get("gossip"),
    )
    _apply_robustness(config, streams, overrides, kwargs)
    kwargs.update(constructor_kwargs(MessageGossipEngine, overrides))
    return MessageGossipEngine(sim, transport, overlay, **kwargs)


def _build_async(
    n: int,
    config: "GossipTrustConfig",
    streams: RngStreams,
    sim: Optional[Simulator],
    transport: Optional[Transport],
    overlay: Optional[Overlay],
    overrides: Dict[str, Any],
) -> CycleEngine:
    sim, transport, overlay = _substrate(n, streams, overrides, sim, transport, overlay)
    kwargs = dict(epsilon=config.epsilon, rng=streams.get("gossip"))
    _apply_robustness(config, streams, overrides, kwargs)
    kwargs.update(constructor_kwargs(AsyncMessageGossipEngine, overrides))
    return AsyncMessageGossipEngine(sim, transport, overlay, **kwargs)


register_engine("sync", _build_sync)
register_engine("structured", _build_structured)
register_engine("message", _build_message)
register_engine("async", _build_async)
