"""Buffer backends and pooled CSR storage for the gossip kernels.

The fast and sparse kernels of
:class:`~repro.gossip.engine.SynchronousGossipEngine` run over
*preallocated* buffers (lint rule GT002 forbids allocations inside
their hot-marked step loops).  This module owns where those buffers
physically live and how they grow:

* :class:`BufferBackend` — the allocation strategy behind a workspace.
  Three implementations:

  - :class:`PrivateBuffers` (default) — ordinary process-private
    ``np.empty`` pages;
  - :class:`SharedMemoryBuffers` — POSIX shared-memory segments
    (:mod:`multiprocessing.shared_memory`), so a sweep worker or the
    service layer can :meth:`~SharedMemoryBuffers.attach` the *same*
    physical workspace instead of copying it across the process
    boundary (each array's segment is listed in the backend's
    :meth:`~SharedMemoryBuffers.manifest`);
  - :class:`MemmapBuffers` — ``np.memmap`` files under a spill
    directory, so a larger-than-comfortable workspace is backed by
    disk pages the OS can evict instead of anonymous memory that
    counts fully against RSS.

* :class:`CsrPool` — one CSR matrix held in backend-allocated
  ``indptr``/``indices``/``data`` arrays whose capacity grows
  *geometrically* (:meth:`CsrPool.ensure`) and never per step: the
  sparse kernel's SpGEMM writes into a pool sized by the closed-form
  output bound ``min(2 * nnz, n * p)``, so a whole gossip cycle incurs
  at most ``O(log(n * p))`` growth reallocations.

Both non-private backends support *attach-by-manifest*: the creating
process lists ``label -> (segment name / file path, shape, dtype)``
via ``manifest()`` and another process maps the same physical pages
with :func:`attach_array` — the sharded sparse kernel's step workers
and the sweep runner's shared-input initializer both ride on this.

Backends are selected by name (``workspace_backend=`` on the engine,
forwarded by the factory) via :func:`make_backend`.
"""

from __future__ import annotations

import os
import secrets
import tempfile
from multiprocessing import shared_memory as _shm
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from repro.errors import ConfigurationError, ValidationError

__all__ = [
    "BufferBackend",
    "PrivateBuffers",
    "SharedMemoryBuffers",
    "MemmapBuffers",
    "make_backend",
    "attach_array",
    "max_pool_columns",
    "min_shards_for",
    "CsrPool",
    "BACKEND_NAMES",
]

#: registered backend names accepted by :func:`make_backend`
BACKEND_NAMES = ("private", "shared", "memmap")

#: dtype of every CSR index array in the pools (one dtype keeps scipy's
#: C kernels on a single dispatch; n * p is validated against its range)
INDEX_DTYPE = np.int32


class BufferBackend:
    """Allocation strategy for workspace buffers.

    Subclasses implement :meth:`empty`; :meth:`close` releases whatever
    the backend holds (segments, spill files).  The base class is the
    private (ordinary heap) backend.
    """

    #: registry name of this backend
    name = "private"

    def empty(
        self, shape: Union[int, Tuple[int, ...]], dtype: "np.dtype | type", label: str = ""
    ) -> np.ndarray:
        """An uninitialized array of ``shape``/``dtype`` on this backend.

        ``label`` is a debugging/manifest hint; private buffers ignore
        it.
        """
        return np.empty(shape, dtype=dtype)

    def close(self) -> None:
        """Release backend resources (no-op for private buffers)."""

    def manifest(self) -> Dict[str, Tuple[str, Tuple[int, ...], str]]:
        """``label -> (ref, shape, dtype str)`` for :func:`attach_array`.

        Private buffers live in one process only, so their manifest is
        empty; shared-memory and memmap backends list every array they
        allocated.
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class PrivateBuffers(BufferBackend):
    """Ordinary process-private heap allocations (the default)."""


class SharedMemoryBuffers(BufferBackend):
    """Workspace buffers carved out of POSIX shared-memory segments.

    Every :meth:`empty` call creates one named
    :class:`multiprocessing.shared_memory.SharedMemory` segment and
    returns an ndarray view over it.  :meth:`manifest` lists
    ``label -> (segment name, shape, dtype)`` so another process can
    map the *same* physical pages with :meth:`attach` — the sweep
    runner and the service layer read a workspace without copying it.

    The creating process owns the segments: :meth:`close` unmaps *and
    unlinks* them.  Attached arrays (from :meth:`attach`) keep their
    segment alive only as long as the returned keeper object.
    """

    name = "shared"

    def __init__(self, prefix: Optional[str] = None) -> None:
        # A short random prefix keeps concurrent engines from colliding
        # in the system-wide segment namespace.
        self._prefix = prefix if prefix is not None else f"repro-{secrets.token_hex(4)}"
        self._count = 0
        self._segments: List["_shm.SharedMemory"] = []
        self._manifest: Dict[str, Tuple[str, Tuple[int, ...], str]] = {}

    def empty(
        self, shape: Union[int, Tuple[int, ...]], dtype: "np.dtype | type", label: str = ""
    ) -> np.ndarray:
        shape_t = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape_t)) * dt.itemsize)
        name = f"{self._prefix}-{self._count}"
        self._count += 1
        seg = _shm.SharedMemory(create=True, size=nbytes, name=name)
        self._segments.append(seg)
        key = label or name
        self._manifest[key] = (name, shape_t, dt.str)
        return np.ndarray(shape_t, dtype=dt, buffer=seg.buf)

    def manifest(self) -> Dict[str, Tuple[str, Tuple[int, ...], str]]:
        """``label -> (segment name, shape, dtype str)`` for :meth:`attach`."""
        return dict(self._manifest)

    @staticmethod
    def attach(
        name: str, shape: Tuple[int, ...], dtype: str
    ) -> Tuple[np.ndarray, "_shm.SharedMemory"]:
        """Map an existing segment; returns ``(array, keeper)``.

        The keeper must stay referenced while the array is used, and
        ``keeper.close()`` unmaps it (the owner unlinks).
        """
        seg = _shm.SharedMemory(name=name)
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf), seg

    def close(self) -> None:
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []
        self._manifest = {}


class MemmapBuffers(BufferBackend):
    """Workspace buffers backed by memory-mapped spill files.

    Each :meth:`empty` maps one file under ``directory`` (a fresh
    temporary directory by default).  Mapped pages are file-backed, so
    the OS can write them out under memory pressure instead of holding
    the whole workspace in anonymous RSS — the large-n relief valve
    when even the sparse pools exceed the budget.  :meth:`close`
    deletes the spill files.
    """

    name = "memmap"

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            self._tmpdir: Optional[tempfile.TemporaryDirectory] = (
                tempfile.TemporaryDirectory(prefix="repro-ws-")
            )
            self._dir = self._tmpdir.name
        else:
            self._tmpdir = None
            self._dir = directory
        self._count = 0
        self._paths: List[str] = []
        self._manifest: Dict[str, Tuple[str, Tuple[int, ...], str]] = {}

    @property
    def directory(self) -> str:
        """The spill directory holding the mapped files."""
        return self._dir

    def empty(
        self, shape: Union[int, Tuple[int, ...]], dtype: "np.dtype | type", label: str = ""
    ) -> np.ndarray:
        shape_t = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        suffix = f"-{label}" if label else ""
        path = os.path.join(self._dir, f"buf-{self._count}{suffix}.mm")
        self._count += 1
        self._paths.append(path)
        dt = np.dtype(dtype)
        self._manifest[label or os.path.basename(path)] = (path, shape_t, dt.str)
        return np.memmap(path, dtype=dt, mode="w+", shape=shape_t)

    def manifest(self) -> Dict[str, Tuple[str, Tuple[int, ...], str]]:
        """``label -> (file path, shape, dtype str)`` for :func:`attach_array`."""
        return dict(self._manifest)

    @staticmethod
    def attach(path: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
        """Map an existing spill file read-write (same physical pages)."""
        return np.memmap(path, dtype=np.dtype(dtype), mode="r+", shape=tuple(shape))

    def close(self) -> None:
        for path in self._paths:
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._paths = []
        self._manifest = {}
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


def attach_array(
    backend_name: str, entry: Tuple[str, Tuple[int, ...], str]
) -> Tuple[np.ndarray, object]:
    """Map one manifest entry from another process; ``(array, keeper)``.

    ``entry`` is a ``(ref, shape, dtype str)`` triple from a backend's
    ``manifest()``.  The keeper must stay referenced while the array is
    used: for ``"shared"`` it is the :class:`SharedMemory` handle (its
    ``close()`` unmaps; only the owner unlinks), for ``"memmap"`` the
    memmap itself (the file's lifetime belongs to the owner).
    """
    ref, shape, dtype = entry
    if backend_name == "shared":
        return SharedMemoryBuffers.attach(ref, tuple(shape), dtype)
    if backend_name == "memmap":
        arr = MemmapBuffers.attach(ref, tuple(shape), dtype)
        return arr, arr
    raise ConfigurationError(
        f"backend {backend_name!r} does not support attach-by-manifest "
        "(only 'shared' and 'memmap' do)"
    )


def max_pool_columns(n: int) -> int:
    """The widest CSR pool (columns) that keeps ``n * cols`` in int32 range."""
    return max(1, (int(np.iinfo(INDEX_DTYPE).max) - 1) // max(1, int(n)))


def min_shards_for(n: int, cols: int) -> int:
    """The fewest column shards splitting ``cols`` under the int32 guard."""
    per_shard = max_pool_columns(n)
    return -(-int(cols) // per_shard)  # ceil division


def make_backend(spec: Union[str, BufferBackend, None]) -> BufferBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` and ``"private"`` give plain heap buffers; ``"shared"``
    gives POSIX shared memory; ``"memmap"`` gives file-backed maps.
    """
    if spec is None:
        return PrivateBuffers()
    if isinstance(spec, BufferBackend):
        return spec
    if spec == "private":
        return PrivateBuffers()
    if spec == "shared":
        return SharedMemoryBuffers()
    if spec == "memmap":
        return MemmapBuffers()
    raise ConfigurationError(
        f"unknown workspace backend {spec!r}; known: {', '.join(BACKEND_NAMES)}"
    )


class CsrPool:
    """One CSR matrix in preallocated, geometrically grown arrays.

    The sparse kernel's state matrices (X, W and their SpGEMM output)
    each live in one pool: a fixed ``indptr`` of ``n + 1`` int32s plus
    ``indices``/``data`` arrays whose *capacity* only ever grows — by
    doubling, clamped to the ``n * p`` full-occupancy ceiling — so a
    cycle's step loop performs no per-step allocations.  ``nnz`` tracks
    how much of the capacity is live.
    """

    __slots__ = (
        "n", "cols", "label", "indptr", "indices", "data", "nnz",
        "guard", "_backend", "_dtype",
    )

    def __init__(
        self,
        n: int,
        cols: int,
        capacity: int,
        dtype: "np.dtype | type",
        backend: BufferBackend,
        label: str = "pool",
    ) -> None:
        if int(n) * int(cols) >= np.iinfo(INDEX_DTYPE).max:
            fit = max_pool_columns(n)
            raise ValidationError(
                f"CSR pool of shape ({n}, {cols}) needs {int(n) * int(cols)} "
                f"int32-indexed entries (>= 2**31 - 1 limit); at n = {n} a "
                f"pool holds at most {fit} columns — shard the {cols} probe "
                f"columns across >= {min_shards_for(n, cols)} shards "
                f"(shards={min_shards_for(n, cols)})"
            )
        self.n = int(n)
        self.cols = int(cols)
        self.label = label
        self._backend = backend
        self._dtype = np.dtype(dtype)
        capacity = max(1, min(int(capacity), self.full_capacity))
        self.indptr = backend.empty(self.n + 1, INDEX_DTYPE, f"{label}-indptr")
        self.indptr[0] = 0
        self.indices = backend.empty(capacity, INDEX_DTYPE, f"{label}-indices")
        self.data = backend.empty(capacity, self._dtype, f"{label}-data")
        self.nnz = 0
        #: optional shadow-ownership sanitizer hook (REPRO_SANITIZE=1):
        #: a ShardOwnershipGuard this pool reports parent-side writes to
        self.guard = None

    @property
    def full_capacity(self) -> int:
        """The occupancy ceiling ``n * cols`` — capacity never exceeds it."""
        return self.n * self.cols

    @property
    def capacity(self) -> int:
        """Current element capacity of the ``indices``/``data`` arrays."""
        return int(self.indices.size)

    def ensure(self, needed: int) -> None:
        """Grow capacity to at least ``needed`` (geometric, clamped).

        Growing *discards* current contents — pools are grown in their
        role as SpGEMM *outputs*, where the previous contents are dead.
        """
        needed = min(int(needed), self.full_capacity)
        if self.capacity >= needed:
            return
        if self.guard is not None:
            self.guard.check_parent_write(self.label, what="ensure/grow")
        new_cap = min(max(needed, 2 * self.capacity), self.full_capacity)
        self.indices = self._backend.empty(new_cap, INDEX_DTYPE, f"{self.label}-indices")
        self.data = self._backend.empty(new_cap, self._dtype, f"{self.label}-data")

    def release(self) -> None:
        """Shrink ``indices``/``data`` to one-element stubs, freeing them.

        Called by the serial sparse kernel after a shard's dense
        handoff, when the CSR state has been gathered into dense slot
        arrays and the pool's capacity is dead weight.  The pool stays
        loadable — the next :meth:`load`/:meth:`ensure` simply regrows
        from the stub.  Only meaningful on the private backend (the
        engine gates on it): releasing manifest-listed arrays would
        orphan segments that attached processes still map.
        """
        if self.guard is not None:
            self.guard.check_parent_write(self.label, what="release")
        self.indices = self._backend.empty(1, INDEX_DTYPE, f"{self.label}-indices")
        self.data = self._backend.empty(1, self._dtype, f"{self.label}-data")
        self.indptr[0] = 0
        self.nnz = 0

    def load(self, mat: sparse.csr_matrix) -> None:
        """Copy a scipy CSR matrix into the pool (casting dtypes)."""
        if mat.shape != (self.n, self.cols):
            raise ValidationError(
                f"matrix shape {mat.shape} does not fit pool ({self.n}, {self.cols})"
            )
        if self.guard is not None:
            self.guard.check_parent_write(self.label, what="load")
        nnz = int(mat.nnz)
        self.ensure(nnz)
        self.indptr[:] = mat.indptr
        self.indices[:nnz] = mat.indices
        self.data[:nnz] = mat.data
        self.nnz = nnz

    def sum(self) -> float:
        """Sum of the live values (the push-sum mass reduction)."""
        return float(self.data[: self.nnz].sum())

    def min(self) -> float:
        """Minimum live value (0.0 when empty)."""
        return float(self.data[: self.nnz].min()) if self.nnz else 0.0

    def tocsr(self) -> sparse.csr_matrix:
        """A scipy view of the live contents (copies into exact-size arrays)."""
        return sparse.csr_matrix(
            (
                self.data[: self.nnz].copy(),
                self.indices[: self.nnz].copy(),
                self.indptr.copy(),
            ),
            shape=(self.n, self.cols),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CsrPool(n={self.n}, cols={self.cols}, nnz={self.nnz}, "
            f"capacity={self.capacity}, dtype={self._dtype.name})"
        )
