"""Asynchronous message-level gossip — no synchronized rounds.

The paper (following Kempe et al. and Boyd et al.) *analyzes* gossip in
synchronous steps, but a deployed protocol has no global round clock:
each peer gossips on its own local timer.  This engine runs Algorithm 2
that way — every live node is a :class:`~repro.sim.process.Process`
that sleeps an exponential interval (a Poisson clock, Boyd et al.'s
asynchronous time model), halves its vector, and ships one half.

Convergence is detected by a monitor that samples all live nodes'
estimates every ``check_interval`` of simulated time and applies the
epsilon criterion between consecutive samples.  Results are reported in
*equivalent rounds* (sends per node) so they compare directly with the
synchronous engine — the classic asynchronous-gossip result is that the
per-send convergence cost matches the synchronous analysis, which the
``async`` ablation bench checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ValidationError
from repro.gossip.base import CycleEngine, TrustInput, exact_aggregate, local_rows
from repro.gossip.convergence import average_relative_error
from repro.gossip.message_engine import (
    MessageGossipResult,
    _batched_converged,
    _disagreement,
)
from repro.gossip.partnering import GlobalSampler, PartnerStrategy
from repro.gossip.vector import EstimatesWorkspace, TripletVector
from repro.network.overlay import Overlay
from repro.network.transport import Message, Transport
from repro.sim.engine import Simulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive

__all__ = ["AsyncMessageGossipEngine"]


class AsyncMessageGossipEngine(CycleEngine):
    """Algorithm 2 on per-node Poisson clocks.

    Parameters
    ----------
    sim, transport, overlay:
        Simulation substrate (the engine registers delivery handlers).
    epsilon:
        Per-node relative convergence threshold between monitor samples.
    mean_interval:
        Mean of each node's exponential gossip interval (one "round" of
        wall-clock corresponds to ~1 send per node).
    check_interval:
        Simulated time between convergence checks; defaults to
        ``2 * mean_interval`` so a check window spans ~2 sends per node.
    max_time:
        Simulated-time budget per cycle.
    partnering:
        A :class:`~repro.gossip.partnering.PartnerStrategy` deciding who
        each node gossips with; defaults to the global sampler (the
        historical behaviour, bit-identical).
    mass_restore_budget:
        Self-healing threshold on ``mass_lost_fraction`` measured at the
        monitor cadence (``None`` disables the guard).  Because mass is
        in flight between Poisson sends, the only safe restoration here
        is ``"restart"``: the engine quiesces the clocks, drains the
        transport, re-initializes every live node, and resumes — uniform
        renormalization would over-restore once in-flight mass landed,
        creating mass and tripping the one-sided conservation bound.
    """

    name = "async"

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        overlay: Overlay,
        *,
        epsilon: float = 1e-4,
        mean_interval: float = 1.0,
        check_interval: Optional[float] = None,
        max_time: float = 2000.0,
        partnering: Optional[PartnerStrategy] = None,
        mass_restore_budget: Optional[float] = None,
        mass_restore_action: str = "restart",
        rng: SeedLike = None,
    ) -> None:
        check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
        check_positive("mean_interval", mean_interval)
        check_positive("max_time", max_time)
        if mass_restore_budget is not None:
            check_in_range(
                "mass_restore_budget", mass_restore_budget,
                low=0.0, high=1.0, low_inclusive=False, high_inclusive=False,
            )
        if mass_restore_action != "restart":
            raise ValidationError(
                "the async engine only supports mass_restore_action='restart' "
                "(renormalizing while mass is in flight would create mass); "
                f"got {mass_restore_action!r}"
            )
        self.sim = sim
        self.transport = transport
        self.overlay = overlay
        self.epsilon = float(epsilon)
        self.mean_interval = float(mean_interval)
        self.check_interval = (
            float(check_interval) if check_interval is not None else 2.0 * mean_interval
        )
        self.max_time = float(max_time)
        if partnering is None:
            partnering = GlobalSampler()
        self.partnering = partnering
        self.partnering.bind(sim, transport, overlay)
        self.mass_restore_budget = (
            float(mass_restore_budget) if mass_restore_budget is not None else None
        )
        self.mass_restore_action = mass_restore_action
        #: gossip halves delivered to departed/uninitialized nodes
        self.discarded = 0
        self._rng = as_generator(rng)
        self._states: Dict[int, TripletVector] = {}
        #: per-node TripletVectors recycled across cycles (see message_engine)
        self._pool: Dict[int, TripletVector] = {}
        #: reusable buffers for the monitor's estimate matrices
        self._est_ws = EstimatesWorkspace()
        self._running = False
        self._gen = 0
        self.sends = 0
        self.cycle_steps = []
        for node in range(overlay.n):
            transport.register(node, self._on_message)

    # -- protocol ----------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        if msg.kind != "gossip":
            self.partnering.on_message(msg)
            return
        state = self._states.get(msg.dst)
        if state is None or not self.overlay.is_alive(msg.dst):
            self.discarded += 1  # mass vanished without a transport drop
            return
        state.merge(msg.payload)

    def _node_process(self, node: int, gen: int) -> Iterator[float]:
        """One peer's Poisson gossip clock.

        ``gen`` is the spawn generation: a cycle restart bumps the
        engine generation, so clocks from before the restart exit at
        their next wake instead of gossiping stale state.
        """
        while self._running and gen == self._gen:
            yield float(self._rng.exponential(self.mean_interval))
            if (
                not self._running
                or gen != self._gen
                or not self.overlay.is_alive(node)
            ):
                return
            state = self._states.get(node)
            if state is None:
                return
            partner = self.partnering.partner(node)
            if partner is None:
                continue
            sent = state.halve()
            self.transport.send(
                node, partner, sent, kind="gossip", size=sent.payload_size()
            )
            self.sends += 1

    def run_cycle(
        self,
        S: Union[TrustInput, Sequence[Mapping[int, float]]],
        v_prior: np.ndarray,
    ) -> MessageGossipResult:
        """One asynchronous aggregation cycle; see the module docstring.

        ``S`` is any form :func:`~repro.gossip.base.local_rows` accepts:
        a :class:`~repro.trust.matrix.TrustMatrix`, raw matrix, or a
        per-node sequence of sparse rows.
        """
        n = self.overlay.n
        rows = local_rows(S, n)
        v_prior = np.asarray(v_prior, dtype=np.float64)
        if v_prior.shape != (n,):
            raise ValidationError(f"v_prior must have shape ({n},)")

        exact = exact_aggregate(rows, v_prior, n)

        san = self.sanitizer
        if san is not None:
            san.begin_cycle(self.name)
        prior_map = {i: float(v_prior[i]) for i in range(n)}
        self._states = {}
        initial_mass = 0.0
        for node in self.overlay.alive_nodes().tolist():
            tv = self._pool.get(node)
            if tv is None:
                tv = self._pool[node] = TripletVector(n)
            tv.reset(node, rows[node], prior_map, n=n)
            self._states[node] = tv
            mx, mw = tv.mass()
            initial_mass += mx + mw
        initial_live = frozenset(self._states)

        sent_before = self.transport.sent
        dropped_before = self.transport.drop_count
        discarded_before = self.discarded
        self.sends = 0
        self._running = True
        self._gen += 1
        self.partnering.start()
        for node in self.overlay.alive_nodes().tolist():
            self.sim.process(self._node_process(int(node), self._gen))

        deadline = self.sim.now + self.max_time
        prev_ids: tuple = ()
        prev_mat: Optional[np.ndarray] = None
        converged = False
        checks = 0
        restorations = 0
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + self.check_interval, deadline))
            checks += 1
            cur_ids = tuple(
                node
                for node in self.overlay.alive_nodes().tolist()
                if node in self._states
            )
            # Async sends leave mass in flight at sample time, so only
            # the one-sided law holds mid-cycle: node-held mass never
            # exceeds what the cycle started with.
            mass_now = 0.0
            for node in cur_ids:
                tv = self._states[node]
                if san is not None:
                    tv.check_invariants(san, owner=node, step=checks)
                mx, mw = tv.mass()
                mass_now += mx + mw
            if san is not None:
                san.check_mass_bounded(
                    "total x+w mass", mass_now, initial_mass, step=checks
                )
            if (
                self.mass_restore_budget is not None
                and initial_mass > 0.0
                and mass_now < (1.0 - self.mass_restore_budget) * initial_mass
            ):
                # The cheap sample counts only node-held mass; a large
                # share can legitimately be *in flight* between Poisson
                # sends (about latency/mean_interval messages per node,
                # each carrying half its sender's mass).  A restart is
                # destructive, so verify first: quiesce the clocks, let
                # in-flight traffic land, and re-measure.
                self._running = False
                self.sim.run(
                    until=self.sim.now + 3.0 * max(self.transport.latency, 1e-9)
                )
                drained_mass = 0.0
                for node in self.overlay.alive_nodes().tolist():
                    tv = self._states.get(node)
                    if tv is not None:
                        mx, mw = tv.mass()
                        drained_mass += mx + mw
                if drained_mass < (1.0 - self.mass_restore_budget) * initial_mass:
                    # Genuine loss (drops, departures, discards): restart
                    # every live node from a fresh vector.  Rounds
                    # already spent stay counted (self.sends accumulates).
                    restorations += 1
                    self._states = {}
                    initial_mass = 0.0
                    for node in self.overlay.alive_nodes().tolist():
                        tv = self._pool.get(node)
                        if tv is None:
                            tv = self._pool[node] = TripletVector(n)
                        tv.reset(node, rows[node], prior_map, n=n)
                        self._states[node] = tv
                        mx, mw = tv.mass()
                        initial_mass += mx + mw
                    initial_live = frozenset(self._states)
                    dropped_before = self.transport.drop_count
                    discarded_before = self.discarded
                    prev_ids, prev_mat = (), None
                # False alarm (the mass was in flight): resume the same
                # states under a new generation; the drain pause costs
                # simulated time but no progress.
                self._running = True
                self._gen += 1
                for node in self.overlay.alive_nodes().tolist():
                    if node in self._states:
                        self.sim.process(self._node_process(int(node), self._gen))
                continue
            cur_mat = TripletVector.estimates_matrix(
                [self._states[node] for node in cur_ids], n, workspace=self._est_ws
            )
            if (
                prev_mat is not None
                and checks >= 2
                and _batched_converged(cur_ids, cur_mat, prev_ids, prev_mat, self.epsilon)
            ):
                converged = True
                break
            prev_ids, prev_mat = cur_ids, cur_mat
        self._running = False
        self.partnering.stop()
        # Drain in-flight messages: mass sent but not yet delivered is
        # not lost, it is late — let it land before accounting.
        self.sim.run(until=self.sim.now + 3.0 * max(self.transport.latency, 1e-9))

        live = self.overlay.alive_nodes()
        live_states = [
            self._states[node] for node in live.tolist() if node in self._states
        ]
        node_estimates = (
            TripletVector.estimates_matrix(live_states, n)
            if live_states
            else np.empty((0, n))
        )
        with np.errstate(invalid="ignore"):
            finite = np.where(np.isfinite(node_estimates), node_estimates, np.nan)
            v_next = np.nanmean(finite, axis=0) if finite.size else np.zeros(n)
        v_next = np.nan_to_num(v_next, nan=0.0, posinf=0.0)

        final_mass = 0.0
        for node in live.tolist():
            if node in self._states:
                mx, mw = self._states[node].mass()
                final_mass += mx + mw
        lost = 0.0 if initial_mass == 0 else max(0.0, 1.0 - final_mass / initial_mass)
        if san is not None:
            # Post-drain, nothing is in flight; with a lossless history
            # conservation must hold exactly, otherwise one-sided.
            live_set = frozenset(
                node for node in live.tolist() if node in self._states
            )
            if (
                self.transport.drop_count == dropped_before
                and self.discarded == discarded_before
                and live_set == initial_live
            ):
                san.check_mass("total x+w mass (drained)", final_mass, initial_mass)
            else:
                san.check_mass_bounded(
                    "total x+w mass (drained)", final_mass, initial_mass
                )

        equivalent_rounds = int(round(self.sends / max(1, live.size)))
        self.cycle_steps.append(equivalent_rounds)
        return MessageGossipResult(
            v_next=v_next,
            exact=exact,
            steps=equivalent_rounds,
            converged=converged,
            mode=self.name,
            node_disagreement=_disagreement(node_estimates),
            messages_sent=self.transport.sent - sent_before,
            messages_dropped=self.transport.drop_count - dropped_before,
            gossip_error=average_relative_error(v_next, exact),
            mass_lost_fraction=lost,
            mass_restorations=restorations,
            node_estimates=node_estimates,
            live_nodes=live,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AsyncMessageGossipEngine(n={self.overlay.n}, "
            f"mean_interval={self.mean_interval})"
        )
