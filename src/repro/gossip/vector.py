"""Algorithm 2 node state: the reputation vector as ``<x, id, w>`` triplets.

During an aggregation cycle every node carries the *entire* global
reputation vector in gossiped form — one triplet per peer id.  A gossip
step halves the whole vector, sends one half to a random partner, keeps
the other, and merges arriving halves component-wise (Algorithm 2 lines
12-19).  This class is the per-node data structure used by the
message-level engine; the vectorized engine flattens the same state into
arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.types import Triplet

__all__ = ["TripletVector"]


class TripletVector:
    """A node's gossiped reputation vector: ``{peer id -> (x, w)}``.

    The vector is sparse in ids — entries a node has never heard about
    are absent (their implied mass is zero), which is what keeps
    per-message payloads proportional to the number of *known* peers.
    """

    __slots__ = ("_x", "_w")

    def __init__(self) -> None:
        self._x: Dict[int, float] = {}
        self._w: Dict[int, float] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def initial(
        cls, owner: int, local_scores: Mapping[int, float], prior: Mapping[int, float]
    ) -> "TripletVector":
        """Cycle initialization (Algorithm 2 lines 5-11) for node ``owner``.

        ``x_j <- s_{owner,j} * v_owner(t-1)`` for every peer ``owner``
        has rated, and ``w_j <- 1`` only for ``j == owner``.

        Parameters
        ----------
        owner:
            The node this vector lives on.
        local_scores:
            Sparse normalized row ``{j: s_owner_j}``.
        prior:
            Previous-cycle reputation estimates ``{i: v_i(t-1)}``; only
            ``prior[owner]`` is needed here, passed as a mapping for
            symmetry with the engines.
        """
        tv = cls()
        v_own = float(prior.get(owner, 0.0))
        for j, s in local_scores.items():
            if s < 0:
                raise ValidationError(f"negative local score s[{owner},{j}]={s}")
            if s > 0 and v_own > 0:
                tv._x[j] = s * v_own
        tv._w[owner] = 1.0
        return tv

    # -- gossip operations ---------------------------------------------------

    def halve(self) -> "TripletVector":
        """Split in place; return the half-share to transmit.

        After the call, *this* vector holds the kept half and the
        returned vector holds the sent half (they are equal).
        """
        sent = TripletVector()
        for j in self._x:
            self._x[j] *= 0.5
        for j in self._w:
            self._w[j] *= 0.5
        sent._x = dict(self._x)
        sent._w = dict(self._w)
        return sent

    def merge(self, other: "TripletVector") -> None:
        """Component-wise sum of an arriving half-share (line 15)."""
        for j, xv in other._x.items():
            self._x[j] = self._x.get(j, 0.0) + xv
        for j, wv in other._w.items():
            self._w[j] = self._w.get(j, 0.0) + wv

    # -- accessors ------------------------------------------------------------

    def triplet(self, j: int) -> Triplet:
        """The ``<x_j, j, w_j>`` triplet (zeros if unknown)."""
        return Triplet(x=self._x.get(j, 0.0), node=j, w=self._w.get(j, 0.0))

    def estimate(self, j: int) -> float:
        """Gossiped score ``beta_j = x_j / w_j`` for peer ``j``."""
        return self.triplet(j).estimate

    def known_ids(self) -> Tuple[int, ...]:
        """Peer ids with any mass (x or w) at this node, ascending."""
        return tuple(sorted(set(self._x) | set(self._w)))

    def estimates_array(self, n: int) -> np.ndarray:
        """Dense length-``n`` estimate vector (nan where w == 0 and x == 0)."""
        out = np.full(n, np.nan)
        for j in range(n):
            w = self._w.get(j, 0.0)
            x = self._x.get(j, 0.0)
            if w > 0:
                out[j] = x / w
            elif x > 0:
                out[j] = np.inf
        return out

    def mass(self) -> Tuple[float, float]:
        """Total ``(sum x, sum w)`` held at this node (conservation checks)."""
        return (float(sum(self._x.values())), float(sum(self._w.values())))

    def payload_size(self) -> int:
        """Triplet count — proxy for message size in overhead accounting."""
        return len(set(self._x) | set(self._w))

    def copy(self) -> "TripletVector":
        """Deep copy."""
        tv = TripletVector()
        tv._x = dict(self._x)
        tv._w = dict(self._w)
        return tv

    def __iter__(self) -> Iterator[Triplet]:
        for j in self.known_ids():
            yield self.triplet(j)

    def __len__(self) -> int:
        return self.payload_size()

    def __repr__(self) -> str:  # pragma: no cover
        return f"TripletVector(known={len(self)})"
