"""Algorithm 2 node state: the reputation vector as ``<x, id, w>`` triplets.

During an aggregation cycle every node carries the *entire* global
reputation vector in gossiped form — one triplet per peer id.  A gossip
step halves the whole vector, sends one half to a random partner, keeps
the other, and merges arriving halves component-wise (Algorithm 2 lines
12-19).  This class is the per-node data structure used by the
message-level engine; the vectorized engine flattens the same state into
arrays.

The triplet store is id-indexed NumPy arrays rather than dicts: ``x``
and ``w`` mass live at position ``j`` for peer ``j``, so halve/merge are
single vectorized passes and a whole population's estimates batch into
one matrix op (:meth:`TripletVector.estimates_matrix`).  The *logical*
sparsity of the paper's payload is preserved — an id is "known" exactly
when it carries any mass, and :meth:`payload_size` counts known ids, not
array capacity.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.types import Triplet

__all__ = ["TripletVector"]


class TripletVector:
    """A node's gossiped reputation vector: ``x``/``w`` mass per peer id.

    The vector is sparse in ids — entries a node has never heard about
    carry zero mass and are absent from :meth:`known_ids`, which is what
    keeps per-message payloads proportional to the number of *known*
    peers.  Arrays grow on demand when a merge brings news of higher
    ids than this node has seen.
    """

    __slots__ = ("_x", "_w", "_known", "_size")

    def __init__(self, capacity: int = 0) -> None:
        self._x = np.zeros(capacity)
        self._w = np.zeros(capacity)
        #: cached ascending known-id tuple; None when stale
        self._known: Optional[Tuple[int, ...]] = None
        #: cached known-id count; None when stale
        self._size: Optional[int] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def initial(
        cls,
        owner: int,
        local_scores: Mapping[int, float],
        prior: Mapping[int, float],
        *,
        n: Optional[int] = None,
    ) -> "TripletVector":
        """Cycle initialization (Algorithm 2 lines 5-11) for node ``owner``.

        ``x_j <- s_{owner,j} * v_owner(t-1)`` for every peer ``owner``
        has rated, and ``w_j <- 1`` only for ``j == owner``.

        Parameters
        ----------
        owner:
            The node this vector lives on.
        local_scores:
            Sparse normalized row ``{j: s_owner_j}``.
        prior:
            Previous-cycle reputation estimates ``{i: v_i(t-1)}``; only
            ``prior[owner]`` is needed here, passed as a mapping for
            symmetry with the engines.
        n:
            Optional population size; sizing the arrays up front avoids
            any growth during the cycle.
        """
        cap = int(n) if n is not None else 0
        cap = max(cap, owner + 1, *(int(j) + 1 for j in local_scores), 1)
        tv = cls(cap)
        v_own = float(prior.get(owner, 0.0))
        for j, s in local_scores.items():
            if s < 0:
                raise ValidationError(f"negative local score s[{owner},{j}]={s}")
            if s > 0 and v_own > 0:
                tv._x[j] = s * v_own
        tv._w[owner] = 1.0
        return tv

    def _grow_to(self, capacity: int) -> None:
        if capacity > self._x.shape[0]:
            x = np.zeros(capacity)
            w = np.zeros(capacity)
            x[: self._x.shape[0]] = self._x
            w[: self._w.shape[0]] = self._w
            self._x = x
            self._w = w

    # -- gossip operations ---------------------------------------------------

    def halve(self) -> "TripletVector":
        """Split in place; return the half-share to transmit.

        After the call, *this* vector holds the kept half and the
        returned vector holds the sent half (they are equal).
        """
        self._x *= 0.5
        self._w *= 0.5
        return self.copy()

    def merge(self, other: "TripletVector") -> None:
        """Component-wise sum of an arriving half-share (line 15)."""
        m = other._x.shape[0]
        self._grow_to(m)
        self._x[:m] += other._x
        self._w[:m] += other._w
        self._known = None
        self._size = None

    # -- accessors ------------------------------------------------------------

    def triplet(self, j: int) -> Triplet:
        """The ``<x_j, j, w_j>`` triplet (zeros if unknown)."""
        if 0 <= j < self._x.shape[0]:
            return Triplet(x=float(self._x[j]), node=j, w=float(self._w[j]))
        return Triplet(x=0.0, node=j, w=0.0)

    def estimate(self, j: int) -> float:
        """Gossiped score ``beta_j = x_j / w_j`` for peer ``j``."""
        return self.triplet(j).estimate

    def known_ids(self) -> Tuple[int, ...]:
        """Peer ids with any mass (x or w) at this node, ascending.

        Cached — halving scales mass but cannot create or destroy known
        ids, so only :meth:`merge` invalidates.
        """
        if self._known is None:
            self._known = tuple(np.flatnonzero((self._x > 0) | (self._w > 0)).tolist())
            self._size = len(self._known)
        return self._known

    def estimates_array(self, n: int) -> np.ndarray:
        """Dense length-``n`` estimate vector (nan where w == 0 and x == 0)."""
        out = np.full(n, np.nan)
        m = min(n, self._x.shape[0])
        x = self._x[:m]
        w = self._w[:m]
        pos = w > 0
        np.divide(x, w, out=out[:m], where=pos)
        out[:m][~pos & (x > 0)] = np.inf
        return out

    @staticmethod
    def estimates_matrix(vectors: Sequence["TripletVector"], n: int) -> np.ndarray:
        """Stacked :meth:`estimates_array` for many vectors in one pass.

        Returns an ``(len(vectors), n)`` matrix — the per-round
        convergence test and the end-of-cycle aggregation both consume
        the whole population at once, so batching replaces O(n) Python
        per node with two matrix ops.
        """
        m = len(vectors)
        X = np.zeros((m, n))
        W = np.zeros((m, n))
        for i, tv in enumerate(vectors):
            k = min(n, tv._x.shape[0])
            X[i, :k] = tv._x[:k]
            W[i, :k] = tv._w[:k]
        out = np.full((m, n), np.nan)
        pos = W > 0
        np.divide(X, W, out=out, where=pos)
        out[~pos & (X > 0)] = np.inf
        return out

    def mass(self) -> Tuple[float, float]:
        """Total ``(sum x, sum w)`` held at this node (conservation checks)."""
        return (float(self._x.sum()), float(self._w.sum()))

    def payload_size(self) -> int:
        """Triplet count — proxy for message size in overhead accounting.

        Cached like :meth:`known_ids`, but without materializing the id
        tuple: the count alone is one vectorized scan.
        """
        if self._size is None:
            if self._known is not None:
                self._size = len(self._known)
            else:
                self._size = int(np.count_nonzero((self._x > 0) | (self._w > 0)))
        return self._size

    def copy(self) -> "TripletVector":
        """Deep copy."""
        tv = TripletVector()
        tv._x = self._x.copy()
        tv._w = self._w.copy()
        tv._known = self._known
        tv._size = self._size
        return tv

    def __iter__(self) -> Iterator[Triplet]:
        for j in self.known_ids():
            yield self.triplet(j)

    def __len__(self) -> int:
        return self.payload_size()

    def __repr__(self) -> str:  # pragma: no cover
        return f"TripletVector(known={len(self)})"
