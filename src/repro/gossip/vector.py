"""Algorithm 2 node state: the reputation vector as ``<x, id, w>`` triplets.

During an aggregation cycle every node carries the *entire* global
reputation vector in gossiped form — one triplet per peer id.  A gossip
step halves the whole vector, sends one half to a random partner, keeps
the other, and merges arriving halves component-wise (Algorithm 2 lines
12-19).  This class is the per-node data structure used by the
message-level engine; the vectorized engine flattens the same state into
arrays.

The triplet store is id-indexed NumPy arrays rather than dicts: ``x``
and ``w`` mass live at position ``j`` for peer ``j``, so halve/merge are
single vectorized passes and a whole population's estimates batch into
one matrix op (:meth:`TripletVector.estimates_matrix`).  The *logical*
sparsity of the paper's payload is preserved — an id is "known" exactly
when it carries any mass, and :meth:`payload_size` counts known ids, not
array capacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.types import Triplet

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitizer import InvariantSanitizer

__all__ = ["TripletVector", "EstimatesWorkspace"]


class EstimatesWorkspace:
    """Reusable buffers for :meth:`TripletVector.estimates_matrix`.

    The message-level engines evaluate the population estimate matrix
    every round; without reuse that is three fresh ``(m, n)`` arrays
    per round.  This workspace keeps shared X/W scratch plus **two**
    alternating output slots: callers (the per-round convergence check)
    hold on to the *previous* round's matrix while the next one is
    computed, so consecutive calls must never hand back the same
    buffer.  Matrices that outlive two calls (e.g. result fields) must
    be copied by the caller.

    Buffers grow capacity-style and are served as ``[:m, :n]`` views.
    """

    __slots__ = ("_X", "_W", "_outs", "_flip")

    def __init__(self) -> None:
        self._X: Optional[np.ndarray] = None
        self._W: Optional[np.ndarray] = None
        self._outs: list = [None, None]
        self._flip = 0

    @staticmethod
    def _grown(buf: Optional[np.ndarray], m: int, n: int) -> np.ndarray:
        if buf is None or buf.shape[0] < m or buf.shape[1] < n:
            rows = m if buf is None else max(m, buf.shape[0])
            cols = n if buf is None else max(n, buf.shape[1])
            buf = np.empty((rows, cols))
        return buf

    def arrays(self, m: int, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(X, W, out)`` views of shape ``(m, n)``; out alternates slots."""
        self._X = self._grown(self._X, m, n)
        self._W = self._grown(self._W, m, n)
        self._outs[self._flip] = self._grown(self._outs[self._flip], m, n)
        out = self._outs[self._flip]
        self._flip ^= 1
        return self._X[:m, :n], self._W[:m, :n], out[:m, :n]

    def invalidate(self) -> None:
        """Release the buffers (next call allocates fresh)."""
        self._X = None
        self._W = None
        self._outs = [None, None]
        self._flip = 0


class TripletVector:
    """A node's gossiped reputation vector: ``x``/``w`` mass per peer id.

    The vector is sparse in ids — entries a node has never heard about
    carry zero mass and are absent from :meth:`known_ids`, which is what
    keeps per-message payloads proportional to the number of *known*
    peers.  Arrays grow on demand when a merge brings news of higher
    ids than this node has seen.
    """

    __slots__ = ("_x", "_w", "_known", "_size")

    def __init__(self, capacity: int = 0) -> None:
        self._x = np.zeros(capacity)
        self._w = np.zeros(capacity)
        #: cached ascending known-id tuple; None when stale
        self._known: Optional[Tuple[int, ...]] = None
        #: cached known-id count; None when stale
        self._size: Optional[int] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def initial(
        cls,
        owner: int,
        local_scores: Mapping[int, float],
        prior: Mapping[int, float],
        *,
        n: Optional[int] = None,
    ) -> "TripletVector":
        """Cycle initialization (Algorithm 2 lines 5-11) for node ``owner``.

        ``x_j <- s_{owner,j} * v_owner(t-1)`` for every peer ``owner``
        has rated, and ``w_j <- 1`` only for ``j == owner``.

        Parameters
        ----------
        owner:
            The node this vector lives on.
        local_scores:
            Sparse normalized row ``{j: s_owner_j}``.
        prior:
            Previous-cycle reputation estimates ``{i: v_i(t-1)}``; only
            ``prior[owner]`` is needed here, passed as a mapping for
            symmetry with the engines.
        n:
            Optional population size; sizing the arrays up front avoids
            any growth during the cycle.
        """
        tv = cls(0)
        tv.reset(owner, local_scores, prior, n=n)
        return tv

    def reset(
        self,
        owner: int,
        local_scores: Mapping[int, float],
        prior: Mapping[int, float],
        *,
        n: Optional[int] = None,
    ) -> "TripletVector":
        """Re-run cycle initialization in place, reusing the arrays.

        Semantically identical to building a fresh :meth:`initial`
        vector; the existing ``_x``/``_w`` arrays are zeroed and
        refilled (growing only if capacity is short), so a node's state
        can be recycled across aggregation cycles without reallocating
        — the message engine pools its per-node vectors this way.
        """
        cap = int(n) if n is not None else 0
        cap = max(cap, owner + 1, *(int(j) + 1 for j in local_scores), 1)
        self._grow_to(cap)
        self._x[:] = 0.0
        self._w[:] = 0.0
        self._known = None
        self._size = None
        v_own = float(prior.get(owner, 0.0))
        for j, s in local_scores.items():
            if s < 0:
                raise ValidationError(f"negative local score s[{owner},{j}]={s}")
            if s > 0 and v_own > 0:
                self._x[j] = s * v_own
        self._w[owner] = 1.0
        return self

    def _grow_to(self, capacity: int) -> None:
        if capacity > self._x.shape[0]:
            x = np.zeros(capacity)
            w = np.zeros(capacity)
            x[: self._x.shape[0]] = self._x
            w[: self._w.shape[0]] = self._w
            self._x = x
            self._w = w

    # -- gossip operations ---------------------------------------------------

    def halve(self) -> "TripletVector":
        """Split in place; return the half-share to transmit.

        After the call, *this* vector holds the kept half and the
        returned vector holds the sent half (they are equal).
        """
        self._x *= 0.5
        self._w *= 0.5
        return self.copy()

    # hot: merge runs once per delivered message — in-place adds only
    def merge(self, other: "TripletVector") -> None:
        """Component-wise sum of an arriving half-share (line 15)."""
        m = other._x.shape[0]
        self._grow_to(m)
        self._x[:m] += other._x
        self._w[:m] += other._w
        self._known = None
        self._size = None

    def scale(self, factor: float) -> None:
        """Uniformly scale both mass components by ``factor`` (> 0).

        Ratio-preserving: every estimate ``x_j / w_j`` is unchanged.
        This is the mass-restoration primitive — an engine that measured
        a lost fraction ``f`` can scale every surviving vector by
        ``1 / (1 - f)`` to restore the cycle's mass budget without
        touching any node's estimates.
        """
        if not factor > 0.0:
            raise ValidationError(f"scale factor must be > 0, got {factor}")
        self._x *= factor
        self._w *= factor

    # -- accessors ------------------------------------------------------------

    def triplet(self, j: int) -> Triplet:
        """The ``<x_j, j, w_j>`` triplet (zeros if unknown)."""
        if 0 <= j < self._x.shape[0]:
            return Triplet(x=float(self._x[j]), node=j, w=float(self._w[j]))
        return Triplet(x=0.0, node=j, w=0.0)

    def estimate(self, j: int) -> float:
        """Gossiped score ``beta_j = x_j / w_j`` for peer ``j``."""
        return self.triplet(j).estimate

    def known_ids(self) -> Tuple[int, ...]:
        """Peer ids with any mass (x or w) at this node, ascending.

        Cached — halving scales mass but cannot create or destroy known
        ids, so only :meth:`merge` invalidates.
        """
        if self._known is None:
            self._known = tuple(np.flatnonzero((self._x > 0) | (self._w > 0)).tolist())
            self._size = len(self._known)
        return self._known

    def estimates_array(self, n: int) -> np.ndarray:
        """Dense length-``n`` estimate vector (nan where w == 0 and x == 0)."""
        out = np.full(n, np.nan)
        m = min(n, self._x.shape[0])
        x = self._x[:m]
        w = self._w[:m]
        pos = w > 0
        np.divide(x, w, out=out[:m], where=pos)
        out[:m][~pos & (x > 0)] = np.inf
        return out

    @staticmethod
    def estimates_matrix(
        vectors: Sequence["TripletVector"],
        n: int,
        *,
        workspace: Optional[EstimatesWorkspace] = None,
    ) -> np.ndarray:
        """Stacked :meth:`estimates_array` for many vectors in one pass.

        Returns an ``(len(vectors), n)`` matrix — the per-round
        convergence test and the end-of-cycle aggregation both consume
        the whole population at once, so batching replaces O(n) Python
        per node with two matrix ops.

        With a ``workspace`` the matrices are built in its reusable
        buffers (the returned matrix is a view into an alternating
        output slot — valid until the *second* following workspace call;
        copy it if it must live longer).
        """
        m = len(vectors)
        if workspace is None:
            X = np.empty((m, n))
            W = np.empty((m, n))
            out = np.empty((m, n))
        else:
            X, W, out = workspace.arrays(m, n)
        X[:] = 0.0
        W[:] = 0.0
        # hot: population fill loop — writes into the served views only
        for i, tv in enumerate(vectors):
            k = min(n, tv._x.shape[0])
            X[i, :k] = tv._x[:k]
            W[i, :k] = tv._w[:k]
        out.fill(np.nan)
        pos = W > 0
        np.divide(X, W, out=out, where=pos)
        out[~pos & (X > 0)] = np.inf
        return out

    def mass(self) -> Tuple[float, float]:
        """Total ``(sum x, sum w)`` held at this node (conservation checks)."""
        return (float(self._x.sum()), float(self._w.sum()))

    def check_invariants(
        self,
        sanitizer: "InvariantSanitizer",
        *,
        owner: Optional[int] = None,
        step: Optional[int] = None,
    ) -> None:
        """Run the per-node sanitizer checks: finite mass, ``w >= 0``.

        Called by the message-level engines at their convergence-check
        cadence when a sanitizer is armed; raises
        :class:`~repro.errors.InvariantViolation` on breach.
        """
        who = f"node {owner}" if owner is not None else "node"
        sanitizer.check_finite(f"{who} x-mass", self._x, step=step)
        sanitizer.check_finite(f"{who} w-mass", self._w, step=step)
        sanitizer.check_nonnegative(f"{who} w-mass", self._w, step=step)

    def payload_size(self) -> int:
        """Triplet count — proxy for message size in overhead accounting.

        Cached like :meth:`known_ids`, but without materializing the id
        tuple: the count alone is one vectorized scan.
        """
        if self._size is None:
            if self._known is not None:
                self._size = len(self._known)
            else:
                self._size = int(np.count_nonzero((self._x > 0) | (self._w > 0)))
        return self._size

    def copy(self) -> "TripletVector":
        """Deep copy."""
        tv = TripletVector()
        tv._x = self._x.copy()
        tv._w = self._w.copy()
        tv._known = self._known
        tv._size = self._size
        return tv

    def __iter__(self) -> Iterator[Triplet]:
        for j in self.known_ids():
            yield self.triplet(j)

    def __len__(self) -> int:
        return self.payload_size()

    def __repr__(self) -> str:  # pragma: no cover
        return f"TripletVector(known={len(self)})"
