"""Convergence detection for gossip steps and aggregation cycles.

Two nested criteria (Fig. 1(b)):

* **epsilon** — within an aggregation cycle, gossip steps continue until
  every node's estimate moves by at most the gossip error threshold
  ``epsilon`` in one step (Algorithm 1 line 14).
* **delta** — aggregation cycles continue until the *average relative
  error* between ``V(t)`` and ``V(t-1)`` drops below the aggregation
  threshold ``delta`` (§4.1 / Algorithm 2 line 25).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_in_range

__all__ = [
    "average_relative_error",
    "StepConvergenceDetector",
    "CycleConvergenceDetector",
]


def average_relative_error(new: np.ndarray, old: np.ndarray, *, floor: float = 1e-15) -> float:
    """Mean of ``|new_i - old_i| / max(old_i, floor)`` over all components.

    The paper's cycle criterion ("average relative error between V(d)
    and V(d+1)").  ``floor`` guards division when a score is (numerically)
    zero; reputation scores are probabilities so genuine zeros only occur
    for peers nobody rated.
    """
    a = np.asarray(new, dtype=np.float64)
    b = np.asarray(old, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        # No components, no error — and np.mean([]) would warn and
        # return nan, poisoning every comparison downstream.
        return 0.0
    finite = np.isfinite(a) & np.isfinite(b)
    if not finite.any():
        # Nothing comparable: report "infinitely far", never nan, so
        # thresholded callers (residual <= delta) behave monotonically.
        return float("inf")
    denom = np.maximum(np.abs(b[finite]), floor)
    return float(np.mean(np.abs(a[finite] - b[finite]) / denom))


class StepConvergenceDetector:
    """Per-gossip-step epsilon criterion over per-node estimates.

    ``update(estimates)`` returns True once the largest per-node
    *relative* change since the previous step is <= epsilon, all
    estimates are finite, and at least ``min_steps`` updates have been
    observed.  The relative form keeps the criterion scale-free: global
    scores shrink like 1/n, so an absolute threshold would demand very
    different precision at different network sizes.
    """

    def __init__(self, epsilon: float, *, min_steps: int = 1) -> None:
        check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
        if min_steps < 0:
            raise ValidationError(f"min_steps must be >= 0, got {min_steps}")
        self.epsilon = float(epsilon)
        self.min_steps = int(min_steps)
        self._prev: Optional[np.ndarray] = None
        self.steps = 0
        self.last_residual = float("inf")

    def update(self, estimates: np.ndarray) -> bool:
        """Feed this step's estimates; returns convergence verdict."""
        est = np.asarray(estimates, dtype=np.float64)
        converged = False
        # Empty estimate sets carry no convergence signal (rel.max()
        # would raise on a zero-size array); count the step and move on.
        if self._prev is not None and est.shape == self._prev.shape and est.size:
            if np.all(np.isfinite(est)) and np.all(np.isfinite(self._prev)):
                rel = np.abs(est - self._prev) / np.maximum(np.abs(self._prev), 1e-12)
                self.last_residual = float(rel.max())
                converged = self.steps >= self.min_steps and self.last_residual <= self.epsilon
        self._prev = est.copy()
        self.steps += 1
        return converged

    def reset(self) -> None:
        """Forget history (new aggregation cycle)."""
        self._prev = None
        self.steps = 0
        self.last_residual = float("inf")


class CycleConvergenceDetector:
    """Per-aggregation-cycle delta criterion on the reputation vector."""

    def __init__(self, delta: float, *, metric: str = "avg_relative") -> None:
        check_in_range("delta", delta, low=0.0, low_inclusive=False)
        if metric not in ("avg_relative", "l1", "linf"):
            raise ValidationError(f"unknown cycle metric {metric!r}")
        self.delta = float(delta)
        self.metric = metric
        self._prev: Optional[np.ndarray] = None
        self.cycles = 0
        self.last_residual = float("inf")

    def _distance(self, new: np.ndarray, old: np.ndarray) -> float:
        if self.metric == "avg_relative":
            return average_relative_error(new, old)
        diff = np.abs(new - old)
        return float(diff.sum()) if self.metric == "l1" else float(diff.max())

    def update(self, vector: np.ndarray) -> bool:
        """Feed this cycle's vector; returns convergence verdict."""
        v = np.asarray(vector, dtype=np.float64)
        converged = False
        # Zero-size vectors would crash the linf max (and make the
        # l1/avg metrics vacuous); treat them as "no signal yet".
        if self._prev is not None and v.size:
            self.last_residual = self._distance(v, self._prev)
            # A nan residual (non-finite inputs) must block convergence;
            # `nan < delta` is False, which is exactly that.
            converged = self.last_residual < self.delta
        self._prev = v.copy()
        self.cycles += 1
        return converged

    def reset(self) -> None:
        """Forget history (fresh aggregation)."""
        self._prev = None
        self.cycles = 0
        self.last_residual = float("inf")
