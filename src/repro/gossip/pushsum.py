"""Algorithm 1 — push-sum gossip for a single peer's global score.

Every node ``i`` holds a pair ``(x_i, w_i)``.  Per step it keeps half of
each and sends the other half to one uniformly random node; received
halves are summed (Eqs. 3-4).  The column sums ``sum_i x_i`` and
``sum_i w_i`` are invariant (mass conservation), and each node's ratio
``beta_i = x_i / w_i`` converges exponentially fast to
``sum x / sum w`` — which, with ``x_i(0) = s_ij * v_i(t)`` and
``w_i(0) = [i == j]``, is exactly ``v_j(t+1)`` of Eq. 2.

Two entry points:

* :func:`push_sum` — random-partner simulation of one scalar aggregation,
  vectorized over all nodes.
* :func:`scripted_push_sum` — partners supplied per step, used to replay
  the paper's Fig. 2 / Table 1 three-node worked example bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_vector

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitizer import InvariantSanitizer

__all__ = ["PushSumResult", "push_sum", "scripted_push_sum", "push_sum_step"]

#: floor for relative-change denominators; genuine zero estimates (peers
#: with no inbound trust mass) compare as absolute changes against this
_REL_FLOOR = 1e-12


@dataclass
class PushSumResult:
    """Outcome of a push-sum run.

    Attributes
    ----------
    estimates:
        Per-node gossiped scores ``beta_i = x_i / w_i`` at termination.
    steps:
        Gossip steps executed.
    converged:
        Whether the epsilon criterion was met within the step budget.
    x, w:
        Final per-node masses (exposed for invariant checks).
    history:
        Optional per-step snapshots of ``(x, w)`` (only when recorded).
    """

    estimates: np.ndarray
    steps: int
    converged: bool
    x: np.ndarray
    w: np.ndarray
    history: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    @property
    def value(self) -> float:
        """The consensus estimate (node-wise mean of finite estimates)."""
        finite = self.estimates[np.isfinite(self.estimates)]
        if finite.size == 0:
            return float("nan")
        return float(finite.mean())


def push_sum_step(
    x: np.ndarray, w: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One synchronous push-sum step given each node's chosen target.

    Node ``i`` keeps ``(x_i/2, w_i/2)`` and delivers the other half to
    ``targets[i]``.  The inbound halves are grouped with ``np.bincount``
    (a C segment-sum keyed on the target ids) rather than the much
    slower unbuffered ``np.add.at`` — same sender-ascending accumulation
    order per receiver, so scripted replays stay bit-for-bit.
    """
    n = x.shape[0]
    if targets.shape != (n,):
        raise ValidationError(f"targets must have shape ({n},), got {targets.shape}")
    half_x = 0.5 * x
    half_w = 0.5 * w
    new_x = half_x + np.bincount(targets, weights=half_x, minlength=n)
    new_w = half_w + np.bincount(targets, weights=half_w, minlength=n)
    return new_x, new_w


def _estimates(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Per-node beta = x/w with 0/0 -> nan and x/0 -> inf, silently."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(w > 0, x / np.where(w > 0, w, 1.0), np.where(x > 0, np.inf, np.nan))


def push_sum(
    x0: np.ndarray,
    w0: np.ndarray,
    *,
    epsilon: float = 1e-4,
    max_steps: int = 10_000,
    min_steps: int = 1,
    stable_steps: int = 2,
    rng: SeedLike = None,
    record_history: bool = False,
    raise_on_budget: bool = True,
    sanitizer: "Optional[InvariantSanitizer]" = None,
) -> PushSumResult:
    """Run push-sum with uniform random partners until the epsilon criterion.

    Termination follows Algorithm 1 line 14 with a *relative* reading:
    every node's estimate must move by at most a ``epsilon`` fraction of
    its previous value across one step, *and* every node must hold
    positive consensus mass (``w_i > 0``) so its estimate is defined.
    The relative form keeps the criterion scale-free — global scores
    shrink as ``1/n``, so an absolute threshold would mean wildly
    different precision at different network sizes.  ``min_steps``
    guards against vacuous convergence at step 0, and the criterion must
    hold for ``stable_steps`` *consecutive* steps: a single quiet step
    can be a coincidence (e.g. two nodes swapping equal shares leaves
    every estimate unchanged without any convergence), which small
    networks do hit in practice.

    Parameters
    ----------
    x0, w0:
        Initial weighted-score and consensus-factor masses; ``w0`` must
        carry positive total mass.
    epsilon:
        Gossip error threshold (Table 2 default: ``1e-4``).
    max_steps:
        Step budget; exceeding it raises :class:`ConvergenceError`
        unless ``raise_on_budget=False``.
    rng:
        Partner-choice randomness.
    record_history:
        Keep per-step ``(x, w)`` snapshots (tests and the worked example).
    sanitizer:
        Optional armed :class:`~repro.analysis.sanitizer.InvariantSanitizer`;
        when given, mass conservation and ``w >= 0`` are checked after
        every step and any breach raises
        :class:`~repro.errors.InvariantViolation`.

    Returns
    -------
    PushSumResult
    """
    x = check_vector("x0", np.asarray(x0, dtype=np.float64))
    n = x.shape[0]
    w = check_vector("w0", np.asarray(w0, dtype=np.float64), size=n)
    if np.any(x < 0) or np.any(w < 0):
        raise ValidationError("push-sum masses must be non-negative")
    if w.sum() <= 0:
        raise ValidationError("total consensus mass must be positive")
    check_in_range("epsilon", epsilon, low=0.0, low_inclusive=False)
    if n == 1:
        est = _estimates(x, w)
        return PushSumResult(estimates=est, steps=0, converged=True, x=x, w=w)
    if stable_steps < 1:
        raise ValidationError(f"stable_steps must be >= 1, got {stable_steps}")
    gen = as_generator(rng)
    if sanitizer is not None:
        sanitizer.begin_cycle("push-sum")
        x_mass = float(x.sum())
        w_mass = float(w.sum())

    history: List[Tuple[np.ndarray, np.ndarray]] = []
    prev = _estimates(x, w)
    ids = np.arange(n)
    quiet = 0
    for step in range(1, max_steps + 1):
        targets = gen.integers(0, n - 1, size=n)
        targets[targets >= ids] += 1  # uniform over others, never self
        x, w = push_sum_step(x, w, targets)
        if sanitizer is not None:
            sanitizer.check_mass("sum(x)", float(x.sum()), x_mass, step=step)
            sanitizer.check_mass("sum(w)", float(w.sum()), w_mass, step=step)
            sanitizer.check_nonnegative("w", w, step=step)
        if record_history:
            history.append((x.copy(), w.copy()))
        est = _estimates(x, w)
        if step >= min_steps and np.all(w > 0):
            # Relative per-step change (scale-free in n): |beta - u| / u.
            # inf/nan in prev (nodes without w mass last step) propagate
            # into delta and correctly block convergence below.
            with np.errstate(invalid="ignore"):
                delta = np.abs(est - prev) / np.maximum(np.abs(prev), _REL_FLOOR)
            if np.all(np.isfinite(delta)) and float(delta.max()) <= epsilon:
                quiet += 1
                if quiet >= stable_steps:
                    return PushSumResult(
                        estimates=est, steps=step, converged=True, x=x, w=w, history=history
                    )
            else:
                quiet = 0
        prev = est
    if raise_on_budget:
        with np.errstate(invalid="ignore"):
            residual = float(np.nanmax(np.abs(_estimates(x, w) - prev)))
        raise ConvergenceError(
            f"push-sum did not converge within {max_steps} steps (epsilon={epsilon})",
            steps=max_steps,
            residual=residual,
        )
    return PushSumResult(
        estimates=_estimates(x, w), steps=max_steps, converged=False, x=x, w=w, history=history
    )


def scripted_push_sum(
    x0: Sequence[float],
    w0: Sequence[float],
    partner_script: Sequence[Sequence[int]],
) -> PushSumResult:
    """Push-sum with an explicit partner choice per node per step.

    ``partner_script[k][i]`` is the node that ``i`` sends its half-share
    to at step ``k+1``.  Used to replay deterministic examples — the
    paper's Fig. 2 / Table 1 run is ``[[2, 0, 0], [1, 2, 1]]``.
    """
    x = np.asarray(x0, dtype=np.float64)
    w = np.asarray(w0, dtype=np.float64)
    if x.shape != w.shape or x.ndim != 1:
        raise ValidationError("x0 and w0 must be equal-length vectors")
    n = x.shape[0]
    history: List[Tuple[np.ndarray, np.ndarray]] = []
    for step_partners in partner_script:
        targets = np.asarray(step_partners, dtype=np.int64)
        if targets.shape != (n,):
            raise ValidationError(
                f"each script step needs {n} partners, got {targets.shape}"
            )
        if np.any(targets < 0) or np.any(targets >= n):
            raise ValidationError("partner ids out of range")
        if np.any(targets == np.arange(n)):
            raise ValidationError("a node cannot choose itself as the random partner")
        x, w = push_sum_step(x, w, targets)
        history.append((x.copy(), w.copy()))
    return PushSumResult(
        estimates=_estimates(x, w),
        steps=len(history),
        converged=True,
        x=x,
        w=w,
        history=history,
    )
