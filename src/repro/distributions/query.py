"""Two-segment Zipf query-popularity distribution (§6.4).

The paper models Gnutella query popularity with a piecewise power law:
exponent ``phi = 0.63`` for queries ranked 1 to 250 and ``phi = 1.24``
for lower-ranked queries.  The two segments are stitched continuously at
the break rank so the pmf has no discontinuity spike.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range

__all__ = ["TwoSegmentZipf"]


class TwoSegmentZipf:
    """Piecewise Zipf over ranks ``1..n`` with a break at ``break_rank``.

    ``weight(r) = r ** -head_exponent`` for ``r <= break_rank`` and
    ``c * r ** -tail_exponent`` beyond, with ``c`` chosen so the two
    segments meet continuously at the break.

    Parameters
    ----------
    n:
        Total number of ranks (distinct queries).
    head_exponent:
        Zipf exponent of the popular head (paper: 0.63).
    tail_exponent:
        Zipf exponent of the tail (paper: 1.24).
    break_rank:
        Last rank of the head segment (paper: 250).
    """

    def __init__(
        self,
        n: int,
        head_exponent: float = 0.63,
        tail_exponent: float = 1.24,
        break_rank: int = 250,
    ):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        check_in_range("head_exponent", head_exponent, low=0.0)
        check_in_range("tail_exponent", tail_exponent, low=0.0)
        if break_rank < 1:
            raise ValidationError(f"break_rank must be >= 1, got {break_rank}")
        self.n = int(n)
        self.head_exponent = float(head_exponent)
        self.tail_exponent = float(tail_exponent)
        self.break_rank = min(int(break_rank), self.n)

        ranks = np.arange(1, self.n + 1, dtype=np.float64)
        weights = np.empty(self.n, dtype=np.float64)
        head = ranks[: self.break_rank]
        weights[: self.break_rank] = head**-self.head_exponent
        if self.break_rank < self.n:
            # Continuity constant: both forms agree at the break rank.
            b = float(self.break_rank)
            c = (b**-self.head_exponent) / (b**-self.tail_exponent)
            tail = ranks[self.break_rank :]
            weights[self.break_rank :] = c * tail**-self.tail_exponent
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._cdf[-1] = 1.0

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each rank (index 0 is rank 1)."""
        return self._pmf.copy()

    def sample_ranks(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``size`` query ranks in ``{1..n}`` (1-based, like the paper)."""
        if size < 0:
            raise ValidationError(f"size must be >= 0, got {size}")
        gen = as_generator(rng)
        u = gen.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64) + 1

    def probability(self, rank: int) -> float:
        """Probability mass of a single rank."""
        check_in_range("rank", rank, low=1, high=self.n)
        return float(self._pmf[int(rank) - 1])

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TwoSegmentZipf(n={self.n}, head={self.head_exponent}, "
            f"tail={self.tail_exponent}, break_rank={self.break_rank})"
        )
