"""Stochastic workload distributions used throughout the simulations.

The paper parameterizes its workloads with a handful of heavy-tailed
distributions:

* peer feedback counts — discrete bounded power law with max
  ``d_max = 200`` and mean ``d_avg = 20`` (:mod:`repro.distributions.powerlaw`),
* file copy counts — power law with popularity rate ``phi = 1.2``,
* query popularity — two-segment Zipf, exponent 0.63 for ranks 1-250
  and 1.24 below (:mod:`repro.distributions.query`),
* files per peer — Saroiu-style measured Gnutella ownership, modeled as
  a bounded Pareto (:mod:`repro.distributions.saroiu`).
"""

from repro.distributions.powerlaw import (
    BoundedZipf,
    FeedbackCountDistribution,
    powerlaw_weights,
    solve_zipf_exponent_for_mean,
)
from repro.distributions.query import TwoSegmentZipf
from repro.distributions.saroiu import SaroiuFileOwnership

__all__ = [
    "BoundedZipf",
    "FeedbackCountDistribution",
    "powerlaw_weights",
    "solve_zipf_exponent_for_mean",
    "TwoSegmentZipf",
    "SaroiuFileOwnership",
]
