"""Saroiu-style file-ownership distribution.

§6.4 assigns "each peer ... a number of files based on the Sarioiu
distribution", referring to the Saroiu et al. measurement study of
Napster/Gnutella hosts.  That study reports a heavily skewed share
distribution: roughly a quarter of peers share nothing (free riders),
most sharers hold a few dozen files, and a small head shares thousands.

**Substitution note (see DESIGN.md):** the original CDF tables are not
redistributable, so we model the measurement with the standard
approximation used in P2P simulators: a free-rider point mass at zero
plus a bounded Pareto body.  The defaults (25% free riders, shape 1.2,
range 1..10_000) match the study's headline statistics — the qualitative
property the experiments need is only that file placement is highly
skewed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_probability

__all__ = ["SaroiuFileOwnership"]


class SaroiuFileOwnership:
    """Files-per-peer distribution: free-rider mass + bounded Pareto body.

    Parameters
    ----------
    free_rider_fraction:
        Probability a peer shares zero files (Saroiu: ~25% on Gnutella).
    shape:
        Pareto tail index of the sharing body.
    min_files, max_files:
        Support of the sharing body (inclusive bounds).
    """

    def __init__(
        self,
        free_rider_fraction: float = 0.25,
        shape: float = 1.2,
        min_files: int = 1,
        max_files: int = 10_000,
    ):
        check_probability("free_rider_fraction", free_rider_fraction)
        check_in_range("shape", shape, low=0.0, low_inclusive=False)
        if min_files < 1:
            raise ValidationError(f"min_files must be >= 1, got {min_files}")
        if max_files < min_files:
            raise ValidationError(
                f"max_files must be >= min_files, got {max_files} < {min_files}"
            )
        self.free_rider_fraction = float(free_rider_fraction)
        self.shape = float(shape)
        self.min_files = int(min_files)
        self.max_files = int(max_files)

    def _bounded_pareto(self, size: int, gen: np.random.Generator) -> np.ndarray:
        """Inverse-CDF sampling of the bounded Pareto on [min, max]."""
        a = self.shape
        lo = float(self.min_files)
        hi = float(self.max_files) + 1.0  # +1 so flooring can reach max_files
        u = gen.random(size)
        # Bounded Pareto inverse CDF.
        x = (lo**-a - u * (lo**-a - hi**-a)) ** (-1.0 / a)
        return np.minimum(np.floor(x).astype(np.int64), self.max_files)

    def sample_counts(self, n_peers: int, rng: SeedLike = None) -> np.ndarray:
        """File counts for ``n_peers`` peers (zeros are free riders)."""
        if n_peers < 0:
            raise ValidationError(f"n_peers must be >= 0, got {n_peers}")
        gen = as_generator(rng)
        counts = self._bounded_pareto(n_peers, gen)
        free = gen.random(n_peers) < self.free_rider_fraction
        counts[free] = 0
        return counts

    def expected_sharer_fraction(self) -> float:
        """Fraction of peers expected to share at least one file."""
        return 1.0 - self.free_rider_fraction

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SaroiuFileOwnership(free_riders={self.free_rider_fraction}, "
            f"shape={self.shape}, range=[{self.min_files}, {self.max_files}])"
        )
