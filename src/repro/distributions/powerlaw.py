"""Discrete bounded power-law (Zipf) samplers.

Two uses in the paper's evaluation:

* **Feedback counts** (§6.1): the number of feedbacks each node issues
  is power-law distributed with maximum ``d_max = 200`` and mean
  ``d_avg = 20``.  :class:`FeedbackCountDistribution` solves for the
  Zipf exponent that hits the requested mean on the support
  ``{1, ..., d_max}``.
* **File copy counts** (§6.4): copies of the rank-``i`` file are
  proportional to ``i ** -phi`` with popularity rate ``phi = 1.2``;
  :func:`powerlaw_weights` builds those rank weights.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "powerlaw_weights",
    "solve_zipf_exponent_for_mean",
    "BoundedZipf",
    "FeedbackCountDistribution",
]


def powerlaw_weights(n: int, exponent: float) -> np.ndarray:
    """Unnormalized power-law rank weights ``w_i = i ** -exponent``.

    Parameters
    ----------
    n:
        Number of ranks (support is ranks ``1..n``).
    exponent:
        Power-law exponent (``phi`` in the paper); must be >= 0.

    Returns
    -------
    numpy.ndarray
        Length-``n`` positive weight vector (not normalized).
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    check_in_range("exponent", exponent, low=0.0)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return ranks**-exponent


def _zipf_mean(exponent: float, kmax: int) -> float:
    """Mean of the bounded Zipf distribution on ``{1..kmax}``."""
    k = np.arange(1, kmax + 1, dtype=np.float64)
    w = k**-exponent
    return float((k * w).sum() / w.sum())


def solve_zipf_exponent_for_mean(
    target_mean: float, kmax: int, *, tol: float = 1e-10, max_iter: int = 200
) -> float:
    """Find the bounded-Zipf exponent whose mean on ``{1..kmax}`` is ``target_mean``.

    The mean of the bounded Zipf on ``{1..kmax}`` decreases monotonically
    in the exponent, from ``(kmax+1)/2`` at exponent 0 toward 1 as the
    exponent grows, so bisection converges unconditionally for any
    feasible target.

    Raises
    ------
    ValidationError
        If ``target_mean`` is outside the attainable range
        ``(1, (kmax+1)/2]``.
    """
    if kmax < 1:
        raise ValidationError(f"kmax must be >= 1, got {kmax}")
    check_positive("target_mean", target_mean)
    hi_mean = (kmax + 1) / 2.0
    if not 1.0 < target_mean <= hi_mean:
        raise ValidationError(
            f"target_mean must lie in (1, {hi_mean}] for kmax={kmax}, got {target_mean}"
        )
    lo, hi = 0.0, 1.0
    # Expand hi until the mean drops below the target.
    while _zipf_mean(hi, kmax) > target_mean:
        hi *= 2.0
        if hi > 64:  # pragma: no cover - defensive; mean -> 1 well before this
            break
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if _zipf_mean(mid, kmax) > target_mean:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


class BoundedZipf:
    """Zipf distribution truncated to the support ``{1, ..., kmax}``.

    Unlike :func:`numpy.random.Generator.zipf` this supports exponents
    <= 1 (the untruncated Zipf is only defined for exponent > 1) and
    never samples outside the bound — both required by the paper's
    workloads.
    """

    def __init__(self, exponent: float, kmax: int):
        check_in_range("exponent", exponent, low=0.0)
        if kmax < 1:
            raise ValidationError(f"kmax must be >= 1, got {kmax}")
        self.exponent = float(exponent)
        self.kmax = int(kmax)
        weights = powerlaw_weights(self.kmax, self.exponent)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # Guard against cumulative rounding leaving the last entry < 1.
        self._cdf[-1] = 1.0

    @property
    def pmf(self) -> np.ndarray:
        """Probability mass over ``{1..kmax}`` (index 0 is k=1)."""
        return self._pmf.copy()

    @property
    def mean(self) -> float:
        """Expected value of the distribution."""
        k = np.arange(1, self.kmax + 1, dtype=np.float64)
        return float((k * self._pmf).sum())

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``size`` iid values in ``{1..kmax}`` by inverse CDF."""
        if size < 0:
            raise ValidationError(f"size must be >= 0, got {size}")
        gen = as_generator(rng)
        u = gen.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64) + 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"BoundedZipf(exponent={self.exponent:.4f}, kmax={self.kmax})"


class FeedbackCountDistribution(BoundedZipf):
    """Feedback-count distribution of §6.1: bounded power law.

    The paper fixes the maximum feedback amount ``d_max = 200`` and the
    average ``d_avg = 20``; the exponent is whatever bounded-Zipf
    exponent realizes that mean.

    Parameters
    ----------
    d_max:
        Largest number of feedbacks any single node issues.
    d_avg:
        Target average feedback count across nodes.
    """

    def __init__(self, d_max: int = 200, d_avg: float = 20.0):
        if d_max < 1:
            raise ValidationError(f"d_max must be >= 1, got {d_max}")
        check_in_range("d_avg", d_avg, low=1.0, high=float(d_max), low_inclusive=False)
        exponent = solve_zipf_exponent_for_mean(float(d_avg), int(d_max))
        super().__init__(exponent, int(d_max))
        self.d_max = int(d_max)
        self.d_avg = float(d_avg)

    def sample_counts(self, n_nodes: int, rng: SeedLike = None) -> np.ndarray:
        """Feedback counts for ``n_nodes`` peers, each in ``{1..d_max}``."""
        return self.sample(n_nodes, rng)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FeedbackCountDistribution(d_max={self.d_max}, d_avg={self.d_avg}, "
            f"exponent={self.exponent:.4f})"
        )
