"""Shadow-ownership race sanitizer: protocol, injection, and parity.

Three layers of proof that the GT006 invariant also holds (and is
*checkable*) at runtime:

* the :class:`~repro.analysis.sanitizer.ShardOwnershipGuard` lease /
  claim / collect protocol trips on every illegal transition;
* an injected overlapping dispatch through the *real*
  :func:`~repro.gossip.shard_exec.advance_shard` path raises
  :class:`~repro.errors.InvariantViolation` naming shard, slot, cycle;
* armed runs (``REPRO_SANITIZE=1`` semantics via
  :func:`~repro.analysis.sanitizer.set_sanitize_enabled`) stay bitwise
  identical to the serial kernel across the shard x worker grid.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.analysis.sanitizer import (
    ShardOwnershipGuard,
    sanitize_enabled,
    set_sanitize_enabled,
)
from repro.errors import InvariantViolation
from repro.experiments.synthetic import synthetic_trust_matrix
from repro.gossip import shard_exec
from repro.gossip.engine import SparseWorkspace
from repro.gossip.factory import make_engine
from repro.gossip.memory import make_backend
from repro.utils.rng import RngStreams

SEED = 0
EPSILON = 1e-4


def _guard(shards=2):
    return ShardOwnershipGuard(
        np.zeros((shards, 3), dtype=np.int64), engine="test"
    )


class TestGuardProtocol:
    def test_lease_claim_collect_roundtrip(self):
        g = _guard()
        g.begin_cycle()
        t = g.lease(0, step=0)
        assert t > 0
        g.claim(0, t, step=0)
        g.collect(0, t, step=0)
        assert not g.epochs.any()  # all cells free again

    def test_tickets_are_unique_per_lease(self):
        g = _guard()
        t0 = g.lease(0)
        t1 = g.lease(1)
        assert t0 != t1

    def test_double_lease_raises(self):
        g = _guard()
        g.begin_cycle()
        g.lease(0, step=4)
        with pytest.raises(InvariantViolation) as ei:
            g.lease(0, step=4)
        assert ei.value.invariant == "shard-ownership"
        assert ei.value.shard == 0
        assert ei.value.slot == 0
        assert ei.value.cycle == 1
        assert "overlapping dispatch" in str(ei.value)

    def test_claim_without_lease_raises(self):
        g = _guard()
        with pytest.raises(InvariantViolation) as ei:
            g.claim(1, 99)
        assert ei.value.shard == 1
        assert "never leased" in str(ei.value)

    def test_double_claim_is_the_overlap_race(self):
        g = _guard()
        t = g.lease(0)
        g.claim(0, t)
        with pytest.raises(InvariantViolation) as ei:
            g.claim(0, t)
        assert "overlapping write" in str(ei.value)

    def test_collect_of_unclaimed_lease_raises(self):
        g = _guard()
        t = g.lease(0)
        with pytest.raises(InvariantViolation) as ei:
            g.collect(0, t)
        assert "never claimed" in str(ei.value)

    def test_begin_cycle_rejects_stale_lease(self):
        g = _guard()
        g.lease(0)
        with pytest.raises(InvariantViolation) as ei:
            g.begin_cycle()
        assert "stale lease" in str(ei.value)

    def test_parent_write_blocked_while_leased(self):
        g = _guard()
        g.register_pool("s0-X", 0, 0)
        g.check_parent_write("s0-X")  # free: fine
        g.lease(0)
        with pytest.raises(InvariantViolation) as ei:
            g.check_parent_write("s0-X", what="load")
        assert "parent-side load" in str(ei.value)

    def test_unregistered_labels_are_untracked(self):
        g = _guard()
        g.lease(0)
        g.check_parent_write("targets")  # no slot binding: no check

    def test_epoch_map_shape_validated(self):
        with pytest.raises(ValueError):
            ShardOwnershipGuard(np.zeros((2, 2), dtype=np.int64))


class TestRaceInjection:
    """Overlapping dispatch through the real worker step path."""

    def _workspace(self, n=16, p=4, shards=2):
        ws = SparseWorkspace(
            n, p, np.float64, make_backend("shared"),
            0, shards, 2, 4, True,
        )
        assert ws.guard is not None
        rng = np.random.default_rng(SEED)
        for si, triple in enumerate(ws.shard_pools):
            ps = ws.bounds[si + 1] - ws.bounds[si]
            x = sparse.random(n, ps, density=0.4, random_state=rng, format="csr")
            triple[0].load(sparse.csr_matrix(x))
            triple[1].load(sparse.csr_matrix(x))
        ws.targets[:] = rng.integers(n, size=ws.targets.shape)
        return ws

    def _attach_in_process(self, ws):
        shard_exec.init_worker(shard_exec.workspace_spec(ws))

    def _teardown(self, ws):
        for keeper in shard_exec._CTX.get("keepers", []):
            close = getattr(keeper, "close", None)
            if close is not None:
                close()
        shard_exec._CTX.clear()
        ws.invalidate()

    def test_leased_window_steps_clean(self):
        ws = self._workspace()
        try:
            self._attach_in_process(ws)
            ws.guard.begin_cycle("sync")
            t0 = ws.guard.lease(0, step=0)
            t1 = ws.guard.lease(1, step=0)
            assert shard_exec.advance_shard(0, 0, 2, (0, 1, 2), t0) == 0
            assert shard_exec.advance_shard(1, 0, 2, (0, 1, 2), t1) == 1
            ws.guard.collect(0, t0, step=0)
            ws.guard.collect(1, t1, step=0)
        finally:
            self._teardown(ws)

    def test_overlapping_dispatch_is_caught(self):
        """Two tasks mapped onto one shard in the same window: the
        second claim sees the first task's epoch and raises instead of
        silently racing on the shared pools."""
        ws = self._workspace()
        try:
            self._attach_in_process(ws)
            ws.guard.begin_cycle("sync")
            ticket = ws.guard.lease(0, step=0)
            shard_exec.advance_shard(0, 0, 1, (0, 1, 2), ticket)
            with pytest.raises(InvariantViolation) as ei:
                shard_exec.advance_shard(0, 0, 1, (0, 1, 2), ticket)
            assert ei.value.invariant == "shard-ownership"
            assert ei.value.shard == 0
            assert ei.value.slot is not None
            assert "overlapping write" in str(ei.value)
        finally:
            self._teardown(ws)

    def test_wrong_shard_task_is_caught(self):
        """A task whose shard argument drifted writes pools it was
        never leased — caught before the first SpGEMM."""
        ws = self._workspace()
        try:
            self._attach_in_process(ws)
            ws.guard.begin_cycle("sync")
            ticket = ws.guard.lease(0, step=0)
            with pytest.raises(InvariantViolation) as ei:
                shard_exec.advance_shard(1, 0, 1, (0, 1, 2), ticket)
            assert ei.value.shard == 1
            assert "never leased" in str(ei.value)
        finally:
            self._teardown(ws)

    def test_parent_pool_load_during_window_is_caught(self):
        """The parent reloading a pool while a worker window holds its
        lease is the same race from the other side (CsrPool hook)."""
        ws = self._workspace()
        try:
            ws.guard.begin_cycle("sync")
            ws.guard.lease(0, step=0)
            pool = ws.physical[0][0]
            mat = pool.tocsr()
            with pytest.raises(InvariantViolation) as ei:
                pool.load(mat)
            assert "parent-side load" in str(ei.value)
        finally:
            ws.invalidate()


class TestSanitizedParity:
    """Armed runs replay the serial kernel bitwise across the grid."""

    @pytest.fixture(autouse=True)
    def _armed(self):
        set_sanitize_enabled(True)
        assert sanitize_enabled()
        yield
        set_sanitize_enabled(None)

    def _run(self, n, S, v, **opts):
        eng = make_engine(
            "sync", n=n, rng=RngStreams(SEED), epsilon=EPSILON,
            mode="probe", kernel="sparse", **opts,
        )
        try:
            res = eng.run_cycle(S, v)
            guard = eng.sparse_workspace.guard
            cycle = guard.cycle if guard is not None else 0
            leased = bool(guard.epochs.any()) if guard is not None else False
            return res, guard is not None, cycle, leased
        finally:
            eng.invalidate_workspace()

    @pytest.mark.parametrize("shards", [2, 7])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_grid_matches_serial_bitwise(self, shards, workers):
        n = 128
        S = synthetic_trust_matrix(n, rng=RngStreams(SEED).get("matrix"))
        v = np.full(n, 1.0 / n)
        base, _, _, _ = self._run(n, S, v)
        opts = {"shards": shards, "shard_workers": workers}
        if workers > 1:
            opts["workspace_backend"] = "shared"
        res, guarded, cycle, leased = self._run(n, S, v, **opts)
        assert res.steps == base.steps
        np.testing.assert_array_equal(res.v_next, base.v_next)
        assert res.gossip_error == base.gossip_error
        # Parallel runs actually carried the guard; serial ones don't.
        if workers > 1:
            assert guarded and cycle == 1
            assert not leased  # every window was collected
        else:
            assert not guarded
