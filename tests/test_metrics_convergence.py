"""Theoretical cycle bound and step statistics."""

import pytest

from repro.core.aggregation import exact_global_reputation
from repro.core.config import GossipTrustConfig
from repro.errors import ValidationError
from repro.metrics.convergence import StepStats, theoretical_cycle_bound


class TestCycleBound:
    def test_bound_dominates_measured_cycles(self, random_S):
        # d <= ceil(log_b delta); verify against an actual alpha=0 run.
        delta = 1e-4
        bound = theoretical_cycle_bound(random_S, delta)
        cfg = GossipTrustConfig(n=random_S.n, alpha=0.0, delta=delta)
        res = exact_global_reputation(random_S, cfg, raise_on_budget=False)
        assert res.cycles <= bound + 2  # +2: bound is on eigen-gap decay

    def test_smaller_delta_larger_bound(self, random_S):
        assert theoretical_cycle_bound(random_S, 1e-6) > theoretical_cycle_bound(
            random_S, 1e-2
        )

    def test_degenerate_gap_sentinel(self):
        import numpy as np

        # Periodic 2-cycle chain: |lambda_2| == lambda_1 == 1.
        S = np.array([[0.0, 1.0], [1.0, 0.0]])
        from repro.trust.matrix import TrustMatrix

        assert theoretical_cycle_bound(TrustMatrix.from_dense_raw(S + 0.0), 1e-3) == 10_000

    def test_delta_validation(self, random_S):
        with pytest.raises(ValidationError):
            theoretical_cycle_bound(random_S, 0.0)


class TestStepStats:
    def test_summary_fields(self):
        stats = StepStats.from_counts([10, 20, 30])
        assert stats.mean == 20.0
        assert stats.minimum == 10
        assert stats.maximum == 30
        assert stats.count == 3

    def test_str_rendering(self):
        s = str(StepStats.from_counts([5, 5]))
        assert "5.0" in s and "min 5" in s

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            StepStats.from_counts([])
