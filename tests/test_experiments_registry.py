"""Registry and result plumbing."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult, mean_std, seed_range
from repro.experiments.registry import (
    QUICK_OVERRIDES,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.metrics.reporting import Series, TextTable


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(list_experiments())
        assert {"table1", "fig3", "table3", "fig4a", "fig4b", "fig5"} <= ids

    def test_every_experiment_has_quick_overrides(self):
        assert set(QUICK_OVERRIDES) == set(list_experiments())

    def test_get_unknown_raises_with_known_list(self):
        with pytest.raises(ExperimentError, match="fig3"):
            get_experiment("fig99")

    def test_run_experiment_forwards_overrides(self):
        res = run_experiment("table1")
        assert res.experiment_id == "table1"

    def test_explicit_override_beats_quick(self):
        res = run_experiment(
            "storage", quick=True, bracket_bits=(5,), repeats=1, n=100
        )
        assert list(res.data) == ["5"]


class TestExperimentResult:
    def test_render_includes_everything(self):
        t = TextTable(["a"])
        t.add_row([1])
        s = Series("curve")
        s.add(1, 2)
        res = ExperimentResult(
            experiment_id="x",
            title="demo",
            tables=[t],
            series=[s],
            notes=["caveat"],
        )
        out = res.render()
        assert "== x: demo ==" in out
        assert "caveat" in out
        assert "curve:" in out

    def test_series_by_label(self):
        res = ExperimentResult("x", "t", series=[Series("a"), Series("b")])
        assert res.series_by_label("b").label == "b"
        with pytest.raises(ExperimentError):
            res.series_by_label("c")


class TestHelpers:
    def test_seed_range(self):
        assert list(seed_range(3)) == [0, 1, 2]
        with pytest.raises(ExperimentError):
            seed_range(0)

    def test_mean_std(self):
        m, s = mean_std([1.0, 3.0])
        assert m == 2.0
        assert s == 1.0
        with pytest.raises(ExperimentError):
            mean_std([])
