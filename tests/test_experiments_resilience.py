"""Churn-resilience sweep: axes, determinism, worker bit-identity."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.churn_resilience import run_churn_resilience
from repro.experiments.registry import run_experiment


SMALL = dict(
    n=32,
    strategies=("global", "hyparview"),
    plans=("crash",),
    engines=("message",),
    repeats=1,
)


class TestSweep:
    def test_quick_registry_run(self):
        result = run_experiment("resilience", quick=True, n=32)
        assert result.experiment_id == "resilience"
        assert result.tables and result.series
        # One raw error entry (plus /isolated and /overhead) per cell.
        errors = {
            k: v
            for k, v in result.data.items()
            if not k.endswith(("/isolated", "/overhead"))
        }
        assert len(errors) == 2  # 2 strategies x 1 plan x 1 engine
        for v in errors.values():
            assert v == v and v < 1.0  # finite, gracefully degraded

    def test_unknown_plan_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault plan"):
            run_churn_resilience(**{**SMALL, "plans": ("meteor",)})

    def test_singular_kwargs_restrict_axes(self):
        result = run_churn_resilience(
            **{**SMALL, "strategy": "global", "plan": "crash", "engine": "message"}
        )
        cells = [
            k for k in result.data if not k.endswith(("/isolated", "/overhead"))
        ]
        assert cells == ["message/global/crash"]

    def test_bare_string_axes_are_one_value(self):
        # `--set plans=partition` (no comma) reaches the sweep as a bare
        # string; it must mean one plan, not its characters.
        result = run_churn_resilience(
            **{
                **SMALL,
                "strategies": "global",
                "plans": "crash",
                "engines": "message",
            }
        )
        cells = [
            k for k in result.data if not k.endswith(("/isolated", "/overhead"))
        ]
        assert cells == ["message/global/crash"]

    def test_partial_views_not_permanently_isolated(self):
        result = run_churn_resilience(
            n=32,
            strategies=("hyparview", "brahms"),
            plans=("crash",),
            engines=("message",),
            repeats=1,
        )
        for strat in ("hyparview", "brahms"):
            assert result.data[f"message/{strat}/crash/isolated"] == 0.0


class TestDeterminism:
    def test_workers_bit_identical(self):
        """The sweep-runner contract: workers=4 replays workers=1 exactly."""
        kwargs = dict(SMALL, repeats=2)
        serial = run_churn_resilience(workers=1, **kwargs)
        fanned = run_churn_resilience(workers=4, **kwargs)
        assert serial.data == fanned.data

    def test_repeat_runs_identical(self):
        a = run_churn_resilience(**SMALL)
        b = run_churn_resilience(**SMALL)
        assert a.data == b.data
