"""EigenTrust baselines: fixed points and DHT overhead accounting."""

import numpy as np
import pytest

from repro.baselines.centralized import CentralizedEigenvector
from repro.baselines.eigentrust import DistributedEigenTrust, EigenTrust
from repro.errors import ValidationError


class TestBasicEigenTrust:
    def test_a_zero_limit_matches_eigenvector(self, random_S):
        res = EigenTrust(random_S, a=1e-12).compute()
        oracle = CentralizedEigenvector(random_S).compute()
        assert np.allclose(res.vector, oracle, atol=1e-6)

    def test_pretrust_mixing_fixed_point(self, random_S):
        pre = [0, 1]
        res = EigenTrust(random_S, pretrusted=pre, a=0.2).compute()
        v = res.vector
        P = np.zeros(random_S.n)
        P[pre] = 0.5
        expected = 0.8 * random_S.aggregate(v) + 0.2 * P
        assert np.allclose(v, expected, atol=1e-8)

    def test_pretrusted_peers_gain_score(self, random_S):
        plain = EigenTrust(random_S, a=1e-12).compute().vector
        boosted = EigenTrust(random_S, pretrusted=[3], a=0.3).compute().vector
        assert boosted[3] > plain[3]

    def test_converged_flag_and_iterations(self, random_S):
        res = EigenTrust(random_S).compute()
        assert res.converged
        assert res.iterations > 1

    def test_rejects_a_out_of_range(self, random_S):
        with pytest.raises(ValidationError):
            EigenTrust(random_S, a=1.0)


class TestDistributedEigenTrust:
    def test_same_fixed_point_as_basic(self, random_S):
        basic = EigenTrust(random_S, pretrusted=[0], a=0.1).compute()
        dist = DistributedEigenTrust(
            random_S, pretrusted=[0], a=0.1, replicas=2
        ).compute()
        assert np.allclose(basic.vector, dist.vector)

    def test_score_managers_are_replicated_and_deterministic(self, random_S):
        det = DistributedEigenTrust(random_S, replicas=3)
        mgr_a = det.score_managers(5)
        mgr_b = det.score_managers(5)
        assert mgr_a == mgr_b
        assert 1 <= len(mgr_a) <= 3  # hash collisions may merge replicas

    def test_overhead_accounting_positive(self, random_S):
        res = DistributedEigenTrust(random_S, replicas=3).compute()
        assert res.dht_lookups == random_S.nnz * 3
        assert res.dht_hops > 0
        assert res.messages == random_S.nnz * 3 * res.iterations

    def test_more_replicas_more_overhead(self, random_S):
        one = DistributedEigenTrust(random_S, replicas=1).compute()
        three = DistributedEigenTrust(random_S, replicas=3).compute()
        assert three.dht_lookups == 3 * one.dht_lookups

    def test_manager_peer_range_check(self, random_S):
        det = DistributedEigenTrust(random_S)
        with pytest.raises(ValidationError):
            det.score_managers(random_S.n)

    def test_rejects_bad_replicas(self, random_S):
        with pytest.raises(ValidationError):
            DistributedEigenTrust(random_S, replicas=0)
