"""Overlay membership, partner sampling, live subgraphs."""

import numpy as np
import pytest

from repro.errors import NetworkError, UnknownNodeError, ValidationError
from repro.network.overlay import Overlay
from repro.network.topology import Topology, random_graph


@pytest.fixture
def line_overlay():
    return Overlay(Topology(4, [(0, 1), (1, 2), (2, 3)]), rng=0)


class TestMembership:
    def test_all_alive_initially(self, line_overlay):
        assert line_overlay.alive_count == 4
        assert line_overlay.alive_nodes().tolist() == [0, 1, 2, 3]
        assert line_overlay.is_alive(2)

    def test_leave_and_counts(self, line_overlay):
        line_overlay.leave(1)
        assert line_overlay.alive_count == 3
        assert not line_overlay.is_alive(1)
        assert line_overlay.alive_nodes().tolist() == [0, 2, 3]

    def test_leave_twice_rejected(self, line_overlay):
        line_overlay.leave(1)
        with pytest.raises(NetworkError):
            line_overlay.leave(1)

    def test_unknown_node(self, line_overlay):
        with pytest.raises(UnknownNodeError):
            line_overlay.is_alive(10)

    def test_join_restores_with_old_edges(self, line_overlay):
        line_overlay.leave(1)
        line_overlay.join(1, wire_to=[])
        assert line_overlay.is_alive(1)
        # Old edges to live endpoints come back.
        assert 0 in line_overlay.neighbors(1)
        assert 2 in line_overlay.neighbors(1)

    def test_join_alive_node_rejected(self, line_overlay):
        with pytest.raises(NetworkError):
            line_overlay.join(0)

    def test_join_wires_to_random_live_peers(self):
        ov = Overlay(Topology(10, [(i, (i + 1) % 10) for i in range(10)]), rng=1)
        ov.leave(5)
        ov.join(5, degree=3)
        assert ov.degree(5) >= 3  # old ring edges plus bootstrap wiring

    def test_join_rejects_wiring_to_departed(self, line_overlay):
        line_overlay.leave(0)
        line_overlay.leave(1)
        with pytest.raises(NetworkError):
            line_overlay.join(1, wire_to=[0])

    def test_join_rejects_self_wire(self, line_overlay):
        line_overlay.leave(1)
        with pytest.raises(ValidationError):
            line_overlay.join(1, wire_to=[1])


class TestNeighbors:
    def test_live_only_filtering(self, line_overlay):
        assert line_overlay.neighbors(1) == (0, 2)
        line_overlay.leave(2)
        assert line_overlay.neighbors(1) == (0,)
        assert line_overlay.neighbors(1, live_only=False) == (0, 2)

    def test_degree(self, line_overlay):
        assert line_overlay.degree(1) == 2
        line_overlay.leave(0)
        assert line_overlay.degree(1) == 1


class TestPartnerSampling:
    def test_global_partner_is_live_and_not_self(self):
        ov = Overlay(random_graph(20, rng=0), rng=1)
        ov.leave(3)
        for _ in range(50):
            p = ov.random_partner(0)
            assert p != 0
            assert p != 3

    def test_neighbors_only_partner(self, line_overlay):
        for _ in range(10):
            assert line_overlay.random_partner(0, neighbors_only=True) == 1

    def test_neighbors_only_none_when_isolated(self, line_overlay):
        line_overlay.leave(1)
        assert line_overlay.random_partner(0, neighbors_only=True) is None

    def test_global_none_when_alone(self):
        ov = Overlay(Topology(2, [(0, 1)]), rng=0)
        ov.leave(1)
        assert ov.random_partner(0) is None

    def test_vectorized_partners(self):
        ov = Overlay(random_graph(30, rng=2), rng=3)
        nodes = ov.alive_nodes()
        partners = ov.random_partners(nodes)
        assert partners.shape == nodes.shape
        assert not np.any(partners == nodes)
        assert all(ov.is_alive(int(p)) for p in partners)

    def test_vectorized_partners_requires_two_live(self):
        ov = Overlay(Topology(2, [(0, 1)]), rng=0)
        ov.leave(1)
        with pytest.raises(NetworkError):
            ov.random_partners(np.array([0]))

    def test_partner_distribution_roughly_uniform(self):
        ov = Overlay(random_graph(5, avg_degree=3.0, rng=4), rng=5)
        counts = {i: 0 for i in range(1, 5)}
        for _ in range(4000):
            counts[ov.random_partner(0)] += 1
        freqs = np.array(list(counts.values())) / 4000
        assert np.all(np.abs(freqs - 0.25) < 0.05)


class TestLiveSubgraph:
    def test_live_subgraph_excludes_departed(self, line_overlay):
        line_overlay.leave(1)
        sub = line_overlay.live_subgraph()
        assert not sub.has_edge(0, 1)
        assert sub.has_edge(2, 3)

    def test_alive_mask_copy_semantics(self, line_overlay):
        mask = line_overlay.alive_mask()
        mask[0] = False
        assert line_overlay.is_alive(0)
