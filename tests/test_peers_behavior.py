"""Peer populations and the dishonesty rules."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.peers.behavior import (
    PeerPopulation,
    rate_transaction,
    reputation_inverse_rate,
)
from repro.types import PeerClass, TransactionOutcome


class TestBuild:
    def test_all_honest_by_default(self):
        pop = PeerPopulation.build(50, rng=0)
        assert pop.malicious_nodes().size == 0
        assert np.all(pop.quality == 0.95)

    def test_malicious_fraction_realized(self):
        pop = PeerPopulation.build(200, malicious_fraction=0.2, rng=1)
        assert pop.malicious_nodes().size == 40
        assert pop.honest_nodes().size == 160

    def test_independent_class_assignment(self):
        pop = PeerPopulation.build(100, malicious_fraction=0.1, rng=2)
        for node in pop.malicious_nodes():
            assert pop.classes[node] is PeerClass.MALICIOUS_INDEPENDENT
            assert pop.group[node] == -1

    def test_collusive_groups_partitioned(self):
        pop = PeerPopulation.build(
            100, malicious_fraction=0.12, collusive=True, group_size=4, rng=3
        )
        assert pop.group_count() == 3  # 12 colluders / 4 per group
        for g in range(3):
            assert (pop.group == g).sum() == 4

    def test_last_group_may_be_smaller(self):
        pop = PeerPopulation.build(
            100, malicious_fraction=0.10, collusive=True, group_size=4, rng=4
        )
        sizes = [(pop.group == g).sum() for g in range(pop.group_count())]
        assert sorted(sizes) == [2, 4, 4]

    def test_quality_assignment(self):
        pop = PeerPopulation.build(
            100, malicious_fraction=0.3, honest_quality=0.9, malicious_quality=0.1, rng=5
        )
        assert np.all(pop.quality[pop.malicious_nodes()] == 0.1)
        assert np.all(pop.quality[pop.honest_nodes()] == 0.9)

    def test_collusive_requires_group_size(self):
        with pytest.raises(ValidationError):
            PeerPopulation.build(10, malicious_fraction=0.5, collusive=True)

    def test_deterministic(self):
        a = PeerPopulation.build(60, malicious_fraction=0.25, rng=7)
        b = PeerPopulation.build(60, malicious_fraction=0.25, rng=7)
        assert np.array_equal(a.malicious_mask(), b.malicious_mask())


class TestServe:
    def test_outcomes_follow_quality(self, rng):
        pop = PeerPopulation.build(2, rng=0)
        pop.quality[0] = 1.0
        pop.quality[1] = 0.0
        assert pop.serve(0, rng) is TransactionOutcome.AUTHENTIC
        assert pop.serve(1, rng) is TransactionOutcome.INAUTHENTIC

    def test_statistical_quality(self, rng):
        pop = PeerPopulation.build(1, honest_quality=0.7, rng=0)
        hits = sum(
            pop.serve(0, rng) is TransactionOutcome.AUTHENTIC for _ in range(5000)
        )
        assert hits / 5000 == pytest.approx(0.7, abs=0.03)


class TestRating:
    def test_honest_reports_truth(self):
        pop = PeerPopulation.build(4, rng=0)
        for outcome in (TransactionOutcome.AUTHENTIC, TransactionOutcome.INAUTHENTIC):
            assert rate_transaction(pop, 0, 1, outcome) is outcome

    def test_independent_inverts(self):
        pop = PeerPopulation.build(4, malicious_fraction=1.0, rng=1)
        assert (
            rate_transaction(pop, 0, 1, TransactionOutcome.AUTHENTIC)
            is TransactionOutcome.INAUTHENTIC
        )
        assert (
            rate_transaction(pop, 0, 1, TransactionOutcome.INAUTHENTIC)
            is TransactionOutcome.AUTHENTIC
        )

    def test_collusive_boosts_group_trashes_outside(self):
        pop = PeerPopulation.build(
            10, malicious_fraction=0.4, collusive=True, group_size=2, rng=2
        )
        bad = pop.malicious_nodes()
        a = int(bad[0])
        mate = next(int(b) for b in bad[1:] if pop.same_group(a, int(b)))
        honest = int(pop.honest_nodes()[0])
        assert (
            rate_transaction(pop, a, mate, TransactionOutcome.INAUTHENTIC)
            is TransactionOutcome.AUTHENTIC
        )
        assert (
            rate_transaction(pop, a, honest, TransactionOutcome.AUTHENTIC)
            is TransactionOutcome.INAUTHENTIC
        )


class TestReputationInverseRate:
    def test_uniform_reputation_gives_base_rate(self):
        rate = reputation_inverse_rate(np.full(10, 0.1), base=0.05)
        assert np.allclose(rate, 0.05)

    def test_inversely_proportional(self):
        v = np.array([0.4, 0.2, 0.2, 0.2])
        rate = reputation_inverse_rate(v, base=0.08)
        assert rate[1] == pytest.approx(2 * rate[0])

    def test_zero_reputation_capped(self):
        rate = reputation_inverse_rate(np.array([0.5, 0.0]), cap=0.9)
        assert rate[1] == 0.9

    def test_cap_applies(self):
        rate = reputation_inverse_rate(np.array([1e-9, 1.0]), base=0.5, cap=0.95)
        assert rate[0] == 0.95

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            reputation_inverse_rate(np.ones((2, 2)))
