"""Bracketed Bloom reputation store."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.storage.reputation_store import BloomReputationStore


@pytest.fixture
def scores(rng):
    v = rng.pareto(1.5, size=200) + 1e-4
    return v / v.sum()


class TestBuildAndLookup:
    def test_lookup_within_bracket_error(self, scores):
        store = BloomReputationStore(bracket_bits=6)
        store.build(scores)
        # Geometric brackets: retrieved score within one bracket ratio.
        edges_ratio = (scores.max() / store.min_score) ** (1.0 / 64)
        for node in range(0, 200, 17):
            got = store.lookup(node)
            truth = scores[node]
            if truth >= store.min_score:
                assert got / truth < edges_ratio * 2
                assert truth / got < edges_ratio * 2

    def test_more_brackets_less_error(self, scores):
        errs = {}
        for bits in (3, 8):
            store = BloomReputationStore(bracket_bits=bits)
            store.build(scores)
            errs[bits] = store.report().mean_relative_error
        assert errs[8] < errs[3]

    def test_lookup_vector_shape(self, scores):
        store = BloomReputationStore()
        store.build(scores)
        out = store.lookup_vector(200)
        assert out.shape == (200,)
        assert np.all(out > 0)

    def test_representative_is_geometric_midpoint(self, scores):
        store = BloomReputationStore(bracket_bits=4)
        store.build(scores)
        rep = store.representative(0)
        assert store._edges[0] <= rep <= store._edges[1]

    def test_rebuild_replaces_contents(self, scores):
        store = BloomReputationStore()
        store.build(scores)
        flat = np.full(50, 1.0 / 50)
        store.build(flat)
        assert store.lookup_vector(50).shape == (50,)


class TestReport:
    def test_report_fields(self, scores):
        store = BloomReputationStore(bracket_bits=5)
        store.build(scores)
        rep = store.report()
        assert rep.bloom_bytes > 0
        assert rep.raw_bytes == 200 * 16
        assert rep.compression_ratio == rep.raw_bytes / rep.bloom_bytes
        assert 0 <= rep.misbracket_rate <= 1
        assert rep.mean_relative_error <= rep.max_relative_error

    def test_report_on_unbuilt_store_is_empty(self):
        # A metrics scrape may race the first build(): an un-built store
        # reports zeroed accounting instead of raising (and the neutral
        # compression ratio divides nothing by nothing).
        rep = BloomReputationStore().report()
        assert not BloomReputationStore().built
        assert rep.bloom_bytes == 0 and rep.raw_bytes == 0
        assert rep.mean_relative_error == 0.0
        assert rep.max_relative_error == 0.0
        assert rep.misbracket_rate == 0.0
        assert rep.compression_ratio == 1.0

    def test_build_failure_preserves_previous_snapshot(self, scores):
        # Re-entrant per-epoch rebuilds: a failed build must leave the
        # prior snapshot fully servable (atomic swap, no half state).
        store = BloomReputationStore(bracket_bits=5)
        store.build(scores)
        before = [store.lookup(i) for i in range(20)]
        with pytest.raises(ValidationError):
            store.build(np.array([-1.0, 0.5]))
        assert store.built
        assert [store.lookup(i) for i in range(20)] == before


class TestValidation:
    def test_lookup_requires_build(self):
        with pytest.raises(ValidationError):
            BloomReputationStore().lookup(0)

    def test_constructor_bounds(self):
        with pytest.raises(ValidationError):
            BloomReputationStore(bracket_bits=0)
        with pytest.raises(ValidationError):
            BloomReputationStore(bracket_bits=17)
        with pytest.raises(ValidationError):
            BloomReputationStore(min_score=0.0)

    def test_build_rejects_bad_vectors(self):
        store = BloomReputationStore()
        with pytest.raises(ValidationError):
            store.build(np.array([]))
        with pytest.raises(ValidationError):
            store.build(np.array([-0.1, 1.1]))

    def test_representative_range_check(self, scores):
        store = BloomReputationStore(bracket_bits=3)
        store.build(scores)
        with pytest.raises(ValidationError):
            store.representative(8)

    def test_degenerate_all_tiny_scores(self):
        store = BloomReputationStore(min_score=1e-3)
        store.build(np.full(10, 1e-6))
        assert store.lookup(0) > 0
